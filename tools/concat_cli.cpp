// concat — command-line front end of the framework, playing the role of
// the paper's Concat prototype for the steps that work offline from the
// t-spec alone: validating and pretty-printing specifications, rendering
// and analyzing the TFM, enumerating transactions, generating executable
// test suites (concat-suite format) and C++ driver source (Figs. 6-7).
//
//   concat validate <tspec>                     semantic check
//   concat print <tspec>                        normalized round-trip
//   concat dot <tspec>                          Graphviz rendering of the TFM
//   concat transactions <tspec> [options]       enumerate transactions
//   concat assemble <assembly-tspec> [options]  synchronous product of an
//                                               assembly (stc::assembly)
//   concat suite <tspec> [options] [-o FILE]    generate + save a test suite
//   concat gen <tspec> [options] [-o FILE]      generate C++ driver source
//   concat fuzz <component> [options]           coverage-guided fuzz loop
//   concat run <component> [options]            one plain suite execution
//   concat shrink <component> --case FILE       re-shrink a corpus entry
//   concat stats <telemetry.jsonl>              summarize campaign telemetry
//
// Every subcommand accepts --trace-out FILE (Chrome trace-event JSON of
// the run, loadable in Perfetto) and --metrics-out FILE (counter +
// latency dump; JSON when FILE ends in .json, plain text otherwise).
// Other options are per-subcommand; an option that a subcommand does
// not take is a usage error naming the flag (exit 2).
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "shop_component.h"
#include "shop_targets.h"
#include "stc/assembly/product.h"
#include "stc/campaign/scheduler.h"
#include "stc/campaign/seed.h"
#include "stc/campaign/telemetry.h"
#include "stc/codegen/driver_codegen.h"
#include "stc/core/self_testable.h"
#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/fuzzer.h"
#include "stc/fuzz/shrink.h"
#include "stc/history/version_diff.h"
#include "stc/kill/kill.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/report.h"
#include "stc/obs/stats.h"
#include "stc/sandbox/codec.h"
#include "stc/sandbox/worker_pool.h"
#include "stc/serve/builtin_host.h"
#include "stc/serve/dispatch.h"
#include "stc/serve/worker.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"
#include "stc/tfm/coverage.h"
#include "stc/tspec/assembly.h"
#include "stc/tspec/parser.h"

namespace {

using namespace stc;

int usage(std::ostream& os) {
    os << "usage: concat <command> <tspec-file> [options]\n"
          "commands:\n"
          "  validate       parse and semantically check a t-spec\n"
          "  describe       human-readable summary of the specification\n"
          "  print          normalized t-spec (round-trip through the parser)\n"
          "  dot            Graphviz DOT of the transaction flow model\n"
          "  transactions   enumerate transactions (birth -> death paths)\n"
          "  assemble       build the synchronous product of an assembly:\n"
          "                 concat assemble ASSEMBLY.tspec [--dot]\n"
          "                 [--transactions [--max-visits N] [--criterion C]]\n"
          "                 default output: construction stats + validation\n"
          "  coverage       node/link coverage of the selected criterion\n"
          "  suite          generate a test suite (concat-suite text format)\n"
          "  gen            generate C++ driver source (paper Figs. 6-7)\n"
          "  replan         classify a frozen suite against a NEW release:\n"
          "                 concat replan OLD.tspec --new NEW.tspec --frozen S.txt\n"
          "                 [-o STILL_VALID.txt]\n"
          "  campaign       parallel mutation campaign over a registered\n"
          "                 component (coblist, sortable, wallet, shop):\n"
          "                 concat campaign <component> [--assembly] [--jobs N]\n"
          "                 [--seed N] [--cases N] [--probe] [--resume FILE]\n"
          "                 [--shrink-corpus DIR] [--max-shrink-steps N]\n"
          "                 [--isolate [--timeout-ms N] [--rlimit-as MB]]\n"
          "                 [--model] [--no-prune] [--telemetry-out FILE]\n"
          "                 [-o REPORT]\n"
          "  kill           synthesize killers for a finished campaign's\n"
          "                 surviving mutants (bounded product-state search;\n"
          "                 every killer is execution-verified and shrunk):\n"
          "                 concat kill <component> --alive --resume FILE\n"
          "                 [--model] [--budget-states N] [--max-depth N]\n"
          "                 [--jobs N] [--seed N] [--cases N] [--probe]\n"
          "                 [--corpus DIR] [--max-shrink-steps N]\n"
          "                 [--no-prune] [--telemetry-out FILE] [-o REPORT]\n"
          "  fuzz           coverage-guided transaction fuzzing of a built-in\n"
          "                 component:\n"
          "                 concat fuzz <coblist|sortable> [--iters N] [--seed N]\n"
          "                 [--corpus DIR] [--mutant ID] [--max-shrink-steps N]\n"
          "                 [--isolate [--timeout-ms N] [--rlimit-as MB]]\n"
          "                 [--model] [--telemetry-out FILE] [-o REPORT]\n"
          "  run            execute the generated suite once and report verdicts:\n"
          "                 concat run <coblist|sortable> [--seed N] [--cases N]\n"
          "                 [--mutant ID] [--model] [-o REPORT]\n"
          "  shrink         re-shrink / verify one corpus entry:\n"
          "                 concat shrink <coblist|sortable> --case FILE\n"
          "                 [--mutant ID] [--max-shrink-steps N] [--corpus DIR]\n"
          "  serve          campaign worker daemon (docs/FORMATS.md §10):\n"
          "                 concat serve [--listen PORT] [--bind ADDR]\n"
          "                 [--once] [--telemetry-out FILE]\n"
          "  dispatch       shard a campaign across serve daemons:\n"
          "                 concat dispatch <component> [--assembly]\n"
          "                 --workers host:port[,host:port...] [--seed N]\n"
          "                 [--cases N] [--probe] [--model] [--no-prune]\n"
          "                 [--resume FILE]\n"
          "                 [--keepalive-ms N] [--dead-after-ms N]\n"
          "                 [--telemetry-out FILE] [--progress]\n"
          "                 [--telemetry-interval-ms N] [-o REPORT]\n"
          "  stats          summarize campaign telemetry stream(s):\n"
          "                 concat stats TELEMETRY.jsonl [MORE.jsonl...]\n"
          "                 [--top N] [--json] [-o REPORT]\n"
          "                 concat stats --follow TELEMETRY.jsonl\n"
          "options:\n"
          "  --trace-out F   (any command) Chrome trace-event JSON of this run\n"
          "  --metrics-out F (any command) metrics dump; JSON when F ends in .json\n"
          "  --seed N        random seed for value generation\n"
          "  --max-visits N  cycle unrolling bound (default 2)\n"
          "  --cases N       test cases per transaction (default 1)\n"
          "  --criterion C   all-transactions | all-links | all-nodes\n"
          "  --states        also generate mid-life entry variants (State records)\n"
          "  --include H     (gen) #include to emit; repeatable\n"
          "  --using NS      (gen) using namespace to emit; repeatable\n"
          "  --log FILE      (gen) log file used by the generated driver\n"
          "  --new FILE      (replan) the new release's t-spec\n"
          "  --frozen FILE   (replan) the frozen concat-suite file\n"
          "  --assembly      (campaign, dispatch) the target is an assembly\n"
          "                  product; required for assembly targets, rejected\n"
          "                  for single-class ones\n"
          "  --dot           (assemble) Graphviz DOT of the product TFM\n"
          "  --transactions  (assemble) enumerate the product's transactions\n"
          "  --jobs N        (campaign) worker threads; 0 = all cores (default 1)\n"
          "  --probe         (campaign) amplified probe suite for equivalence\n"
          "  --resume FILE   (campaign) resumable result store (JSONL);\n"
          "                  (kill) the finished campaign's store to read\n"
          "                  survivors from and publish raised fates into\n"
          "  --telemetry-out F (campaign, fuzz, kill) JSONL telemetry\n"
          "  --shrink-corpus D (campaign) shrink each kill into corpus dir D\n"
          "  --isolate       (campaign, fuzz) run each item in a forked sandbox\n"
          "                  worker: a real crash/hang/OOM kills only the worker\n"
          "  --timeout-ms N  (with --isolate) per-item wall deadline, then SIGKILL\n"
          "                  (default 5000; 0 disables)\n"
          "  --rlimit-as MB  (with --isolate) worker address-space cap (RLIMIT_AS)\n"
          "  --model         (campaign, fuzz, run, kill) lockstep reference-model\n"
          "                  oracle (stc::model): kills/verdicts on divergence\n"
          "  --prune / --no-prune  (campaign, dispatch) the fast execution\n"
          "                  tier: skip (mutant, case) pairs the coverage\n"
          "                  index proves unreachable and resume covered\n"
          "                  cases from shared-prefix checkpoints; fates are\n"
          "                  byte-identical either way (default on)\n"
          "  --alive         (kill) target the store's surviving mutants —\n"
          "                  required, so the subject of the pass is explicit\n"
          "  --budget-states N  (kill) product states the search may enqueue\n"
          "                  per mutant, across all value rounds (default 4096)\n"
          "  --max-depth N   (kill) longest explored call path (default 12)\n"
          "  --iters N       (fuzz) exploration executions (default 500)\n"
          "  --corpus D      (fuzz, shrink, kill) corpus directory for\n"
          "                  reproducers\n"
          "  --mutant ID     (fuzz, shrink, run) activate this mutant while running\n"
          "  --max-shrink-steps N  shrink budget per finding (default 512)\n"
          "  --case FILE     (shrink) the corpus entry to re-shrink\n"
          "  --top N         (stats) rows in the slowest-item table (default 10)\n"
          "  --follow        (stats) tail ONE growing telemetry file, re-render\n"
          "                  a live snapshot per batch, exit at campaign-end\n"
          "  --json          (stats) machine-readable summary instead of tables\n"
          "  --listen PORT   (serve) TCP port to listen on (0 = ephemeral,\n"
          "                  printed on stdout)\n"
          "  --bind ADDR     (serve) listen address (default 127.0.0.1; the\n"
          "                  protocol is unauthenticated — 0.0.0.0 opts in to\n"
          "                  cross-host exposure)\n"
          "  --once          (serve) exit after one coordinator session\n"
          "  --workers LIST  (dispatch) comma-separated host:port daemons\n"
          "  --keepalive-ms N  (dispatch) silence before a ping (default 500)\n"
          "  --dead-after-ms N (dispatch) silence before a worker is declared\n"
          "                  dead and its items re-dispatched (default 5000)\n"
          "  --progress      (dispatch) render a live fleet snapshot to stderr\n"
          "                  at the telemetry interval\n"
          "  --telemetry-interval-ms N  (dispatch) worker metrics-snapshot and\n"
          "                  --progress cadence (default 1000; 0 = fates only)\n"
          "  -o FILE         write output to FILE instead of stdout\n";
    return 2;
}

struct Options {
    std::string command;
    std::string tspec_path;  // campaign: component name; stats: telemetry file
    driver::GeneratorOptions generator;
    codegen::CodegenOptions codegen;
    std::optional<std::string> output_path;
    std::optional<std::string> new_tspec_path;     // replan
    std::optional<std::string> frozen_suite_path;  // replan
    std::size_t jobs = 1;                          // campaign
    bool probe = false;                            // campaign
    std::optional<std::string> store_path;         // campaign --resume
    std::optional<std::string> telemetry_path;     // campaign --telemetry-out
    std::optional<std::string> trace_path;         // --trace-out (any command)
    std::optional<std::string> metrics_path;       // --metrics-out (any command)
    std::size_t top = 10;                          // stats --top
    bool follow = false;                           // stats --follow
    bool json_stats = false;                       // stats --json
    bool progress = false;                         // dispatch --progress
    std::uint64_t telemetry_interval_ms = 1000;    // dispatch
    std::size_t iters = 500;                       // fuzz --iters
    std::optional<std::string> corpus_dir;         // fuzz/shrink --corpus
    std::size_t max_shrink_steps = 512;            // fuzz/shrink/campaign
    std::optional<std::string> mutant_id;          // fuzz/shrink --mutant
    std::optional<std::string> case_path;          // shrink --case
    std::optional<std::string> shrink_corpus;      // campaign --shrink-corpus
    bool alive = false;                            // kill --alive
    std::size_t budget_states = 4096;              // kill --budget-states
    std::size_t max_depth = 12;                    // kill --max-depth
    bool assembly = false;                         // campaign/dispatch --assembly
    bool dot_product = false;                      // assemble --dot
    bool list_transactions = false;                // assemble --transactions
    bool isolate = false;                          // campaign/fuzz --isolate
    bool model = false;                            // campaign/fuzz/run --model
    bool prune = true;                             // campaign/dispatch --prune
    std::uint64_t timeout_ms = 5000;               // --timeout-ms
    std::uint64_t rlimit_as_mb = 0;                // --rlimit-as
    std::uint64_t listen_port = 0;                 // serve --listen
    std::string bind_host = "127.0.0.1";           // serve --bind
    bool once = false;                             // serve --once
    std::optional<std::string> workers;            // dispatch --workers
    std::uint64_t keepalive_ms = 500;              // dispatch --keepalive-ms
    std::uint64_t dead_after_ms = 5000;            // dispatch --dead-after-ms
    std::vector<std::string> extra_inputs;         // stats: more JSONL files
    obs::Context obs;                              // built in main()
};

/// Which options each subcommand takes.  `--trace-out`, `--metrics-out`
/// and `-o` are accepted everywhere; everything else is per-command, so
/// a stray flag fails loudly instead of being silently ignored.
bool flag_allowed(const std::string& command, const std::string& flag) {
    if (flag == "--trace-out" || flag == "--metrics-out" || flag == "-o") {
        return true;
    }
    auto any_of = [&flag](std::initializer_list<const char*> flags) {
        for (const char* f : flags) {
            if (flag == f) return true;
        }
        return false;
    };
    if (command == "validate" || command == "print" || command == "dot") {
        return false;
    }
    if (command == "describe") return any_of({"--max-visits"});
    if (command == "transactions" || command == "coverage") {
        return any_of({"--max-visits", "--criterion"});
    }
    if (command == "assemble") {
        return any_of(
            {"--max-visits", "--criterion", "--dot", "--transactions"});
    }
    if (command == "suite") {
        return any_of(
            {"--seed", "--max-visits", "--cases", "--criterion", "--states"});
    }
    if (command == "gen") {
        return any_of({"--seed", "--max-visits", "--cases", "--criterion",
                       "--states", "--include", "--using", "--log"});
    }
    if (command == "replan") return any_of({"--new", "--frozen"});
    if (command == "campaign") {
        return any_of({"--seed", "--max-visits", "--cases", "--criterion",
                       "--states", "--jobs", "--probe", "--resume",
                       "--telemetry-out", "--shrink-corpus",
                       "--max-shrink-steps", "--isolate", "--timeout-ms",
                       "--rlimit-as", "--model", "--prune", "--no-prune",
                       "--assembly"});
    }
    if (command == "kill") {
        return any_of({"--alive", "--budget-states", "--max-depth", "--seed",
                       "--max-visits", "--cases", "--criterion", "--states",
                       "--jobs", "--probe", "--resume", "--telemetry-out",
                       "--corpus", "--max-shrink-steps", "--model", "--prune",
                       "--no-prune", "--assembly"});
    }
    if (command == "fuzz") {
        return any_of({"--iters", "--seed", "--corpus", "--max-shrink-steps",
                       "--mutant", "--max-visits", "--cases",
                       "--telemetry-out", "--isolate", "--timeout-ms",
                       "--rlimit-as", "--model"});
    }
    if (command == "run") {
        return any_of({"--seed", "--max-visits", "--cases", "--criterion",
                       "--states", "--mutant", "--model"});
    }
    if (command == "shrink") {
        return any_of(
            {"--case", "--mutant", "--max-shrink-steps", "--corpus", "--seed"});
    }
    if (command == "stats") return any_of({"--top", "--follow", "--json"});
    if (command == "serve") {
        return any_of({"--listen", "--bind", "--once", "--telemetry-out"});
    }
    if (command == "dispatch") {
        return any_of({"--seed", "--max-visits", "--cases", "--criterion",
                       "--states", "--probe", "--model", "--prune",
                       "--no-prune", "--workers",
                       "--resume", "--telemetry-out", "--keepalive-ms",
                       "--dead-after-ms", "--progress",
                       "--telemetry-interval-ms", "--assembly"});
    }
    // Unknown command: main() reports it; don't reject its flags first.
    return true;
}

/// Strict numeric flag parsing: the whole token must be a number.
/// std::nullopt (with a message) instead of std::stoull's uncaught
/// std::invalid_argument, so `--jobs banana` is a usage error, not an
/// abort.
std::optional<std::uint64_t> parse_count(const std::string& flag,
                                         const std::string& text) {
    std::uint64_t value = 0;
    const auto [p, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || p != text.data() + text.size()) {
        std::cerr << "concat: " << flag << " expects a non-negative number, got '"
                  << text << "'\n";
        return std::nullopt;
    }
    return value;
}

std::optional<Options> parse_args(int argc, char** argv) {
    if (argc < 2) return std::nullopt;
    Options out;
    out.command = argv[1];
    // `serve` takes no positional operand — the campaign config arrives
    // in the coordinator's handshake — so argv[2] may already be a flag
    // (or absent: an ephemeral-port daemon).
    int first = 3;
    if (out.command == "serve") {
        first = 2;
    } else if (out.command == "stats") {
        // Flags may precede the file (`stats --follow F`); the loop
        // below collects every positional into extra_inputs and the
        // first one is promoted to the primary file afterwards.
        first = 2;
    } else {
        if (argc < 3) return std::nullopt;
        out.tspec_path = argv[2];
    }

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (!arg.empty() && arg[0] != '-') {
            // `stats` aggregates any number of telemetry files; no
            // other command takes extra positional operands.
            if (out.command == "stats") {
                out.extra_inputs.push_back(arg);
                continue;
            }
            std::cerr << "concat " << out.command << ": unexpected operand '"
                      << arg << "'\n";
            return std::nullopt;
        }
        if (!flag_allowed(out.command, arg)) {
            std::cerr << "concat " << out.command << ": unknown option '" << arg
                      << "'\n";
            return std::nullopt;
        }
        if (arg == "--seed") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.generator.seed = *n;
        } else if (arg == "--max-visits") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.generator.enumeration.max_node_visits = *n;
        } else if (arg == "--cases") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.generator.cases_per_transaction = *n;
        } else if (arg == "--criterion") {
            const auto v = next();
            if (!v) return std::nullopt;
            if (*v == "all-transactions") {
                out.generator.criterion = tfm::Criterion::AllTransactions;
            } else if (*v == "all-links") {
                out.generator.criterion = tfm::Criterion::AllEdges;
            } else if (*v == "all-nodes") {
                out.generator.criterion = tfm::Criterion::AllNodes;
            } else {
                return std::nullopt;
            }
        } else if (arg == "--states") {
            out.generator.include_entry_states = true;
        } else if (arg == "--include") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.codegen.includes.push_back(*v);
        } else if (arg == "--using") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.codegen.usings.push_back(*v);
        } else if (arg == "--log") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.codegen.log_file = *v;
        } else if (arg == "--new") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.new_tspec_path = *v;
        } else if (arg == "--frozen") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.frozen_suite_path = *v;
        } else if (arg == "--jobs") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.jobs = *n;
        } else if (arg == "--probe") {
            out.probe = true;
        } else if (arg == "--resume") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.store_path = *v;
        } else if (arg == "--telemetry-out") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.telemetry_path = *v;
        } else if (arg == "--trace-out") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.trace_path = *v;
        } else if (arg == "--metrics-out") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.metrics_path = *v;
        } else if (arg == "--iters") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.iters = *n;
        } else if (arg == "--corpus") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.corpus_dir = *v;
        } else if (arg == "--max-shrink-steps") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.max_shrink_steps = *n;
        } else if (arg == "--mutant") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.mutant_id = *v;
        } else if (arg == "--case") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.case_path = *v;
        } else if (arg == "--shrink-corpus") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.shrink_corpus = *v;
        } else if (arg == "--alive") {
            out.alive = true;
        } else if (arg == "--budget-states") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.budget_states = *n;
        } else if (arg == "--max-depth") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.max_depth = *n;
        } else if (arg == "--assembly") {
            out.assembly = true;
        } else if (arg == "--dot") {
            out.dot_product = true;
        } else if (arg == "--transactions") {
            out.list_transactions = true;
        } else if (arg == "--isolate") {
            out.isolate = true;
        } else if (arg == "--model") {
            out.model = true;
        } else if (arg == "--prune") {
            out.prune = true;
        } else if (arg == "--no-prune") {
            out.prune = false;
        } else if (arg == "--timeout-ms") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.timeout_ms = *n;
        } else if (arg == "--rlimit-as") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.rlimit_as_mb = *n;
        } else if (arg == "--top") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            out.top = *n;
        } else if (arg == "--follow") {
            out.follow = true;
        } else if (arg == "--json") {
            out.json_stats = true;
        } else if (arg == "--progress") {
            out.progress = true;
        } else if (arg == "--telemetry-interval-ms") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            if (*n > static_cast<std::uint64_t>(
                         std::numeric_limits<int>::max())) {
                std::cerr << "concat dispatch: " << arg << " too large (max "
                          << std::numeric_limits<int>::max() << ")\n";
                return std::nullopt;
            }
            out.telemetry_interval_ms = *n;
        } else if (arg == "--listen") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            if (*n > 65535) {
                std::cerr << "concat serve: --listen expects a port (0-65535)\n";
                return std::nullopt;
            }
            out.listen_port = *n;
        } else if (arg == "--bind") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.bind_host = *v;
        } else if (arg == "--once") {
            out.once = true;
        } else if (arg == "--workers") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.workers = *v;
        } else if (arg == "--keepalive-ms" || arg == "--dead-after-ms") {
            const auto v = next();
            if (!v) return std::nullopt;
            const auto n = parse_count(arg, *v);
            if (!n) return std::nullopt;
            // The dispatch options hold these as int milliseconds; a
            // larger value would wrap negative and insta-kill every
            // worker's keepalive.
            if (*n > static_cast<std::uint64_t>(
                         std::numeric_limits<int>::max())) {
                std::cerr << "concat dispatch: " << arg << " too large (max "
                          << std::numeric_limits<int>::max() << ")\n";
                return std::nullopt;
            }
            (arg == "--keepalive-ms" ? out.keepalive_ms : out.dead_after_ms) =
                *n;
        } else if (arg == "-o") {
            const auto v = next();
            if (!v) return std::nullopt;
            out.output_path = *v;
        } else {
            std::cerr << "concat " << out.command << ": unknown option '" << arg
                      << "'\n";
            return std::nullopt;
        }
    }
    if (out.command == "stats") {
        if (out.extra_inputs.empty()) return std::nullopt;  // no file given
        out.tspec_path = out.extra_inputs.front();
        out.extra_inputs.erase(out.extra_inputs.begin());
    }
    return out;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open t-spec file: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int emit(const Options& options, const std::string& text) {
    if (options.output_path) {
        std::ofstream out(*options.output_path);
        if (!out) throw Error("cannot write output file: " + *options.output_path);
        out << text;
        std::cout << "wrote " << text.size() << " bytes to " << *options.output_path
                  << "\n";
    } else {
        std::cout << text;
    }
    return 0;
}

int cmd_validate(const Options& options, const tspec::ComponentSpec& spec) {
    (void)options;
    const auto spec_problems = spec.validate();
    for (const auto& p : spec_problems) {
        std::cout << "spec: [" << p.where << "] " << p.message << "\n";
    }
    std::vector<tfm::Diagnostic> model_problems;
    if (spec_problems.empty() && !spec.nodes.empty()) {
        model_problems = spec.build_tfm().diagnose();
        for (const auto& d : model_problems) {
            std::cout << "model: [" << (d.node_id.empty() ? "*" : d.node_id) << "] "
                      << to_string(d.kind) << ": " << d.detail << "\n";
        }
    }
    const bool clean = spec_problems.empty() && model_problems.empty();
    std::cout << spec.class_name << ": " << (clean ? "valid" : "INVALID") << " ("
              << spec.methods.size() << " method(s), " << spec.nodes.size()
              << " node(s), " << spec.edges.size() << " edge(s))\n";
    return clean ? 0 : 1;
}

int cmd_describe(const Options& options, const tspec::ComponentSpec& spec) {
    std::ostringstream out;
    out << "class " << spec.class_name;
    if (spec.is_abstract) out << " (abstract)";
    if (!spec.superclass.empty()) out << " : " << spec.superclass;
    out << "\n";

    if (!spec.attributes.empty()) {
        out << "attributes:\n";
        for (const auto& a : spec.attributes) {
            out << "  " << a.name << " : "
                << (a.domain ? a.domain->describe()
                             : std::string(to_string(a.type)) + " " + a.class_name)
                << "\n";
        }
    }
    out << "methods:\n";
    for (const auto& m : spec.methods) {
        out << "  " << m.id << "  " << m.signature();
        if (!m.return_type.empty()) out << " -> " << m.return_type;
        out << "  [" << to_string(m.category) << "]\n";
    }
    if (!spec.states.empty()) {
        out << "predefined states:";
        for (const auto& st : spec.states) out << " " << st;
        out << "\n";
    }
    for (const auto& [param, types] : spec.template_bindings) {
        out << "template parameter " << param << ":";
        for (const auto& t : types) out << " " << t;
        out << "\n";
    }
    if (!spec.nodes.empty()) {
        const auto graph = spec.build_tfm();
        const auto transactions =
            graph.enumerate_transactions(options.generator.enumeration);
        out << "test model: " << graph.node_count() << " node(s), "
            << graph.edge_count() << " link(s), " << transactions.size()
            << " transaction(s)\n";
    }
    return emit(options, out.str());
}

int cmd_transactions(const Options& options, const tspec::ComponentSpec& spec) {
    const auto graph = spec.build_tfm();
    const auto all = graph.enumerate_transactions(options.generator.enumeration);
    const auto selected =
        tfm::select_transactions(graph, all, options.generator.criterion);
    std::ostringstream out;
    for (std::size_t index : selected) {
        out << graph.describe(all[index]) << "\n";
    }
    out << "# " << selected.size() << " transaction(s) selected of " << all.size()
        << " enumerated (" << to_string(options.generator.criterion) << ")\n";
    return emit(options, out.str());
}

// `concat assemble ASSEMBLY.tspec`: parse an assembly block, resolve
// each role's t-spec and build the synchronous product (stc::assembly).
// Roles with a `spec "file"` clause load that t-spec relative to the
// assembly file's directory; roles without one resolve to the built-in
// example specs by class name (Wallet, Ledger, Inventory,
// StockControl).  Default output is the construction stats plus the
// synthesized spec's validation verdict; --dot renders the product TFM
// and --transactions enumerates its transactions, exactly as the plain
// `dot` / `transactions` commands do for a single-class t-spec.
int cmd_assemble(const Options& options) {
    const auto assembly = tspec::parse_assembly(read_file(options.tspec_path));
    std::map<std::string, tspec::ComponentSpec> role_specs;
    const auto base = std::filesystem::path(options.tspec_path).parent_path();
    for (const auto& role : assembly.roles) {
        if (!role.spec_file.empty()) {
            role_specs.emplace(role.id, tspec::parse_tspec(read_file(
                                            (base / role.spec_file).string())));
        } else {
            role_specs.emplace(role.id,
                               examples::shop_role_spec_for(role.class_name));
        }
    }
    const auto product = assembly::build_product(assembly, role_specs);

    if (options.dot_product) {
        return emit(options, product.spec.build_tfm().to_dot());
    }
    if (options.list_transactions) {
        return cmd_transactions(options, product.spec);
    }

    std::ostringstream out;
    out << "assembly " << assembly.name << ": " << assembly.roles.size()
        << " role(s), " << assembly.wiring.size() << " wire(s), "
        << assembly.exports.size() << " export(s)\n"
        << assembly::describe(product.stats);
    // build_product already rejects hard errors; re-validating the
    // synthesized spec here keeps the command an end-to-end check.
    const auto spec_problems = product.spec.validate();
    for (const auto& p : spec_problems) {
        out << "product spec: [" << p.where << "] " << p.message << "\n";
    }
    out << "product " << product.spec.class_name << ": "
        << (spec_problems.empty() ? "valid" : "INVALID") << " ("
        << product.spec.methods.size() << " method(s), "
        << product.spec.nodes.size() << " node(s), "
        << product.spec.edges.size() << " edge(s))\n";
    const int rc = emit(options, out.str());
    return spec_problems.empty() ? rc : 1;
}

int cmd_coverage(const Options& options, const tspec::ComponentSpec& spec) {
    const auto graph = spec.build_tfm();
    const auto all = graph.enumerate_transactions(options.generator.enumeration);
    const auto selected =
        tfm::select_transactions(graph, all, options.generator.criterion);
    std::vector<tfm::Transaction> chosen;
    chosen.reserve(selected.size());
    for (std::size_t index : selected) chosen.push_back(all[index]);
    const auto report = tfm::measure_coverage(graph, chosen);

    std::ostringstream out;
    out << "criterion: " << to_string(options.generator.criterion) << "\n"
        << "transactions: " << chosen.size() << " of " << all.size()
        << " enumerated\n"
        << "node coverage: " << report.nodes_covered << "/" << report.nodes_total
        << "\n"
        << "link coverage: " << report.edges_covered << "/" << report.edges_total
        << "\n";
    return emit(options, out.str());
}

int cmd_suite(const Options& options, const tspec::ComponentSpec& spec) {
    const auto suite = driver::DriverGenerator(spec, options.generator).generate();
    std::ostringstream out;
    driver::save_suite(out, suite);
    return emit(options, out.str());
}

int cmd_gen(const Options& options, const tspec::ComponentSpec& spec) {
    const auto suite = driver::DriverGenerator(spec, options.generator).generate();
    const codegen::DriverCodegen generator(spec, options.codegen);
    return emit(options, generator.suite_source(suite));
}

/// Resolve --model for `class_name`: the registered lockstep binding,
/// or nullopt (+ diagnostic listing the modeled classes) when none
/// exists — a typo'd component must not silently run model-less.
std::optional<const driver::ModelBinding*> resolve_model(
    const std::string& command, const std::string& class_name) {
    const driver::ModelBinding* binding = model::binding_for(class_name);
    if (binding != nullptr) return binding;
    std::cerr << "concat " << command << ": no reference model for '"
              << class_name << "' (models exist for:";
    for (const auto& name : model::modeled_classes()) std::cerr << " " << name;
    std::cerr << ")\n";
    return std::nullopt;
}

int cmd_replan(const Options& options, const tspec::ComponentSpec& old_spec) {
    if (!options.new_tspec_path || !options.frozen_suite_path) {
        std::cerr << "concat replan: --new and --frozen are required\n";
        return 2;
    }
    const auto new_spec = tspec::parse_tspec(read_file(*options.new_tspec_path));
    std::ifstream frozen_in(*options.frozen_suite_path);
    if (!frozen_in) {
        throw Error("cannot open frozen suite: " + *options.frozen_suite_path);
    }
    const auto frozen = driver::load_suite(frozen_in);

    const auto delta = history::diff_specs(old_spec, new_spec);
    const auto plan = history::replan_suite(frozen, delta);

    std::cout << "release diff for " << old_spec.class_name << ":\n";
    for (const auto& [id, change] : delta.methods) {
        if (change == history::MethodChange::Unchanged) continue;
        std::cout << "  " << id << ": " << to_string(change) << "\n";
    }
    if (delta.model_changed) std::cout << "  (test model changed)\n";
    std::cout << "frozen suite: " << frozen.size() << " case(s)\n"
              << "  still valid: " << plan.reusable() << "\n"
              << "  regenerate:  " << plan.regenerate.size() << "\n"
              << "  obsolete:    " << plan.obsolete.size() << "\n";

    if (options.output_path) {
        std::ofstream out(*options.output_path);
        if (!out) throw Error("cannot write output file: " + *options.output_path);
        driver::save_suite(out, plan.still_valid);
        std::cout << "wrote the still-valid suite to " << *options.output_path
                  << "\n";
    }
    return 0;
}

/// Assembly targets and --assembly must travel together: a campaign or
/// dispatch over an assembly product states so explicitly, and a
/// single-class target rejects the flag — the report headers look alike
/// and a silent mixup would invalidate the interface-vs-assembly
/// comparison.  Returns the exit code (0 = consistent).
int check_assembly_flag(const std::string& command, const Options& options,
                        const serve::BuiltinTarget& target) {
    if (target.assembly && !options.assembly) {
        std::cerr << "concat " << command << ": '" << options.tspec_path
                  << "' is an assembly product; pass --assembly\n";
        return 2;
    }
    if (!target.assembly && options.assembly) {
        std::cerr << "concat " << command << ": '" << options.tspec_path
                  << "' is a single-class component; drop --assembly\n";
        return 2;
    }
    return 0;
}

// `concat campaign <component>`: run an interface-mutation campaign
// over a registered target — the built-in MFC components (coblist,
// sortable), the intraclass wallet, or the shop assembly product
// (--assembly) — sharded across --jobs workers.  The report (stdout or
// -o) lists one line per mutant in enumeration order plus the Table 2/3
// aggregation — byte-identical for any --jobs value, tracing on or off;
// scheduling-dependent detail (worker ids, wall times, queue depths)
// goes to the --telemetry-out JSONL stream, spans to --trace-out, and
// timing stats to stderr.
int cmd_campaign(const Options& options) {
    const std::string which = options.tspec_path;
    const serve::BuiltinTarget* target = serve::find_builtin_target(which);
    if (target == nullptr) {
        std::cerr << "concat campaign: unknown component '" << which
                  << "' (expected one of: "
                  << support::join(serve::builtin_target_names(), ", ")
                  << ")\n";
        return 2;
    }
    if (const int rc = check_assembly_flag("campaign", options, *target)) {
        return rc;
    }

    const serve::BuiltinComponent holder = target->make_component();
    const core::SelfTestableComponent& component = *holder.component;

    const driver::TestSuite suite = component.generate_tests(options.generator);

    std::optional<driver::TestSuite> probe;
    if (options.probe) {
        driver::GeneratorOptions probe_options = options.generator;
        probe_options.seed = options.generator.seed ^ 0x9e3779b97f4a7c15ULL;
        probe_options.cases_per_transaction =
            options.generator.cases_per_transaction + 1;
        probe = component.generate_tests(probe_options);
    }

    const auto mutants = target->mutants();

    campaign::CampaignOptions campaign_options;
    campaign_options.jobs = options.jobs;
    campaign_options.seed = options.generator.seed;
    campaign_options.obs = options.obs;
    if (options.store_path) campaign_options.store_path = *options.store_path;
    if (options.telemetry_path) {
        campaign_options.telemetry_path = *options.telemetry_path;
    }
    if (options.shrink_corpus) {
        campaign_options.shrink_corpus_dir = *options.shrink_corpus;
        campaign_options.max_shrink_steps = options.max_shrink_steps;
        campaign_options.spec = &component.spec();
        // Null for targets without pointer-typed parameters (the shop
        // assembly): persist_entry then skips recompletion on replay.
        campaign_options.completions = holder.completions;
    }
    if (options.isolate) {
        campaign_options.isolate = true;
        campaign_options.sandbox.timeout_ms = options.timeout_ms;
        campaign_options.sandbox.rlimit_as_mb = options.rlimit_as_mb;
    }
    campaign_options.prune = options.prune;
    if (options.model) {
        // Lockstep differential oracle: the runner carries the model as
        // a passive side channel (no promotion), so verdicts, reports
        // and hit tracking are untouched and fates stay byte-identical
        // across --jobs and --isolate; only the oracle reads the
        // divergence strings.
        const auto model_binding = resolve_model("campaign", suite.class_name);
        if (!model_binding) return 2;
        campaign_options.engine.runner.model = *model_binding;
    }

    const campaign::CampaignScheduler scheduler(component.registry(),
                                                campaign_options);
    const auto result =
        scheduler.run(suite, mutants, probe ? &*probe : nullptr);

    std::ostringstream report;
    mutation::render_campaign_report(report, result.run, suite.class_name,
                                     suite.size(), options.generator.seed);

    // Scheduling-dependent numbers stay out of the report so that
    // --jobs N leaves it byte-identical.
    std::cerr << "campaign stats: campaign=" << result.fingerprint
              << " workers=" << result.stats.workers
              << " executed=" << result.stats.executed
              << " resumed=" << result.stats.resumed
              << " steals=" << result.stats.steals
              << " respawns=" << result.stats.respawns
              << " shrunk=" << result.stats.shrunk
              << " wall_ms=" << result.stats.wall_ms << "\n";
    if (result.stats.pruned) {
        std::cerr << "prune stats: executed_pairs="
                  << result.stats.executed_pairs
                  << " pruned_pairs=" << result.stats.pruned_pairs
                  << " memoized_pairs=" << result.stats.memoized_pairs
                  << " memoized_calls=" << result.stats.memoized_calls << "\n";
    }

    return emit(options, report.str());
}

// `concat kill <component> --alive --resume FILE`: synthesize killers
// for the surviving mutants of a finished campaign (stc::kill).  The
// store is matched against the re-derived campaign fingerprint — the
// same options must be passed here as to the campaign run — and raised
// fates are written back so `concat campaign --resume` and `concat
// stats` reflect the new score.  The report is a pure function of
// (component, store, seed, budget): byte-identical across --jobs.
int cmd_kill(const Options& options) {
    const std::string which = options.tspec_path;
    const serve::BuiltinTarget* target = serve::find_builtin_target(which);
    if (target == nullptr) {
        std::cerr << "concat kill: unknown component '" << which
                  << "' (expected one of: "
                  << support::join(serve::builtin_target_names(), ", ")
                  << ")\n";
        return 2;
    }
    // Killer synthesis pairs one class's TFM with one reference model;
    // an assembly product has neither, so both directions of the
    // campaign/dispatch --assembly gating collapse to a rejection here.
    if (target->assembly) {
        std::cerr << "concat kill: '" << which
                  << "' is an assembly product; killer synthesis runs on "
                     "single-class components only\n";
        return 2;
    }
    if (options.assembly) {
        std::cerr << "concat kill: '" << which
                  << "' is a single-class component; drop --assembly\n";
        return 2;
    }
    if (!options.alive) {
        std::cerr << "concat kill: pass --alive (the pass targets the "
                     "store's surviving mutants)\n";
        return 2;
    }
    if (!options.store_path) {
        std::cerr << "concat kill: --resume FILE is required (the finished "
                     "campaign's result store)\n";
        return 2;
    }

    const serve::BuiltinComponent holder = target->make_component();
    const core::SelfTestableComponent& component = *holder.component;

    // Re-derive the campaign identity exactly as `concat campaign` did:
    // same suite, same probe derivation, same oracle/runner/prune
    // configuration — a mismatch means the store answers a different
    // campaign's question and must not be "raised".
    const driver::TestSuite suite = component.generate_tests(options.generator);
    std::optional<driver::TestSuite> probe;
    if (options.probe) {
        driver::GeneratorOptions probe_options = options.generator;
        probe_options.seed = options.generator.seed ^ 0x9e3779b97f4a7c15ULL;
        probe_options.cases_per_transaction =
            options.generator.cases_per_transaction + 1;
        probe = component.generate_tests(probe_options);
    }
    const auto mutants = target->mutants();

    campaign::CampaignOptions campaign_options;
    campaign_options.seed = options.generator.seed;
    campaign_options.prune = options.prune;
    const driver::ModelBinding* model_binding = nullptr;
    if (options.model) {
        const auto resolved = resolve_model("kill", suite.class_name);
        if (!resolved) return 2;
        model_binding = *resolved;
        campaign_options.engine.runner.model = model_binding;
    }
    const campaign::CampaignScheduler scheduler(component.registry(),
                                                campaign_options);
    const std::string fingerprint =
        scheduler.fingerprint(suite, mutants, probe ? &*probe : nullptr);

    std::string store_error;
    auto peek = campaign::peek_store(*options.store_path, &store_error);
    if (!peek) {
        std::cerr << "concat kill: " << store_error << "\n";
        return 2;
    }
    if (peek->fingerprint != fingerprint) {
        std::cerr << "concat kill: result store '" << *options.store_path
                  << "' belongs to a different campaign (store header "
                  << peek->fingerprint << ", expected " << fingerprint
                  << "); pass the same options as the campaign run\n";
        return 2;
    }

    std::size_t survivors = 0;
    for (const auto& record : peek->records) {
        if (record.fate == "alive") ++survivors;
    }
    if (survivors == 0) {
        return emit(options, "kill: " + suite.class_name +
                                 ": nothing to kill (no surviving mutants in " +
                                 *options.store_path + ")\n");
    }

    kill::KillContext context;
    context.spec = &component.spec();
    context.registry = &component.registry();
    context.completions = holder.completions;
    context.mutants = &mutants;

    kill::KillOptions kill_options;
    kill_options.seed = options.generator.seed;
    kill_options.jobs =
        options.jobs == 0 ? std::thread::hardware_concurrency() : options.jobs;
    if (options.corpus_dir) kill_options.corpus_dir = *options.corpus_dir;
    kill_options.max_shrink_steps = options.max_shrink_steps;
    kill_options.obs = options.obs;
    kill_options.search.seed = options.generator.seed;
    kill_options.search.budget_states = options.budget_states;
    kill_options.search.max_depth = options.max_depth;
    kill_options.search.runner.obs = options.obs;
    kill_options.search.runner.model = model_binding;
    kill_options.search.obs = options.obs;
    if (options.telemetry_path) {
        kill_options.telemetry = campaign::TelemetrySink::to_file(
            *options.telemetry_path, obs::JsonlSink::OpenMode::Truncate);
    }

    const kill::KillRun run =
        kill::kill_survivors(context, peek->records, kill_options);
    campaign::rewrite_store(*options.store_path, fingerprint, peek->records);

    std::ostringstream report;
    kill::render_kill_report(report, run, suite.class_name, kill_options);

    // Search-effort numbers go to stderr like campaign timing stats:
    // they are deterministic, but they are diagnostics, not results.
    std::size_t states = 0;
    std::size_t executed = 0;
    for (const auto& item : run.items) {
        states += item.stats.states_expanded;
        executed += item.stats.candidates_executed;
    }
    std::cerr << "kill stats: campaign=" << fingerprint
              << " survivors=" << run.survivors << " verified=" << run.verified
              << " states=" << states << " candidates=" << executed << "\n";

    return emit(options, report.str());
}

/// Shared by fuzz/shrink: the built-in component named on the command
/// line, or std::nullopt (+ usage message) for anything else.  The
/// caller owns `pool`; it must outlive the returned component's
/// completions.
std::optional<core::SelfTestableComponent> make_builtin(
    const std::string& command, const std::string& which) {
    if (which != "coblist" && which != "sortable") {
        std::cerr << "concat " << command << ": unknown component '" << which
                  << "' (expected coblist or sortable)\n";
        return std::nullopt;
    }
    return which == "coblist"
               ? core::SelfTestableComponent(mfc::coblist_spec(),
                                             mfc::coblist_binding())
               : core::SelfTestableComponent(mfc::sortable_spec(),
                                             mfc::sortable_binding());
}

/// Resolve --mutant against the enumerated mutants of `class_name`.
/// Returns nullptr when id is empty; exits via nullopt on unknown ids so
/// a typo cannot silently fuzz the pristine component.
std::optional<const mutation::Mutant*> resolve_mutant(
    const std::string& command, const std::vector<mutation::Mutant>& mutants,
    const std::string& id) {
    if (id.empty()) return nullptr;
    for (const auto& m : mutants) {
        if (m.id() == id) return &m;
    }
    std::cerr << "concat " << command << ": unknown mutant '" << id << "'\n";
    return std::nullopt;
}

// `concat fuzz <coblist|sortable>`: coverage-guided fuzzing of a
// built-in component (optionally with one mutant active, for seeded
// faults).  Findings are minimized by the shrinker and — with --corpus —
// persisted as replayable reproducers.  The stdout report is a pure
// function of (component, seed, iters, mutant): corpus filenames are
// printed without their directory so two same-seed runs into different
// corpus directories still byte-match (the CI seed-stability gate).
int cmd_fuzz(const Options& options) {
    mfc::ElementPool pool;
    auto component = make_builtin("fuzz", options.tspec_path);
    if (!component) return 2;
    const driver::CompletionRegistry completions = mfc::make_completions(pool);
    component->set_completions(completions);
    const std::string& class_name = component->spec().class_name;

    const auto mutants = mutation::enumerate_mutants(mfc::descriptors(), class_name);
    const auto mutant =
        resolve_mutant("fuzz", mutants, options.mutant_id.value_or(""));
    if (!mutant) return 2;

    driver::RunnerOptions runner_options;
    runner_options.obs = options.obs;
    if (options.model) {
        // Fuzzing wants divergence as a first-class signal: promotion
        // turns a clean-run divergence into Verdict::ModelDivergence, so
        // the coverage map treats it as a novel verdict kind, findings
        // dedupe by (model-divergence, method), and the shrinker
        // minimizes while preserving the divergence.
        const auto model_binding = resolve_model("fuzz", class_name);
        if (!model_binding) return 2;
        runner_options.model = *model_binding;
        runner_options.promote_divergence = true;
    }
    const driver::TestRunner runner(component->registry(), runner_options);
    const reflect::ClassBinding& binding = component->registry().at(class_name);

    const auto run_in_process =
        [&](const driver::TestCase& tc) -> driver::TestResult {
        if (*mutant) {
            const mutation::MutantActivation active(**mutant);
            return runner.run_case(binding, tc);
        }
        return runner.run_case(binding, tc);
    };

    // --isolate: replay each case in a persistent forked worker.  The
    // case travels as a one-case concat-suite (the corpus transport:
    // serialize, reload, recomplete); the reply is the encoded result.
    // A worker death surfaces as a Crash verdict whose failed_method is
    // the termination kind, so a genuine SIGSEGV/hang/OOM dedupes as a
    // finding ("crash|crash-signal:11") instead of ending the run.
    std::optional<sandbox::SandboxRunner> isolated;
    if (options.isolate) {
        const sandbox::Job job = [&](const std::string& payload) -> std::string {
            std::istringstream in(payload);
            driver::TestSuite one = driver::load_suite(in);
            driver::recomplete_suite(one, completions, one.seed);
            if (one.cases.empty()) throw Error("sandbox: empty case payload");
            return sandbox::encode_result(run_in_process(one.cases.front()));
        };
        sandbox::SandboxLimits limits;
        limits.timeout_ms = options.timeout_ms;
        limits.rlimit_as_mb = options.rlimit_as_mb;
        isolated.emplace(job, limits);
    }

    const fuzz::CaseRunner case_runner =
        [&](const driver::TestCase& tc) -> driver::TestResult {
        if (!isolated) return run_in_process(tc);
        driver::TestSuite one;
        one.class_name = class_name;
        one.seed = options.generator.seed;
        one.cases.push_back(tc);
        std::ostringstream out;
        driver::save_suite(out, one);
        const sandbox::TaskResult task = isolated->call(out.str());
        if (task.ok()) {
            if (auto decoded = sandbox::decode_result(task.payload)) {
                return *decoded;
            }
        }
        driver::TestResult result;
        result.case_id = tc.id;
        result.verdict = driver::Verdict::Crash;
        result.failed_method = task.ok() ? "worker-exit:-3" : task.outcome();
        result.message =
            "sandbox: worker terminated (" + result.failed_method + ")";
        return result;
    };

    fuzz::FuzzOptions fuzz_options;
    fuzz_options.seed = options.generator.seed;
    fuzz_options.iterations = options.iters;
    fuzz_options.generator = options.generator;
    fuzz_options.max_shrink_steps = options.max_shrink_steps;
    fuzz_options.mutant_id = options.mutant_id.value_or("");
    fuzz_options.obs = options.obs;

    fuzz::Fuzzer fuzzer(component->spec(), fuzz_options);
    fuzzer.completions(&completions).case_runner(case_runner);
    const fuzz::FuzzResult result = fuzzer.run();

    // Persist reproducers before rendering so the report can carry each
    // finding's corpus filename.
    int rc = 0;
    std::vector<std::string> finding_lines;
    for (const auto& finding : result.findings) {
        std::ostringstream line;
        line << finding.key() << "  iter " << finding.iteration << "  "
             << finding.reproducer.calls.size() << " call(s)  shrink "
             << finding.shrink.steps << " step(s)";
        if (options.corpus_dir) {
            const std::uint64_t entry_seed = campaign::derive_item_seed(
                fuzz_options.seed, fuzz_options.mutant_id, finding.key());
            const auto outcome =
                fuzz::persist_entry(*options.corpus_dir,
                                    finding.to_corpus_entry(class_name),
                                    &completions, case_runner, entry_seed);
            if (outcome.reproducible) {
                const auto slash = outcome.path.find_last_of('/');
                line << "  -> "
                     << (slash == std::string::npos ? outcome.path
                                                    : outcome.path.substr(slash + 1));
            } else {
                line << "  [NOT-REPRODUCIBLE]";
                rc = 1;
            }
        }
        finding_lines.push_back(line.str());
    }

    if (options.telemetry_path) {
        campaign::TelemetrySink sink =
            campaign::TelemetrySink::to_file(*options.telemetry_path);
        sink.emit(obs::JsonObject{}
                      .set("event", "fuzz-start")
                      .set("class", class_name)
                      .set("seed", static_cast<std::uint64_t>(fuzz_options.seed))
                      .set("iters", static_cast<std::uint64_t>(options.iters))
                      .set("mutant", fuzz_options.mutant_id));
        for (const auto& finding : result.findings) {
            sink.emit(
                obs::JsonObject{}
                    .set("event", "fuzz-finding")
                    .set("key", finding.key())
                    .set("verdict", driver::to_string(finding.verdict))
                    .set("method", finding.failed_method)
                    .set("iteration", static_cast<std::uint64_t>(finding.iteration))
                    .set("shrink_steps",
                         static_cast<std::uint64_t>(finding.shrink.steps))
                    .set("calls", static_cast<std::uint64_t>(
                                      finding.reproducer.calls.size())));
        }
        // One event per verdict kind — zero counts included, so a kind
        // that never fired (contract-not-enforced, setup-error) is
        // visibly zero in `concat stats`, not absent.
        for (const driver::Verdict v : driver::kAllVerdicts) {
            const std::string name = driver::to_string(v);
            const auto it = result.stats.verdict_counts.find(name);
            const std::uint64_t count =
                it == result.stats.verdict_counts.end() ? 0 : it->second;
            sink.emit(obs::JsonObject{}
                          .set("event", "fuzz-verdict")
                          .set("verdict", name)
                          .set("count", count));
        }
        obs::JsonObject end;
        end.set("event", "fuzz-end")
            .set("iterations",
                 static_cast<std::uint64_t>(result.stats.iterations))
            .set("executions",
                 static_cast<std::uint64_t>(result.stats.executions))
            .set("interesting",
                 static_cast<std::uint64_t>(result.stats.interesting))
            .set("population",
                 static_cast<std::uint64_t>(result.stats.population))
            .set("nodes",
                 static_cast<std::uint64_t>(result.stats.nodes_covered))
            .set("edges",
                 static_cast<std::uint64_t>(result.stats.edges_covered))
            .set("findings", static_cast<std::uint64_t>(result.findings.size()));
        if (isolated) {
            const sandbox::PoolStats& sandbox_stats = isolated->stats();
            end.set("sandbox_spawns",
                    static_cast<std::uint64_t>(sandbox_stats.spawned))
                .set("sandbox_respawns",
                     static_cast<std::uint64_t>(sandbox_stats.respawned))
                .set("sandbox_kills",
                     static_cast<std::uint64_t>(sandbox_stats.kills));
        }
        sink.emit(end);
    }

    std::ostringstream report;
    report << "fuzz: " << class_name << ", seed " << fuzz_options.seed << ", "
           << options.iters << " iteration(s)";
    if (*mutant) report << ", mutant " << (*mutant)->id();
    report << "\n" << result.stats.render();
    if (finding_lines.empty()) {
        report << "no findings\n";
    } else {
        report << "findings:\n";
        for (const auto& line : finding_lines) report << "  " << line << "\n";
    }
    const int emit_rc = emit(options, report.str());
    return rc != 0 ? rc : emit_rc;
}

// `concat run <coblist|sortable>`: one plain execution of the generated
// suite — the smallest way to watch the component behave.  With
// --mutant the run happens under that seeded fault; with --model the
// lockstep reference model runs alongside and a divergence on an
// otherwise-passing case is promoted to a model-divergence verdict with
// the first divergent call in the message.  Exit 0 iff every case
// passed, so `concat run <c> --model` doubles as a conformance gate and
// `concat run <c> --mutant M --model` as a single-mutant demonstrator.
int cmd_run(const Options& options) {
    mfc::ElementPool pool;
    auto component = make_builtin("run", options.tspec_path);
    if (!component) return 2;
    const driver::CompletionRegistry completions = mfc::make_completions(pool);
    component->set_completions(completions);
    const std::string& class_name = component->spec().class_name;

    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), class_name);
    const auto mutant =
        resolve_mutant("run", mutants, options.mutant_id.value_or(""));
    if (!mutant) return 2;

    driver::RunnerOptions runner_options;
    runner_options.obs = options.obs;
    if (options.model) {
        const auto model_binding = resolve_model("run", class_name);
        if (!model_binding) return 2;
        runner_options.model = *model_binding;
        runner_options.promote_divergence = true;
    }
    const driver::TestRunner runner(component->registry(), runner_options);

    const driver::TestSuite suite = component->generate_tests(options.generator);
    driver::SuiteResult result;
    if (*mutant) {
        const mutation::MutantActivation active(**mutant);
        result = runner.run(suite);
    } else {
        result = runner.run(suite);
    }

    std::ostringstream report;
    report << "run: " << class_name << ", " << suite.size() << " case(s), seed "
           << options.generator.seed;
    if (*mutant) report << ", mutant " << (*mutant)->id();
    if (options.model) report << ", model oracle";
    report << "\n";

    std::size_t failures = 0;
    for (const auto& r : result.results) {
        report << "  " << r.case_id << "  " << driver::to_string(r.verdict);
        if (r.verdict != driver::Verdict::Pass) {
            ++failures;
            if (!r.failed_method.empty()) {
                report << "  [" << r.failed_method << "]";
            }
            if (!r.message.empty()) report << "  " << r.message;
        }
        report << "\n";
    }
    report << "verdicts:";
    for (const driver::Verdict v : driver::kAllVerdicts) {
        report << "  " << driver::to_string(v) << "=" << result.count(v);
    }
    report << "\n";

    const int emit_rc = emit(options, report.str());
    if (failures != 0) return 1;
    return emit_rc;
}

// `concat shrink <coblist|sortable> --case FILE`: reload one corpus
// entry, verify it still replays to its recorded verdict, re-shrink it
// under the given budget, and write the minimized entry back (--corpus
// DIR for the canonical filename, else -o/stdout).  Exit 1 when the
// replay no longer matches — a stale entry is a signal, not noise.
int cmd_shrink(const Options& options) {
    if (!options.case_path) {
        std::cerr << "concat shrink: --case is required\n";
        return 2;
    }
    mfc::ElementPool pool;
    auto component = make_builtin("shrink", options.tspec_path);
    if (!component) return 2;
    const driver::CompletionRegistry completions = mfc::make_completions(pool);
    component->set_completions(completions);
    const std::string& class_name = component->spec().class_name;

    fuzz::CorpusEntry entry = fuzz::load_entry_file(*options.case_path);
    if (entry.suite.class_name != class_name) {
        std::cerr << "concat shrink: entry is for class '"
                  << entry.suite.class_name << "', component is '" << class_name
                  << "'\n";
        return 2;
    }

    // --mutant overrides the recorded mutant (e.g. replaying a component
    // fault under a candidate fix's mutant id).
    const std::string mutant_id = options.mutant_id.value_or(entry.mutant_id);
    const auto mutants = mutation::enumerate_mutants(mfc::descriptors(), class_name);
    const auto mutant = resolve_mutant("shrink", mutants, mutant_id);
    if (!mutant) return 2;

    driver::recomplete_suite(entry.suite, completions, entry.suite.seed);

    driver::RunnerOptions runner_options;
    runner_options.obs = options.obs;
    const driver::TestRunner runner(component->registry(), runner_options);
    const reflect::ClassBinding& binding = component->registry().at(class_name);
    const fuzz::CaseRunner case_runner =
        [&](const driver::TestCase& tc) -> driver::TestResult {
        if (*mutant) {
            const mutation::MutantActivation active(**mutant);
            return runner.run_case(binding, tc);
        }
        return runner.run_case(binding, tc);
    };

    const driver::TestResult observed = case_runner(entry.reproducer());
    if (observed.verdict != entry.verdict) {
        std::cerr << "concat shrink: replay verdict "
                  << driver::to_string(observed.verdict)
                  << " does not match recorded "
                  << driver::to_string(entry.verdict) << "\n";
        return 1;
    }

    const tfm::Graph graph = component->spec().build_tfm();
    fuzz::ShrinkOptions shrink_options;
    shrink_options.max_steps = options.max_shrink_steps;
    shrink_options.obs = options.obs;
    const fuzz::Predicate still_fails = [&](const driver::TestCase& tc) {
        return case_runner(tc).verdict == entry.verdict;
    };
    const fuzz::ShrinkResult shrunk = fuzz::shrink_case(
        component->spec(), graph, entry.reproducer(), still_fails, shrink_options);

    std::cerr << "shrink: " << class_name << "  "
              << entry.reproducer().calls.size() << " -> "
              << shrunk.minimized.calls.size() << " call(s), " << shrunk.steps
              << " step(s), " << shrunk.sequence_removals << " removal(s), "
              << shrunk.value_reductions << " value reduction(s)\n";

    fuzz::CorpusEntry minimized = entry;
    minimized.suite.cases = {shrunk.minimized};
    if (options.corpus_dir) {
        const auto outcome =
            fuzz::persist_entry(*options.corpus_dir, minimized, &completions,
                                case_runner, entry.suite.seed);
        if (!outcome.reproducible) {
            std::cerr << "concat shrink: minimized entry did not replay after "
                         "persistence round-trip\n";
            return 1;
        }
        std::cout << "wrote " << outcome.path << "\n";
        // Corpus filenames are content-hashed, so a shrink that changed
        // the case lands under a new name; drop the superseded input
        // entry rather than accumulating duplicate reproducers for the
        // same finding.
        std::error_code ec;
        const bool same =
            std::filesystem::equivalent(*options.case_path, outcome.path, ec);
        if (!ec && !same) {
            if (std::filesystem::remove(*options.case_path, ec) && !ec) {
                std::cerr << "removed superseded " << *options.case_path << "\n";
            }
        }
        return 0;
    }
    std::ostringstream out;
    fuzz::save_entry(out, minimized);
    return emit(options, out.str());
}

// `concat stats TELEMETRY.jsonl [MORE.jsonl...]`: offline aggregation
// of campaign telemetry stream(s) (docs/FORMATS.md §5) into the summary
// a profiler wants first: verdict/fate breakdown, kill-reason
// histogram, the slowest items, and per-worker utilization.  Several
// files — e.g. a dispatch coordinator's stream plus each worker
// daemon's — aggregate into one summary, items deduplicated by index.
int cmd_stats(const Options& options) {
    if (options.follow) {
        // Live view over ONE growing file: poll its tail, re-render a
        // compact snapshot after each batch of new lines, stop once the
        // stream's campaign-end arrives (or on Ctrl-C, like tail -f).
        // The torn-tail holdback in TelemetryTail makes a writer caught
        // mid-line invisible here.
        if (!options.extra_inputs.empty()) {
            std::cerr << "concat stats: --follow takes exactly one file\n";
            return 2;
        }
        using FollowClock = std::chrono::steady_clock;
        const auto t0 = FollowClock::now();
        obs::TelemetryTail tail(options.tspec_path);
        obs::TelemetryStats stats;
        auto render = [&] {
            stats.sort_items();
            const double elapsed_s =
                std::chrono::duration<double>(FollowClock::now() - t0).count();
            stats.render_follow(std::cout, elapsed_s);
            std::cout << std::flush;
        };
        for (;;) {
            const std::size_t fresh = tail.poll(stats);
            if (fresh > 0) render();
            if (stats.have_summary) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        return 0;
    }
    std::vector<std::string> paths;
    paths.push_back(options.tspec_path);
    paths.insert(paths.end(), options.extra_inputs.begin(),
                 options.extra_inputs.end());
    const obs::TelemetryStats stats = obs::TelemetryStats::from_files(paths);
    std::ostringstream out;
    if (options.json_stats) {
        stats.write_json(out, options.top);
    } else {
        stats.render(out, options.top);
    }
    return emit(options, out.str());
}

// `concat serve [--listen PORT] [--once]`: the worker daemon of the
// campaign service (docs/FORMATS.md §10).  Binds, announces the bound
// port on stdout (so scripts using --listen 0 can read the ephemeral
// choice before connecting), then serves coordinator sessions until
// stopped — or exactly one under --once, the CI-gate shape.  The daemon
// carries no campaign flags: the coordinator's Hello handshake is the
// single source of campaign configuration, cross-checked by fingerprint.
int cmd_serve(const Options& options) {
    std::optional<campaign::TelemetrySink> sink;
    if (options.telemetry_path) {
        sink = campaign::TelemetrySink::to_file(*options.telemetry_path);
    }
    serve::ServeOptions serve_options;
    serve_options.port = static_cast<std::uint16_t>(options.listen_port);
    serve_options.bind_host = options.bind_host;
    serve_options.once = options.once;
    serve_options.obs = options.obs;
    if (sink) {
        serve_options.telemetry = [&sink](const obs::JsonObject& event) {
            sink->emit(event);
        };
    }
    serve::WorkerDaemon daemon(serve::builtin_session_factory(),
                               std::move(serve_options));
    const std::uint16_t port = daemon.bind();
    std::cout << "listening on port " << port << "\n" << std::flush;
    daemon.serve();
    std::cerr << "serve stats: sessions=" << daemon.sessions() << "\n";
    return 0;
}

// `concat dispatch <coblist|sortable> --workers host:port[,...]`: the
// coordinator of the campaign service.  Builds the same campaign a
// local `concat campaign` would (suite, mutants, golden baselines,
// fingerprint), shards the work list deterministically across the
// daemons, merges their Result streams into per-item slots, and renders
// the report through the same renderer — so the stdout report is
// byte-identical to the single-process run for any worker count, any
// completion order, and any mid-run worker death (survivors re-execute
// the lost items to identical fates).  --resume shares the campaign
// store format: a dispatch can resume a local run and vice versa.
int cmd_dispatch(const Options& options) {
    if (!options.workers) {
        std::cerr << "concat dispatch: --workers is required\n";
        return 2;
    }
    // Unknown names fall through to open(), whose error lists the
    // registered targets.
    if (const serve::BuiltinTarget* target =
            serve::find_builtin_target(options.tspec_path)) {
        if (const int rc = check_assembly_flag("dispatch", options, *target)) {
            return rc;
        }
    }
    serve::BuiltinCampaignConfig config;
    config.component = options.tspec_path;
    config.generator = options.generator;
    config.probe = options.probe;
    config.model = options.model;
    config.prune = options.prune;

    std::string error;
    const auto host = serve::BuiltinCampaign::open(config, &error, options.obs);
    if (!host) {
        std::cerr << "concat dispatch: " << error << "\n";
        return 2;
    }
    const driver::TestSuite& suite = host->suite();
    const std::vector<mutation::Mutant>& mutants = host->mutants();
    const std::string& fingerprint = host->fingerprint();

    const std::vector<serve::Endpoint> endpoints =
        serve::parse_endpoints(*options.workers);

    std::optional<campaign::TelemetrySink> sink;
    if (options.telemetry_path) {
        sink = campaign::TelemetrySink::to_file(*options.telemetry_path);
    }
    // --progress folds every telemetry event — the coordinator's own
    // and the workers' streamed copies — into a live TelemetryStats and
    // re-renders a compact snapshot to stderr at the telemetry
    // interval.  stderr, so the stdout report stays byte-identical to
    // the local run.
    obs::TelemetryStats progress_stats;
    const auto progress_t0 = std::chrono::steady_clock::now();
    auto last_progress = progress_t0;
    auto render_progress = [&] {
        progress_stats.sort_items();
        progress_stats.render_follow(
            std::cerr, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - progress_t0)
                           .count());
    };
    auto emit_event = [&](const obs::JsonObject& event) {
        if (sink) sink->emit(event);
        if (!options.progress) return;
        progress_stats.absorb_event(event);
        const auto now = std::chrono::steady_clock::now();
        if (now - last_progress < std::chrono::milliseconds(std::max<
                std::uint64_t>(options.telemetry_interval_ms, 1))) {
            return;
        }
        last_progress = now;
        render_progress();
    };

    emit_event(obs::JsonObject()
                   .set("event", "campaign-start")
                   .set("campaign", fingerprint)
                   .set("class", suite.class_name)
                   .set("seed", options.generator.seed)
                   .set("jobs", static_cast<std::uint64_t>(endpoints.size()))
                   .set("mutants", static_cast<std::uint64_t>(mutants.size()))
                   .set("cases", static_cast<std::uint64_t>(suite.cases.size()))
                   .set("probe", options.probe)
                   .set("model", options.model)
                   .set("prune", host->pruned())
                   .set("baseline_clean", host->baseline_clean()));

    // Resume pass, same contract as the in-process scheduler: restore
    // finished items from the store, ship only the rest.
    std::optional<campaign::ResultStore> store;
    if (options.store_path) store.emplace(*options.store_path, fingerprint);

    std::vector<mutation::MutantOutcome> outcomes(mutants.size());
    std::vector<campaign::WorkItem> pending;
    std::size_t resumed = 0;
    for (const campaign::WorkItem& item : host->items()) {
        outcomes[item.index].mutant = &mutants[item.index];
        const campaign::ItemRecord* record =
            store ? store->find(item.key) : nullptr;
        mutation::MutantOutcome outcome;
        if (record == nullptr ||
            !campaign::restore_outcome(*record, &outcome)) {
            pending.push_back(item);
            continue;
        }
        outcome.mutant = &mutants[item.index];
        outcomes[item.index] = outcome;
        ++resumed;
        emit_event(obs::JsonObject()
                       .set("event", "item-resumed")
                       .set("item", static_cast<std::uint64_t>(item.index))
                       .set("mutant", item.mutant_id)
                       .set("fate", record->fate)
                       .set("reason", record->reason)
                       .set("model_only", record->model_only));
    }

    serve::DispatchOptions dispatch_options;
    dispatch_options.workers = endpoints;
    dispatch_options.hello = serve::make_hello(config, fingerprint);
    dispatch_options.expected_fingerprint = fingerprint;
    dispatch_options.keepalive_ms = static_cast<int>(options.keepalive_ms);
    dispatch_options.dead_after_ms = static_cast<int>(options.dead_after_ms);
    dispatch_options.obs = options.obs;
    // Event streaming is negotiated whenever the coordinator has
    // somewhere to put the workers' events: a --telemetry-out sink (the
    // fleet-wide JSONL) or a --progress view.  Span streaming rides on
    // --trace-out alone (the Hello "trace" field, set by the
    // coordinator when its tracer is enabled).
    dispatch_options.stream_telemetry = sink.has_value() || options.progress;
    dispatch_options.telemetry_interval_ms =
        static_cast<int>(options.telemetry_interval_ms);
    if (sink || options.progress) {
        dispatch_options.telemetry = emit_event;
    }

    mutation::PruneStats prune_totals;
    auto merge_result = [&](const campaign::WorkItem& item,
                            const obs::JsonObject& result) {
        // The Result payload is the sandbox outcome codec plus
        // item/wall_ms/worker — decode_outcome tolerates the extras.
        mutation::MutantOutcome outcome =
            sandbox::decode_outcome(result.to_line())
                .value_or(
                    sandbox::outcome_from_termination("worker-exit:-3"));
        outcome.mutant = &mutants[item.index];
        const double wall_ms = result.get_double("wall_ms").value_or(0.0);
        outcomes[item.index] = outcome;
        prune_totals += sandbox::decode_outcome_stats(result.to_line());
        obs::JsonObject finish;
        finish.set("event", "item-finish")
            .set("item", static_cast<std::uint64_t>(item.index))
            .set("mutant", item.mutant_id)
            .set("worker", result.get_uint("worker").value_or(0))
            .set("fate", mutation::to_string(outcome.fate))
            .set("reason", oracle::to_string(outcome.reason))
            .set("hit", outcome.hit_by_suite)
            .set("probe_kill", outcome.killed_by_probe)
            .set("model_only", outcome.model_only)
            .set("shrunk", false)
            .set("item_seed", item.item_seed)
            .set("wall_ms", wall_ms);
        if (!outcome.sandbox.empty()) {
            finish.set("sandbox", outcome.sandbox);
        }
        emit_event(finish);
        if (store) {
            campaign::ItemRecord record;
            record.key = item.key;
            record.mutant_id = item.mutant_id;
            record.item_index = item.index;
            record.fate = mutation::to_string(outcome.fate);
            record.reason = oracle::to_string(outcome.reason);
            record.hit_by_suite = outcome.hit_by_suite;
            record.killed_by_probe = outcome.killed_by_probe;
            record.model_only = outcome.model_only;
            record.item_seed = item.item_seed;
            record.wall_ms = wall_ms;
            record.sandbox = outcome.sandbox;
            store->append(record);
        }
    };

    // A fully-resumed dispatch has nothing to ship: don't require a
    // reachable worker just to execute zero items.
    serve::DispatchStats stats;
    stats.workers = endpoints.size();
    if (!pending.empty()) {
        serve::Coordinator coordinator(std::move(dispatch_options));
        stats = coordinator.run(pending, merge_result);
    }

    mutation::MutationRun run;
    run.outcomes = std::move(outcomes);
    run.golden = host->golden();
    run.baseline_clean = host->baseline_clean();

    for (const oracle::KillReason reason : oracle::kAllKillReasons) {
        if (reason == oracle::KillReason::None) continue;
        emit_event(obs::JsonObject()
                       .set("event", "kill-reason")
                       .set("reason", oracle::to_string(reason))
                       .set("kills", static_cast<std::uint64_t>(
                                         run.kills_by(reason))));
    }
    emit_event(
        obs::JsonObject()
            .set("event", "campaign-end")
            .set("campaign", fingerprint)
            .set("items", static_cast<std::uint64_t>(host->items().size()))
            .set("executed", static_cast<std::uint64_t>(stats.executed))
            .set("resumed", static_cast<std::uint64_t>(resumed))
            .set("killed", static_cast<std::uint64_t>(run.killed()))
            .set("killed_model_only",
                 static_cast<std::uint64_t>(run.kills_model_only()))
            .set("equivalent", static_cast<std::uint64_t>(run.equivalent()))
            .set("not_covered", static_cast<std::uint64_t>(run.not_covered()))
            .set("score", run.score())
            .set("workers",
                 static_cast<std::uint64_t>(stats.workers_connected))
            .set("respawns", std::uint64_t{0})
            .set("pruned", host->pruned())
            .set("executed_pairs", prune_totals.executed_pairs)
            .set("pruned_pairs", prune_totals.pruned_pairs)
            .set("memoized_pairs", prune_totals.memoized_pairs)
            .set("memoized_calls", prune_totals.memoized_calls)
            .set("wall_ms", stats.wall_ms));
    if (options.progress) render_progress();  // the closing snapshot

    std::ostringstream report;
    mutation::render_campaign_report(report, run, suite.class_name,
                                     suite.size(), options.generator.seed);

    // Scheduling-dependent numbers stay on stderr, exactly like
    // `concat campaign`, so the report byte-matches the local run.
    std::cerr << "dispatch stats: campaign=" << fingerprint
              << " workers=" << stats.workers_connected << "/" << stats.workers
              << " executed=" << stats.executed << " resumed=" << resumed
              << " redispatched=" << stats.redispatched
              << " disconnects=" << stats.disconnects
              << " wall_ms=" << stats.wall_ms << "\n";
    if (host->pruned()) {
        std::cerr << "prune stats: executed_pairs="
                  << prune_totals.executed_pairs
                  << " pruned_pairs=" << prune_totals.pruned_pairs
                  << " memoized_pairs=" << prune_totals.memoized_pairs
                  << " memoized_calls=" << prune_totals.memoized_calls << "\n";
    }

    return emit(options, report.str());
}

/// Write the --trace-out / --metrics-out artifacts collected during the
/// command.  Failures are reported but only turn a successful run into
/// a failure (a failed command keeps its own exit code).
int flush_observability(const Options& options) {
    int rc = 0;
    if (options.trace_path) {
        std::ofstream out(*options.trace_path);
        if (out) {
            options.obs.tracer.write_chrome_trace(out);
        } else {
            std::cerr << "concat: cannot write trace file: " << *options.trace_path
                      << "\n";
            rc = 1;
        }
    }
    if (options.metrics_path) {
        std::ofstream out(*options.metrics_path);
        if (out) {
            const std::string& path = *options.metrics_path;
            const bool json = path.size() >= 5 &&
                              path.compare(path.size() - 5, 5, ".json") == 0;
            if (json) {
                options.obs.metrics.write_json(out);
            } else {
                options.obs.metrics.write_text(out);
            }
        } else {
            std::cerr << "concat: cannot write metrics file: "
                      << *options.metrics_path << "\n";
            rc = 1;
        }
    }
    return rc;
}

int dispatch(const Options& options) {
    // Campaign, fuzz, run, shrink and stats do not read a t-spec file;
    // assemble reads an *assembly* file and parses it itself.
    if (options.command == "campaign") return cmd_campaign(options);
    if (options.command == "kill") return cmd_kill(options);
    if (options.command == "assemble") return cmd_assemble(options);
    if (options.command == "fuzz") return cmd_fuzz(options);
    if (options.command == "run") return cmd_run(options);
    if (options.command == "shrink") return cmd_shrink(options);
    if (options.command == "stats") return cmd_stats(options);
    if (options.command == "serve") return cmd_serve(options);
    if (options.command == "dispatch") return cmd_dispatch(options);

    const auto spec = tspec::parse_tspec(read_file(options.tspec_path));

    if (options.command == "validate") return cmd_validate(options, spec);
    if (options.command == "describe") return cmd_describe(options, spec);
    if (options.command == "print") {
        return emit(options, tspec::print_tspec(spec));
    }
    if (options.command == "dot") {
        spec.ensure_valid();
        return emit(options, spec.build_tfm().to_dot());
    }
    if (options.command == "transactions") return cmd_transactions(options, spec);
    if (options.command == "coverage") return cmd_coverage(options, spec);
    if (options.command == "suite") return cmd_suite(options, spec);
    if (options.command == "gen") return cmd_gen(options, spec);
    if (options.command == "replan") return cmd_replan(options, spec);

    std::cerr << "concat: unknown command '" << options.command << "'\n";
    return usage(std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
    // The example targets (wallet, shop) join the pre-registered mfc
    // ones before any command resolves a component name — including a
    // serve daemon's handshake-time lookup.
    stc::examples::register_example_targets();

    auto options = parse_args(argc, argv);
    if (!options) return usage(std::cerr);

    // The observability context exists exactly when an output was
    // requested; otherwise every instrument in the pipeline stays on
    // its no-op fast path.
    if (options->trace_path) options->obs.tracer = obs::Tracer::make();
    if (options->metrics_path) options->obs.metrics = obs::Metrics::make();
    options->generator.obs = options->obs;

    int rc;
    try {
        rc = dispatch(*options);
    } catch (const stc::Error& e) {
        std::cerr << "concat: " << e.what() << "\n";
        rc = 1;
    }
    const int flush_rc = flush_observability(*options);
    return rc == 0 ? flush_rc : rc;
}
