#include <gtest/gtest.h>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/history/version_diff.h"
#include "stc/support/error.h"
#include "test_component.h"

namespace stc::history {
namespace {

tspec::ComponentSpec v1() { return stc::testing::counter_spec(); }

/// Release 2: Dec removed, Inc gains a parameter, and a new method
/// appears.  The parameterized constructor (m2) stays unchanged so some
/// transactions survive intact.
tspec::ComponentSpec v2() {
    tspec::ComponentSpec spec = v1();
    // Remove Dec (m5).
    for (auto it = spec.methods.begin(); it != spec.methods.end();) {
        it = it->id == "m5" ? spec.methods.erase(it) : std::next(it);
    }
    // Inc (m4) gains a parameter.
    auto* inc = const_cast<tspec::MethodSpec*>(spec.find_method("m4"));
    inc->parameters.push_back(
        tspec::TypedSlot{"times", tspec::TypeTag::Range, domain::int_range(1, 3), ""});
    // A new method.
    spec.methods.push_back({"m8", "Double", "", tspec::MethodCategory::New, {}});
    return spec;
}

// -------------------------------------------------------------------- diff

TEST(VersionDiff, ClassifiesEveryKindOfChange) {
    const SpecDelta delta = diff_specs(v1(), v2());
    EXPECT_EQ(delta.change_of("m1"), MethodChange::Unchanged);
    EXPECT_EQ(delta.change_of("m2"), MethodChange::Unchanged);
    EXPECT_EQ(delta.change_of("m4"), MethodChange::SignatureChanged);
    EXPECT_EQ(delta.change_of("m5"), MethodChange::Removed);
    EXPECT_EQ(delta.change_of("m8"), MethodChange::Added);
    EXPECT_EQ(delta.change_of("m7"), MethodChange::Unchanged);  // Get
    EXPECT_TRUE(delta.any_changes());
}

TEST(VersionDiff, DomainRedeclarationIsDomainChanged) {
    auto widened = v1();
    auto* ctor = const_cast<tspec::MethodSpec*>(widened.find_method("m2"));
    ctor->parameters[0].domain = domain::int_range(1, 20);
    const SpecDelta delta = diff_specs(v1(), widened);
    EXPECT_EQ(delta.change_of("m2"), MethodChange::DomainChanged);
    // Frozen cases that used the old domain must be regenerated.
    const auto frozen = driver::DriverGenerator(v1()).generate();
    const auto plan = replan_suite(frozen, delta);
    EXPECT_GT(plan.regenerate.size(), 0u);
}

TEST(VersionDiff, IdenticalReleasesAreCleanAndUnknownIdsAreRemoved) {
    const SpecDelta delta = diff_specs(v1(), v1());
    EXPECT_FALSE(delta.any_changes());
    for (const auto& [id, change] : delta.methods) {
        EXPECT_EQ(change, MethodChange::Unchanged) << id;
    }
    // An id the delta never saw is treated as removed (fail safe).
    EXPECT_EQ(delta.change_of("ghost"), MethodChange::Removed);
}

TEST(VersionDiff, ModelChangeDetected) {
    auto changed = v1();
    changed.edges.pop_back();
    for (auto& n : changed.nodes) {
        int out = 0;
        for (const auto& e : changed.edges) out += e.from == n.id ? 1 : 0;
        n.declared_out_degree = out;
    }
    EXPECT_TRUE(diff_specs(v1(), changed).model_changed);
    EXPECT_FALSE(diff_specs(v1(), v1()).model_changed);
}

TEST(VersionDiff, DifferentClassesRejected) {
    auto other = v1();
    other.class_name = "SomethingElse";
    EXPECT_THROW((void)diff_specs(v1(), other), SpecError);
}

// ------------------------------------------------------------------ replan

TEST(VersionDiff, ReplanPartitionsAFrozenSuite) {
    const auto frozen = driver::DriverGenerator(v1()).generate();
    const SpecDelta delta = diff_specs(v1(), v2());
    const ReplayPlan plan = replan_suite(frozen, delta);

    EXPECT_EQ(plan.reusable() + plan.regenerate.size() + plan.obsolete.size(),
              frozen.size());
    EXPECT_GT(plan.obsolete.size(), 0u);    // Dec transactions dropped
    EXPECT_GT(plan.regenerate.size(), 0u);  // Inc/ctor(step) transactions stale
    EXPECT_GT(plan.reusable(), 0u);         // ctor()/Reset/Get-only paths live on

    // Sanity per class of decision.
    for (const auto& tc : plan.obsolete) {
        bool touches_removed = false;
        for (const auto& call : tc.calls) touches_removed |= call.method_id == "m5";
        EXPECT_TRUE(touches_removed) << tc.transaction_text;
    }
    for (const auto& tc : plan.still_valid.cases) {
        for (const auto& call : tc.calls) {
            EXPECT_NE(call.method_id, "m5");
            EXPECT_NE(call.method_id, "m4");
        }
    }
}

TEST(VersionDiff, StillValidSuiteRunsAgainstTheNewRelease) {
    // The surviving cases run green on a binding that honours the new
    // release's unchanged methods (the Counter itself is unchanged here —
    // only the spec evolved — so the old binding stands in for release 2).
    const auto frozen = driver::DriverGenerator(v1()).generate();
    const ReplayPlan plan = replan_suite(frozen, diff_specs(v1(), v2()));

    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());
    const auto result = driver::TestRunner(registry).run(plan.still_valid);
    EXPECT_EQ(result.failed(), 0u);
}

TEST(VersionDiff, ObsoleteEverythingWhenTheClassIsGutted) {
    auto gutted = v1();
    gutted.methods.clear();
    gutted.methods.push_back({"m1", "Counter", "", tspec::MethodCategory::Constructor, {}});
    const auto frozen = driver::DriverGenerator(v1()).generate();
    const ReplayPlan plan = replan_suite(frozen, diff_specs(v1(), gutted));
    EXPECT_EQ(plan.reusable(), 0u);  // every transaction used a removed method
}

}  // namespace
}  // namespace stc::history
