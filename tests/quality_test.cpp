#include <gtest/gtest.h>

#include "stc/core/quality.h"
#include "test_component.h"

namespace stc::core {
namespace {

class QualityTest : public ::testing::Test {
protected:
    QualityTest()
        : component_(stc::testing::counter_spec(), stc::testing::counter_binding()) {}

    SelfTestableComponent component_;
};

TEST_F(QualityTest, FullSuiteScoresHigh) {
    const auto suite = component_.generate_tests();
    driver::GeneratorOptions probe_options;
    probe_options.seed = 77;
    probe_options.cases_per_transaction = 3;
    const auto probe = component_.generate_tests(probe_options);

    const TestQuality quality = estimate_quality(
        component_, stc::testing::counter_descriptors(), suite, &probe);
    EXPECT_TRUE(quality.baseline_clean);
    EXPECT_EQ(quality.mutants, 18u);
    EXPECT_GT(quality.score, 0.8);
    EXPECT_EQ(quality.killed + quality.equivalent + quality.not_covered +
                  (quality.mutants - quality.killed - quality.equivalent -
                   quality.not_covered),
              quality.mutants);
    EXPECT_GT(quality.kills_by_assertion + quality.kills_by_output +
                  quality.kills_by_crash,
              0u);
}

TEST_F(QualityTest, NarrowSuiteScoresLower) {
    // A suite that never exercises Inc leaves its mutants uncovered —
    // quality-guided selection (Le Traon et al., §5) would reject it.
    auto full = component_.generate_tests();
    driver::TestSuite narrow = full;
    narrow.cases.clear();
    for (const auto& tc : full.cases) {
        bool calls_inc = false;
        for (const auto& call : tc.calls) calls_inc |= call.method_name == "Inc";
        if (!calls_inc) narrow.cases.push_back(tc);
    }
    ASSERT_FALSE(narrow.cases.empty());

    const TestQuality full_quality =
        estimate_quality(component_, stc::testing::counter_descriptors(), full);
    const TestQuality narrow_quality =
        estimate_quality(component_, stc::testing::counter_descriptors(), narrow);
    EXPECT_LT(narrow_quality.score, full_quality.score);
    EXPECT_EQ(narrow_quality.killed, 0u);
    EXPECT_EQ(narrow_quality.not_covered, narrow_quality.mutants);
}

TEST_F(QualityTest, SummaryIsReadable) {
    const auto suite = component_.generate_tests();
    const TestQuality quality =
        estimate_quality(component_, stc::testing::counter_descriptors(), suite);
    const std::string summary = quality.summary();
    EXPECT_NE(summary.find("test quality: score"), std::string::npos);
    EXPECT_NE(summary.find("kills:"), std::string::npos);
    EXPECT_NE(summary.find("baseline clean"), std::string::npos);
}

TEST_F(QualityTest, OracleConfigPropagates) {
    const auto suite = component_.generate_tests();
    mutation::EngineOptions weak;
    weak.oracle.use_output_diff = false;
    weak.oracle.use_assertions = false;
    const TestQuality crippled = estimate_quality(
        component_, stc::testing::counter_descriptors(), suite, nullptr, weak);
    const TestQuality full =
        estimate_quality(component_, stc::testing::counter_descriptors(), suite);
    EXPECT_LE(crippled.killed, full.killed);
    EXPECT_EQ(crippled.kills_by_output, 0u);
    EXPECT_EQ(crippled.kills_by_assertion, 0u);
}

}  // namespace
}  // namespace stc::core
