// A small, fully controlled self-testable component used by the
// framework's own tests: deterministic behaviour, a tiny TFM, and an
// instrumented method with a hand-countable mutant population.
#pragma once

#include <ostream>
#include <string>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "stc/mutation/descriptor.h"
#include "stc/mutation/frame.h"
#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc::testing {

/// Bounded counter.  Inc() is instrumented for interface mutation with a
/// known site/variable population:
///   params:  (none)
///   locals:  delta (int)
///   attrs:   value_ (used), step_ (used), max_ (unused -> E set)
///   sites:   s0 = use of delta, s1 = use of value_
/// Expected mutants per site: BitNeg 1, RepGlob 2 or 1, RepLoc 0 or 1,
/// RepExt 1, RepReq 5  =>  s0: 9, s1: 9, total 18.
class Counter : public bit::BuiltInTest {
public:
    static constexpr int kMax = 100;

    Counter() = default;
    explicit Counter(int step) : step_(step) {
        STC_PRECONDITION(step >= 1 && step <= 10);
    }

    static const mutation::MethodDescriptor& inc_descriptor();

    void Inc();

    void Dec() {
        STC_PRECONDITION(value_ >= step_);
        value_ -= step_;
    }

    void Reset() { value_ = 0; }

    [[nodiscard]] int Get() const { return value_; }

    void InvariantTest() const override {
        STC_CLASS_INVARIANT(value_ >= 0 && value_ <= kMax);
    }

    void Reporter(std::ostream& os) const override {
        os << "Counter{value=" << value_ << ", step=" << step_ << "}";
    }

private:
    int value_ = 0;
    int step_ = 1;
    int max_ = kMax;
};

inline const mutation::MethodDescriptor& Counter::inc_descriptor() {
    using mutation::int_type;
    static const mutation::MethodDescriptor d =
        mutation::MethodDescriptor::Builder("Counter", "Inc")
            .local("delta", int_type())
            .attr("value_", int_type(), true)
            .attr("step_", int_type(), true)
            .attr("max_", int_type(), false)
            .site("delta", "increment amount")  // s0
            .site("value_", "old value")        // s1
            .build();
    return d;
}

inline void Counter::Inc() {
    mutation::MutFrame frame(inc_descriptor());
    int delta = step_;
    frame.bind("delta", &delta);
    frame.bind("value_", &value_);
    frame.bind("step_", &step_);
    frame.bind("max_", &max_);

    value_ = frame.use(1, value_) + frame.use(0, delta);
    STC_POSTCONDITION(value_ <= kMax);
}

/// t-spec: ctor (0 or 1 arg) -> { Inc loop | Dec } -> Get -> death.
inline tspec::ComponentSpec counter_spec() {
    tspec::SpecBuilder b("Counter");
    b.attr_range("value_", 0, Counter::kMax);
    b.attr_range("step_", 1, 10);
    b.method("m1", "Counter", tspec::MethodCategory::Constructor);
    b.method("m2", "Counter", tspec::MethodCategory::Constructor)
        .param_range("step", 1, 10);
    b.method("m3", "~Counter", tspec::MethodCategory::Destructor);
    b.method("m4", "Inc", tspec::MethodCategory::New);
    b.method("m5", "Dec", tspec::MethodCategory::New);
    b.method("m6", "Reset", tspec::MethodCategory::New);
    b.method("m7", "Get", tspec::MethodCategory::New, "int");

    b.node("n1", true, {"m1"});
    b.node("n2", true, {"m2"});
    b.node("n3", false, {"m4"});        // Inc
    b.node("n4", false, {"m4", "m5"});  // Inc then Dec
    b.node("n5", false, {"m6"});        // Reset
    b.node("n6", false, {"m7"});        // Get
    b.node("n7", false, {"m3"});        // death

    b.edge("n1", "n3").edge("n1", "n4");
    b.edge("n2", "n3").edge("n2", "n6");
    b.edge("n3", "n3").edge("n3", "n6").edge("n3", "n5");
    b.edge("n4", "n6");
    b.edge("n5", "n6");
    b.edge("n6", "n7");
    return b.build();
}

inline reflect::ClassBinding counter_binding() {
    reflect::Binder<Counter> b("Counter");
    b.ctor<>();
    b.ctor<int>();
    b.method("Inc", &Counter::Inc);
    b.method("Dec", &Counter::Dec);
    b.method("Reset", &Counter::Reset);
    b.method("Get", &Counter::Get);
    return b.take();
}

inline const mutation::DescriptorRegistry& counter_descriptors() {
    static const mutation::DescriptorRegistry registry = [] {
        mutation::DescriptorRegistry r;
        r.add(&Counter::inc_descriptor());
        return r;
    }();
    return registry;
}

}  // namespace stc::testing
