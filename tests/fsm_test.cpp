#include <gtest/gtest.h>

#include <set>

#include "stc/driver/runner.h"
#include "stc/fsm/state_machine.h"
#include "stc/support/error.h"
#include "test_component.h"

namespace stc::fsm {
namespace {

/// Counter FSM: Zero -Inc-> Pos, Pos -Inc-> Pos, Pos -Dec-> Pos (stays
/// positive only conservatively: model Pos -Dec-> Zero), plus Get as a
/// self-loop query.
StateMachine counter_machine() {
    StateMachine::Builder b;
    b.state("Zero", /*initial*/ true, /*final*/ true);
    b.state("Pos", false, true);
    b.transition("Zero", "m4", "Pos");   // Inc
    b.transition("Pos", "m4", "Pos");    // Inc
    b.transition("Pos", "m5", "Zero");   // Dec (conservative: one unit)
    b.transition("Zero", "m7", "Zero");  // Get
    b.transition("Pos", "m7", "Pos");    // Get
    b.transition("Pos", "m6", "Zero");   // Reset
    return b.build();
}

// ----------------------------------------------------------------- model

TEST(Fsm, ValidModelPasses) {
    EXPECT_TRUE(counter_machine().validate().empty());
    EXPECT_EQ(counter_machine().initial_state(), "Zero");
}

TEST(Fsm, ValidationDetectsProblems) {
    // Two initial states.
    {
        StateMachine::Builder b;
        b.state("A", true, true).state("B", true, false);
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // No final state.
    {
        StateMachine::Builder b;
        b.state("A", true, false);
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Nondeterminism.
    {
        StateMachine::Builder b;
        b.state("A", true, true).state("B", false, true);
        b.transition("A", "m1", "B").transition("A", "m1", "A");
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Dangling state.
    {
        StateMachine::Builder b;
        b.state("A", true, true);
        b.transition("A", "m1", "Ghost");
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Unreachable state.
    {
        StateMachine::Builder b;
        b.state("A", true, true).state("Island", false, true);
        const auto problems = b.build_unchecked().validate();
        bool found = false;
        for (const auto& p : problems) {
            found = found || p.message.find("unreachable") != std::string::npos;
        }
        EXPECT_TRUE(found);
    }
}

// ------------------------------------------------------------------ tours

TEST(Fsm, ToursCoverEveryTransition) {
    const auto machine = counter_machine();
    const auto tours = machine.transition_tours();
    ASSERT_FALSE(tours.empty());

    std::set<const TransitionSpec*> covered;
    for (const auto& tour : tours) {
        ASSERT_FALSE(tour.empty());
        // Tours are connected paths from the initial state...
        std::string current = *machine.initial_state();
        for (const TransitionSpec* t : tour) {
            EXPECT_EQ(t->from, current);
            current = t->to;
            covered.insert(t);
        }
        // ...ending in a final state.
        EXPECT_TRUE(machine.find_state(current)->is_final);
    }
    EXPECT_EQ(covered.size(), machine.transitions().size());
}

TEST(Fsm, ToursAreDeterministic) {
    // The tours point into the machine's transition storage, so the
    // machines must outlive them.
    const StateMachine first = counter_machine();
    const StateMachine second = counter_machine();
    const auto a = first.transition_tours();
    const auto b = second.transition_tours();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size());
        for (std::size_t j = 0; j < a[i].size(); ++j) {
            EXPECT_EQ(a[i][j]->event, b[i][j]->event);
        }
    }
}

TEST(Fsm, SingleStateMachineHasMinimalTours) {
    StateMachine::Builder b;
    b.state("Only", true, true);
    b.transition("Only", "m3", "Only");
    const StateMachine machine = b.build();
    const auto tours = machine.transition_tours();
    ASSERT_EQ(tours.size(), 1u);
    EXPECT_EQ(tours[0].size(), 1u);
}

TEST(Fsm, TourLengthCapSplitsTours) {
    const auto machine = counter_machine();
    const auto capped = machine.transition_tours(2);
    const auto uncapped = machine.transition_tours();
    EXPECT_GT(capped.size(), uncapped.size());

    // Coverage and path-connectedness still hold.
    std::set<const TransitionSpec*> covered;
    for (const auto& tour : capped) {
        std::string current = *machine.initial_state();
        for (const TransitionSpec* t : tour) {
            EXPECT_EQ(t->from, current);
            current = t->to;
            covered.insert(t);
        }
        EXPECT_TRUE(machine.find_state(current)->is_final);
    }
    EXPECT_EQ(covered.size(), machine.transitions().size());
}

// ------------------------------------------------------------------ suite

TEST(Fsm, GeneratedSuiteRunsGreenOnCounter) {
    const auto machine = counter_machine();
    const auto spec = stc::testing::counter_spec();
    FsmSuiteOptions options;
    options.destructor_id = "m3";  // Counter's t-spec: m1/m2 ctors, m3 dtor
    const auto suite = generate_fsm_suite(machine, spec, options);
    ASSERT_GT(suite.size(), 0u);
    EXPECT_EQ(suite.model_nodes, machine.states().size());
    EXPECT_EQ(suite.model_links, machine.transitions().size());

    for (const auto& tc : suite.cases) {
        EXPECT_TRUE(tc.calls.front().is_constructor);
        EXPECT_TRUE(tc.calls.back().is_destructor);
        EXPECT_NE(tc.transaction_text.find("[Zero]"), std::string::npos);
    }

    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());
    const auto result = driver::TestRunner(registry).run(suite);
    EXPECT_EQ(result.failed(), 0u) << result.log;
}

TEST(Fsm, SuiteRequiresRealConstructorAndDestructor) {
    const auto machine = counter_machine();
    const auto spec = stc::testing::counter_spec();
    FsmSuiteOptions options;
    options.constructor_id = "m4";  // Inc is not a constructor
    EXPECT_THROW((void)generate_fsm_suite(machine, spec, options), SpecError);
    options.constructor_id = "m1";
    options.destructor_id = "m7";  // Get is neither
    EXPECT_THROW((void)generate_fsm_suite(machine, spec, options), SpecError);
}

TEST(Fsm, UnknownEventSurfacesAsSpecError) {
    StateMachine::Builder b;
    b.state("A", true, true);
    b.transition("A", "mZZ", "A");
    FsmSuiteOptions options;
    options.destructor_id = "m3";  // valid ctor/dtor: the event is the problem
    EXPECT_THROW((void)generate_fsm_suite(b.build(), stc::testing::counter_spec(),
                                          options),
                 SpecError);
}

}  // namespace
}  // namespace stc::fsm
