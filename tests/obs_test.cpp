// Observability layer tests: the span tracer and its Chrome trace-event
// export (schema round-trip through parse_chrome_trace), deterministic
// span ids, the metrics registry and its dumps, JsonlSink open modes,
// and the `concat stats` telemetry aggregation — including the
// torn-tail-line fixture a killed campaign leaves behind.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "stc/obs/context.h"
#include "stc/obs/jsonl_sink.h"
#include "stc/obs/metrics.h"
#include "stc/obs/stats.h"
#include "stc/obs/trace.h"
#include "stc/support/error.h"

namespace stc::obs {
namespace {

// ----------------------------------------------------------------- tracer

TEST(Tracer, DefaultConstructedIsDisabledAndInert) {
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());

    auto span = tracer.begin("phase", "nothing");
    EXPECT_EQ(span.tid, -1);
    tracer.end(std::move(span));
    EXPECT_EQ(tracer.event_count(), 0u);
    EXPECT_TRUE(tracer.events().empty());

    { const SpanScope scope(tracer, "phase", "still-nothing"); }
    EXPECT_EQ(tracer.event_count(), 0u);

    Context context;
    EXPECT_FALSE(context.enabled());
}

TEST(Tracer, RecordsCompleteSpansWithNesting) {
    const Tracer tracer = Tracer::make();
    EXPECT_TRUE(tracer.enabled());
    {
        const SpanScope outer(tracer, "phase", "campaign");
        {
            const SpanScope inner(tracer, "test-case", "TC0");
        }
        { const SpanScope sibling(tracer, "test-case", "TC1"); }
    }
    ASSERT_EQ(tracer.event_count(), 3u);

    // Completion order: inner spans close first.
    const auto events = tracer.events();
    EXPECT_EQ(events[0].name, "TC0");
    EXPECT_EQ(events[1].name, "TC1");
    EXPECT_EQ(events[2].name, "campaign");
    EXPECT_EQ(events[2].category, "phase");
    EXPECT_EQ(events[2].parent_id, 0u);  // root span
    EXPECT_EQ(events[0].parent_id, events[2].span_id);
    EXPECT_EQ(events[1].parent_id, events[2].span_id);
    EXPECT_NE(events[0].span_id, events[1].span_id);
    // All on the same (first) thread.
    for (const auto& e : events) EXPECT_EQ(e.tid, 0);
}

TEST(Tracer, SpanIdsAreDeterministicAcrossTracers) {
    // Same sequence of begins on a fresh tracer -> same ids: the ids
    // hash (thread ordinal, per-thread sequence), never addresses or
    // clock values.
    auto collect = [] {
        const Tracer tracer = Tracer::make();
        { const SpanScope a(tracer, "phase", "one"); }
        {
            const SpanScope b(tracer, "phase", "two");
            { const SpanScope c(tracer, "test-case", "nested"); }
        }
        std::vector<std::uint64_t> ids;
        for (const auto& e : tracer.events()) ids.push_back(e.span_id);
        return ids;
    };
    EXPECT_EQ(collect(), collect());
}

TEST(Tracer, ChromeTraceRoundTripsThroughTheParser) {
    const Tracer tracer = Tracer::make();
    {
        const SpanScope outer(
            tracer, "mutant-evaluation", "CObList::AddHead@s0",
            JsonObject().set("mutant", std::string("CObList::AddHead@s0")));
        const SpanScope inner(tracer, "method-call", "AddHead");
    }
    { const SpanScope quoted(tracer, "phase", "with \"quotes\" and \\"); }

    std::ostringstream os;
    tracer.write_chrome_trace(os);
    const std::string text = os.str();

    // Chrome trace-event envelope: complete events, one process.
    EXPECT_NE(text.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\":1"), std::string::npos);

    std::istringstream is(text);
    const auto parsed = parse_chrome_trace(is);
    ASSERT_TRUE(parsed.has_value());
    const auto original = tracer.events();
    ASSERT_EQ(parsed->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ((*parsed)[i].name, original[i].name) << i;
        EXPECT_EQ((*parsed)[i].category, original[i].category) << i;
        EXPECT_EQ((*parsed)[i].ts_us, original[i].ts_us) << i;
        EXPECT_EQ((*parsed)[i].dur_us, original[i].dur_us) << i;
        EXPECT_EQ((*parsed)[i].tid, original[i].tid) << i;
        EXPECT_EQ((*parsed)[i].span_id, original[i].span_id) << i;
        EXPECT_EQ((*parsed)[i].parent_id, original[i].parent_id) << i;
    }
    // The custom arg survived the round trip.
    EXPECT_EQ((*parsed)[1].args.get_string("mutant"),
              std::optional<std::string>("CObList::AddHead@s0"));
}

TEST(Tracer, ParserRejectsMalformedTraces) {
    auto parse = [](const std::string& text) {
        std::istringstream is(text);
        return parse_chrome_trace(is);
    };
    EXPECT_FALSE(parse("").has_value());
    EXPECT_FALSE(parse("{}").has_value());
    EXPECT_FALSE(parse("{\"traceEvents\":[{\"name\":\"x\"}]}").has_value());
    // A "B" (begin-only) event is not the emitted subset.
    EXPECT_FALSE(
        parse("{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"phase\",\"ph\":\"B\","
              "\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}")
            .has_value());
    // Empty array is a valid trace of zero spans.
    const auto empty = parse("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());
}

TEST(Tracer, ThreadsGetStableOrdinalsNotSystemIds) {
    const Tracer tracer = Tracer::make();
    { const SpanScope main_span(tracer, "phase", "main"); }
    std::thread worker(
        [&tracer] { const SpanScope span(tracer, "phase", "worker"); });
    worker.join();

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // Registration order: main thread first, worker second.
    EXPECT_EQ(events[0].tid, 0);
    EXPECT_EQ(events[1].tid, 1);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, DisabledRegistryIsInert) {
    Metrics metrics;
    EXPECT_FALSE(metrics.enabled());
    metrics.add("never");
    metrics.observe_ms("never_ms", 1.0);
    EXPECT_EQ(metrics.counter("never"), 0u);
    EXPECT_TRUE(metrics.counters().empty());
    EXPECT_TRUE(metrics.histograms().empty());
}

TEST(Metrics, CountersAccumulateAndSort) {
    const Metrics metrics = Metrics::make();
    metrics.add("b.second");
    metrics.add("a.first", 41);
    metrics.add("a.first");
    EXPECT_EQ(metrics.counter("a.first"), 42u);
    EXPECT_EQ(metrics.counter("absent"), 0u);

    const auto counters = metrics.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "a.first");
    EXPECT_EQ(counters[0].second, 42u);
    EXPECT_EQ(counters[1].first, "b.second");
}

TEST(Metrics, HistogramsTrackCountSumMinMax) {
    const Metrics metrics = Metrics::make();
    metrics.observe_ms("case_ms", 1.0);
    metrics.observe_ms("case_ms", 3.0);
    metrics.observe_ms("case_ms", 0.5);

    const auto histograms = metrics.histograms();
    ASSERT_EQ(histograms.size(), 1u);
    const auto& h = histograms[0];
    EXPECT_EQ(h.name, "case_ms");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum_ms, 4.5);
    EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
    EXPECT_DOUBLE_EQ(h.max_ms, 3.0);
    EXPECT_DOUBLE_EQ(h.mean_ms(), 1.5);
    std::uint64_t bucketed = 0;
    for (const auto& [le_ms, n] : h.buckets) bucketed += n;
    EXPECT_EQ(bucketed, 3u);
}

TEST(Metrics, DumpsContainEveryInstrument) {
    const Metrics metrics = Metrics::make();
    metrics.add("runner.verdict.pass", 7);
    metrics.observe_ms("runner.case_ms", 2.25);

    std::ostringstream text;
    metrics.write_text(text);
    EXPECT_NE(text.str().find("runner.verdict.pass"), std::string::npos);
    EXPECT_NE(text.str().find("runner.case_ms"), std::string::npos);
    EXPECT_NE(text.str().find("7"), std::string::npos);

    std::ostringstream json;
    metrics.write_json(json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j.find("\"runner.verdict.pass\":7"), std::string::npos);
    EXPECT_NE(j.find("\"count\":1"), std::string::npos);
    EXPECT_NE(j.find("\"buckets\":[["), std::string::npos);
}

TEST(Metrics, SharedHandleUpdatesOneRegistry) {
    const Metrics metrics = Metrics::make();
    const Metrics copy = metrics;  // the campaign hands copies to workers
    copy.add("shared");
    EXPECT_EQ(metrics.counter("shared"), 1u);

    std::thread worker([copy] { copy.add("shared", 9); });
    worker.join();
    EXPECT_EQ(metrics.counter("shared"), 10u);
}

// -------------------------------------------------------------- JsonlSink

TEST(JsonlSink, AppendModePreservesPreviousGenerations) {
    const std::string path = "/tmp/stc_obs_sink_modes.jsonl";
    std::remove(path.c_str());

    {
        JsonlSink sink = JsonlSink::to_file(path);
        sink.emit(JsonObject().set("event", std::string("one")));
        sink.emit(JsonObject().set("event", std::string("two")));
        EXPECT_EQ(sink.count(), 2u);
    }
    {
        JsonlSink sink = JsonlSink::to_file(path, JsonlSink::OpenMode::Append);
        sink.emit(JsonObject().set("event", std::string("three")));
    }

    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);  // append kept the first generation
    EXPECT_NE(lines[0].find("\"one\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"three\""), std::string::npos);

    // Truncate mode starts the file over.
    {
        JsonlSink sink = JsonlSink::to_file(path, JsonlSink::OpenMode::Truncate);
        sink.emit(JsonObject().set("event", std::string("fresh")));
    }
    std::ifstream again(path);
    lines.clear();
    while (std::getline(again, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"fresh\""), std::string::npos);
}

// ------------------------------------------------------- telemetry stats

/// A plausible two-generation telemetry stream: generation 1 was
/// interrupted mid-write (torn tail), generation 2 resumed its finished
/// item and completed the rest.
std::string two_generation_fixture() {
    return
        // generation 1
        "{\"event\":\"campaign-start\",\"campaign\":\"c0ffee\",\"class\":\"CObList\","
        "\"seed\":7,\"jobs\":2,\"mutants\":3,\"cases\":10,\"seq\":0}\n"
        "{\"event\":\"item-start\",\"item\":0,\"mutant\":\"M0\",\"worker\":0,\"seq\":1}\n"
        "{\"event\":\"item-finish\",\"item\":0,\"mutant\":\"M0\",\"worker\":0,"
        "\"fate\":\"killed\",\"reason\":\"crash\",\"wall_ms\":12.5,\"seq\":2}\n"
        "{\"event\":\"item-start\",\"item\":1,\"mutant\":\"M1\",\"wor"  // torn
        "\n"
        // generation 2 (resumed)
        "{\"event\":\"campaign-start\",\"campaign\":\"c0ffee\",\"class\":\"CObList\","
        "\"seed\":7,\"jobs\":2,\"mutants\":3,\"cases\":10,\"seq\":0}\n"
        "{\"event\":\"item-resumed\",\"item\":0,\"mutant\":\"M0\","
        "\"fate\":\"killed\",\"reason\":\"crash\",\"seq\":1}\n"
        "{\"event\":\"item-start\",\"item\":1,\"mutant\":\"M1\",\"worker\":0,\"seq\":2}\n"
        "{\"event\":\"item-finish\",\"item\":1,\"mutant\":\"M1\",\"worker\":0,"
        "\"fate\":\"killed\",\"reason\":\"assertion\",\"wall_ms\":30.0,\"seq\":3}\n"
        "{\"event\":\"item-start\",\"item\":2,\"mutant\":\"M2\",\"worker\":1,\"seq\":4}\n"
        "{\"event\":\"item-finish\",\"item\":2,\"mutant\":\"M2\",\"worker\":1,"
        "\"fate\":\"equivalent\",\"reason\":\"alive\",\"wall_ms\":5.0,\"seq\":5}\n"
        "{\"event\":\"campaign-end\",\"campaign\":\"c0ffee\",\"items\":3,"
        "\"executed\":2,\"resumed\":1,\"killed\":2,\"equivalent\":1,"
        "\"not_covered\":0,\"score\":1.0,\"workers\":2,\"steals\":1,"
        "\"wall_ms\":40.5,\"seq\":6}\n";
}

TEST(TelemetryStats, AggregatesAcrossGenerationsAndTornTail) {
    std::istringstream in(two_generation_fixture());
    const TelemetryStats stats = TelemetryStats::from_stream(in);

    EXPECT_EQ(stats.campaign, "c0ffee");
    EXPECT_EQ(stats.class_name, "CObList");
    EXPECT_EQ(stats.seed, 7u);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.declared_mutants, 3u);
    EXPECT_EQ(stats.generations, 2u);
    EXPECT_EQ(stats.malformed_lines, 1u);  // the torn write
    EXPECT_EQ(stats.starts, 3u);
    EXPECT_EQ(stats.finishes, 3u);
    EXPECT_EQ(stats.resumes, 1u);

    // Items deduplicate by index across generations; item 0 appears as
    // finish (gen 1) and resume (gen 2) but counts once.
    ASSERT_EQ(stats.items.size(), 3u);
    EXPECT_EQ(stats.items[0].mutant, "M0");
    EXPECT_EQ(stats.items[0].fate, "killed");
    EXPECT_FALSE(stats.items[0].has_timing);  // last event was a resume
    EXPECT_TRUE(stats.items[1].has_timing);
    EXPECT_DOUBLE_EQ(stats.items[1].wall_ms, 30.0);

    const auto fates = stats.fate_counts();
    EXPECT_EQ(fates.at("killed"), 2u);
    EXPECT_EQ(fates.at("equivalent"), 1u);

    const auto reasons = stats.kill_reasons();
    EXPECT_EQ(reasons.at("crash"), 1u);
    EXPECT_EQ(reasons.at("assertion"), 1u);
    EXPECT_EQ(reasons.count("alive"), 0u);  // only killed items counted

    // Worker loads count only items whose LAST event carried timing:
    // M0's resume superseded its generation-1 finish, so only M1 and M2
    // contribute.
    const auto loads = stats.worker_loads();
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].worker, 0u);
    EXPECT_EQ(loads[0].items, 1u);
    EXPECT_DOUBLE_EQ(loads[0].busy_ms, 30.0);
    EXPECT_EQ(loads[1].worker, 1u);
    EXPECT_DOUBLE_EQ(loads[1].busy_ms, 5.0);

    EXPECT_TRUE(stats.have_summary);
    EXPECT_EQ(stats.killed, 2u);
    EXPECT_EQ(stats.steals, 1u);
    EXPECT_DOUBLE_EQ(stats.score, 1.0);
}

TEST(TelemetryStats, RenderListsSlowestItemsFirst) {
    std::istringstream in(two_generation_fixture());
    const TelemetryStats stats = TelemetryStats::from_stream(in);

    std::ostringstream os;
    stats.render(os, 2);
    const std::string out = os.str();

    EXPECT_NE(out.find("CObList"), std::string::npos);
    EXPECT_NE(out.find("c0ffee"), std::string::npos);
    EXPECT_NE(out.find("fate"), std::string::npos);
    EXPECT_NE(out.find("kill reason"), std::string::npos);
    EXPECT_NE(out.find("slowest item"), std::string::npos);
    EXPECT_NE(out.find("worker"), std::string::npos);
    // M1 (30 ms) ranks above M2 (5 ms); M0 has no timing and never
    // enters the slowest table.
    const auto m1 = out.find("M1");
    const auto m2 = out.find("M2");
    ASSERT_NE(m1, std::string::npos);
    ASSERT_NE(m2, std::string::npos);
    EXPECT_LT(m1, m2);
}

TEST(TelemetryStats, EmptyAndMissingInputsAreHandled) {
    std::istringstream in("");
    const TelemetryStats stats = TelemetryStats::from_stream(in);
    EXPECT_EQ(stats.generations, 0u);
    EXPECT_TRUE(stats.items.empty());
    EXPECT_FALSE(stats.have_summary);
    std::ostringstream os;
    stats.render(os);  // must not crash on an empty run
    EXPECT_FALSE(os.str().empty());

    EXPECT_THROW((void)TelemetryStats::from_file("/tmp/stc_obs_no_such.jsonl"),
                 Error);
}

TEST(TelemetryStats, FromFilesDeduplicatesItemsAndTalliesDispatchEvents) {
    const std::string coord =
        "/tmp/stc_obs_files_coord_" + std::to_string(getpid()) + ".jsonl";
    const std::string worker =
        "/tmp/stc_obs_files_worker_" + std::to_string(getpid()) + ".jsonl";
    {
        std::ofstream out(coord);
        out << R"({"event":"campaign-start","class":"X","mutants":2})" << "\n"
            << R"({"event":"worker-connect","worker":0})" << "\n"
            << R"({"event":"worker-disconnect","worker":1,"reason":"x"})"
            << "\n"
            << R"({"event":"worker-redispatch","item":1,"worker":1})" << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"crash","worker":0,"wall_ms":1.0,)"
            << R"("shrunk":false})" << "\n";
    }
    {
        std::ofstream out(worker);
        out << R"({"event":"worker-session","worker":0})" << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"crash","worker":0,"wall_ms":1.0,)"
            << R"("shrunk":false})" << "\n"
            << R"({"event":"item-finish","item":1,"mutant":"m1",)"
            << R"("fate":"alive","reason":"none","worker":0,"wall_ms":2.0,)"
            << R"("shrunk":false})" << "\n";
    }

    const TelemetryStats stats = TelemetryStats::from_files({coord, worker});
    EXPECT_EQ(stats.streams, 2u);
    // item 0 is reported by both perspectives but counts once.
    ASSERT_EQ(stats.items.size(), 2u);
    EXPECT_EQ(stats.items[0].index, 0u);
    EXPECT_EQ(stats.items[1].index, 1u);
    EXPECT_EQ(stats.finishes, 3u);  // raw event count keeps both
    EXPECT_EQ(stats.worker_connects, 1u);
    EXPECT_EQ(stats.worker_disconnects, 1u);
    EXPECT_EQ(stats.redispatched, 1u);
    EXPECT_EQ(stats.serve_sessions, 1u);

    std::ostringstream os;
    stats.render(os);
    EXPECT_NE(os.str().find("dispatch: 1 worker connect(s), 1 disconnect(s), "
                            "1 item(s) re-dispatched, 1 serve session(s), "
                            "2 stream(s)"),
              std::string::npos);

    // One of the files alone: single-process shape, no dispatch line
    // beyond its own events, no stream count.
    const TelemetryStats solo = TelemetryStats::from_files({worker});
    EXPECT_EQ(solo.streams, 1u);
    std::ostringstream solo_os;
    solo.render(solo_os);
    EXPECT_EQ(solo_os.str().find("stream(s)"), std::string::npos);

    EXPECT_THROW((void)TelemetryStats::from_files({coord, "/tmp/nope.jsonl"}),
                 Error);
    std::remove(coord.c_str());
    std::remove(worker.c_str());
}

}  // namespace
}  // namespace stc::obs
