// Observability layer tests: the span tracer and its Chrome trace-event
// export (schema round-trip through parse_chrome_trace), deterministic
// span ids, the metrics registry and its dumps, JsonlSink open modes,
// and the `concat stats` telemetry aggregation — including the
// torn-tail-line fixture a killed campaign leaves behind.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "stc/obs/context.h"
#include "stc/obs/jsonl_sink.h"
#include "stc/obs/metrics.h"
#include "stc/obs/stats.h"
#include "stc/obs/trace.h"
#include "stc/support/error.h"

namespace stc::obs {
namespace {

// ----------------------------------------------------------------- tracer

TEST(Tracer, DefaultConstructedIsDisabledAndInert) {
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());

    auto span = tracer.begin("phase", "nothing");
    EXPECT_EQ(span.tid, -1);
    tracer.end(std::move(span));
    EXPECT_EQ(tracer.event_count(), 0u);
    EXPECT_TRUE(tracer.events().empty());

    { const SpanScope scope(tracer, "phase", "still-nothing"); }
    EXPECT_EQ(tracer.event_count(), 0u);

    Context context;
    EXPECT_FALSE(context.enabled());
}

TEST(Tracer, RecordsCompleteSpansWithNesting) {
    const Tracer tracer = Tracer::make();
    EXPECT_TRUE(tracer.enabled());
    {
        const SpanScope outer(tracer, "phase", "campaign");
        {
            const SpanScope inner(tracer, "test-case", "TC0");
        }
        { const SpanScope sibling(tracer, "test-case", "TC1"); }
    }
    ASSERT_EQ(tracer.event_count(), 3u);

    // Completion order: inner spans close first.
    const auto events = tracer.events();
    EXPECT_EQ(events[0].name, "TC0");
    EXPECT_EQ(events[1].name, "TC1");
    EXPECT_EQ(events[2].name, "campaign");
    EXPECT_EQ(events[2].category, "phase");
    EXPECT_EQ(events[2].parent_id, 0u);  // root span
    EXPECT_EQ(events[0].parent_id, events[2].span_id);
    EXPECT_EQ(events[1].parent_id, events[2].span_id);
    EXPECT_NE(events[0].span_id, events[1].span_id);
    // All on the same (first) thread.
    for (const auto& e : events) EXPECT_EQ(e.tid, 0);
}

TEST(Tracer, SpanIdsAreDeterministicAcrossTracers) {
    // Same sequence of begins on a fresh tracer -> same ids: the ids
    // hash (thread ordinal, per-thread sequence), never addresses or
    // clock values.
    auto collect = [] {
        const Tracer tracer = Tracer::make();
        { const SpanScope a(tracer, "phase", "one"); }
        {
            const SpanScope b(tracer, "phase", "two");
            { const SpanScope c(tracer, "test-case", "nested"); }
        }
        std::vector<std::uint64_t> ids;
        for (const auto& e : tracer.events()) ids.push_back(e.span_id);
        return ids;
    };
    EXPECT_EQ(collect(), collect());
}

TEST(Tracer, ChromeTraceRoundTripsThroughTheParser) {
    const Tracer tracer = Tracer::make();
    {
        const SpanScope outer(
            tracer, "mutant-evaluation", "CObList::AddHead@s0",
            JsonObject().set("mutant", std::string("CObList::AddHead@s0")));
        const SpanScope inner(tracer, "method-call", "AddHead");
    }
    { const SpanScope quoted(tracer, "phase", "with \"quotes\" and \\"); }

    std::ostringstream os;
    tracer.write_chrome_trace(os);
    const std::string text = os.str();

    // Chrome trace-event envelope: complete events, one process.
    EXPECT_NE(text.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\":1"), std::string::npos);

    std::istringstream is(text);
    const auto parsed = parse_chrome_trace(is);
    ASSERT_TRUE(parsed.has_value());
    const auto original = tracer.events();
    ASSERT_EQ(parsed->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ((*parsed)[i].name, original[i].name) << i;
        EXPECT_EQ((*parsed)[i].category, original[i].category) << i;
        EXPECT_EQ((*parsed)[i].ts_us, original[i].ts_us) << i;
        EXPECT_EQ((*parsed)[i].dur_us, original[i].dur_us) << i;
        EXPECT_EQ((*parsed)[i].tid, original[i].tid) << i;
        EXPECT_EQ((*parsed)[i].span_id, original[i].span_id) << i;
        EXPECT_EQ((*parsed)[i].parent_id, original[i].parent_id) << i;
    }
    // The custom arg survived the round trip.
    EXPECT_EQ((*parsed)[1].args.get_string("mutant"),
              std::optional<std::string>("CObList::AddHead@s0"));
}

TEST(Tracer, ParserRejectsMalformedTraces) {
    auto parse = [](const std::string& text) {
        std::istringstream is(text);
        return parse_chrome_trace(is);
    };
    EXPECT_FALSE(parse("").has_value());
    EXPECT_FALSE(parse("{}").has_value());
    EXPECT_FALSE(parse("{\"traceEvents\":[{\"name\":\"x\"}]}").has_value());
    // A "B" (begin-only) event is not the emitted subset.
    EXPECT_FALSE(
        parse("{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"phase\",\"ph\":\"B\","
              "\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}")
            .has_value());
    // Empty array is a valid trace of zero spans.
    const auto empty = parse("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());
}

TEST(Tracer, ThreadsGetStableOrdinalsNotSystemIds) {
    const Tracer tracer = Tracer::make();
    { const SpanScope main_span(tracer, "phase", "main"); }
    std::thread worker(
        [&tracer] { const SpanScope span(tracer, "phase", "worker"); });
    worker.join();

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // Registration order: main thread first, worker second.
    EXPECT_EQ(events[0].tid, 0);
    EXPECT_EQ(events[1].tid, 1);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, DisabledRegistryIsInert) {
    Metrics metrics;
    EXPECT_FALSE(metrics.enabled());
    metrics.add("never");
    metrics.observe_ms("never_ms", 1.0);
    EXPECT_EQ(metrics.counter("never"), 0u);
    EXPECT_TRUE(metrics.counters().empty());
    EXPECT_TRUE(metrics.histograms().empty());
}

TEST(Metrics, CountersAccumulateAndSort) {
    const Metrics metrics = Metrics::make();
    metrics.add("b.second");
    metrics.add("a.first", 41);
    metrics.add("a.first");
    EXPECT_EQ(metrics.counter("a.first"), 42u);
    EXPECT_EQ(metrics.counter("absent"), 0u);

    const auto counters = metrics.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "a.first");
    EXPECT_EQ(counters[0].second, 42u);
    EXPECT_EQ(counters[1].first, "b.second");
}

TEST(Metrics, HistogramsTrackCountSumMinMax) {
    const Metrics metrics = Metrics::make();
    metrics.observe_ms("case_ms", 1.0);
    metrics.observe_ms("case_ms", 3.0);
    metrics.observe_ms("case_ms", 0.5);

    const auto histograms = metrics.histograms();
    ASSERT_EQ(histograms.size(), 1u);
    const auto& h = histograms[0];
    EXPECT_EQ(h.name, "case_ms");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum_ms, 4.5);
    EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
    EXPECT_DOUBLE_EQ(h.max_ms, 3.0);
    EXPECT_DOUBLE_EQ(h.mean_ms(), 1.5);
    std::uint64_t bucketed = 0;
    for (const auto& [le_ms, n] : h.buckets) bucketed += n;
    EXPECT_EQ(bucketed, 3u);
}

TEST(Metrics, DumpsContainEveryInstrument) {
    const Metrics metrics = Metrics::make();
    metrics.add("runner.verdict.pass", 7);
    metrics.observe_ms("runner.case_ms", 2.25);

    std::ostringstream text;
    metrics.write_text(text);
    EXPECT_NE(text.str().find("runner.verdict.pass"), std::string::npos);
    EXPECT_NE(text.str().find("runner.case_ms"), std::string::npos);
    EXPECT_NE(text.str().find("7"), std::string::npos);

    std::ostringstream json;
    metrics.write_json(json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j.find("\"runner.verdict.pass\":7"), std::string::npos);
    EXPECT_NE(j.find("\"count\":1"), std::string::npos);
    EXPECT_NE(j.find("\"buckets\":[["), std::string::npos);
}

TEST(Metrics, SharedHandleUpdatesOneRegistry) {
    const Metrics metrics = Metrics::make();
    const Metrics copy = metrics;  // the campaign hands copies to workers
    copy.add("shared");
    EXPECT_EQ(metrics.counter("shared"), 1u);

    std::thread worker([copy] { copy.add("shared", 9); });
    worker.join();
    EXPECT_EQ(metrics.counter("shared"), 10u);
}

// -------------------------------------------------------------- JsonlSink

TEST(JsonlSink, AppendModePreservesPreviousGenerations) {
    const std::string path = "/tmp/stc_obs_sink_modes.jsonl";
    std::remove(path.c_str());

    {
        JsonlSink sink = JsonlSink::to_file(path);
        sink.emit(JsonObject().set("event", std::string("one")));
        sink.emit(JsonObject().set("event", std::string("two")));
        EXPECT_EQ(sink.count(), 2u);
    }
    {
        JsonlSink sink = JsonlSink::to_file(path, JsonlSink::OpenMode::Append);
        sink.emit(JsonObject().set("event", std::string("three")));
    }

    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);  // append kept the first generation
    EXPECT_NE(lines[0].find("\"one\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"three\""), std::string::npos);

    // Truncate mode starts the file over.
    {
        JsonlSink sink = JsonlSink::to_file(path, JsonlSink::OpenMode::Truncate);
        sink.emit(JsonObject().set("event", std::string("fresh")));
    }
    std::ifstream again(path);
    lines.clear();
    while (std::getline(again, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"fresh\""), std::string::npos);
}

// ------------------------------------------------------- telemetry stats

/// A plausible two-generation telemetry stream: generation 1 was
/// interrupted mid-write (torn tail), generation 2 resumed its finished
/// item and completed the rest.
std::string two_generation_fixture() {
    return
        // generation 1
        "{\"event\":\"campaign-start\",\"campaign\":\"c0ffee\",\"class\":\"CObList\","
        "\"seed\":7,\"jobs\":2,\"mutants\":3,\"cases\":10,\"seq\":0}\n"
        "{\"event\":\"item-start\",\"item\":0,\"mutant\":\"M0\",\"worker\":0,\"seq\":1}\n"
        "{\"event\":\"item-finish\",\"item\":0,\"mutant\":\"M0\",\"worker\":0,"
        "\"fate\":\"killed\",\"reason\":\"crash\",\"wall_ms\":12.5,\"seq\":2}\n"
        "{\"event\":\"item-start\",\"item\":1,\"mutant\":\"M1\",\"wor"  // torn
        "\n"
        // generation 2 (resumed)
        "{\"event\":\"campaign-start\",\"campaign\":\"c0ffee\",\"class\":\"CObList\","
        "\"seed\":7,\"jobs\":2,\"mutants\":3,\"cases\":10,\"seq\":0}\n"
        "{\"event\":\"item-resumed\",\"item\":0,\"mutant\":\"M0\","
        "\"fate\":\"killed\",\"reason\":\"crash\",\"seq\":1}\n"
        "{\"event\":\"item-start\",\"item\":1,\"mutant\":\"M1\",\"worker\":0,\"seq\":2}\n"
        "{\"event\":\"item-finish\",\"item\":1,\"mutant\":\"M1\",\"worker\":0,"
        "\"fate\":\"killed\",\"reason\":\"assertion\",\"wall_ms\":30.0,\"seq\":3}\n"
        "{\"event\":\"item-start\",\"item\":2,\"mutant\":\"M2\",\"worker\":1,\"seq\":4}\n"
        "{\"event\":\"item-finish\",\"item\":2,\"mutant\":\"M2\",\"worker\":1,"
        "\"fate\":\"equivalent\",\"reason\":\"alive\",\"wall_ms\":5.0,\"seq\":5}\n"
        "{\"event\":\"campaign-end\",\"campaign\":\"c0ffee\",\"items\":3,"
        "\"executed\":2,\"resumed\":1,\"killed\":2,\"equivalent\":1,"
        "\"not_covered\":0,\"score\":1.0,\"workers\":2,\"steals\":1,"
        "\"wall_ms\":40.5,\"seq\":6}\n";
}

TEST(TelemetryStats, AggregatesAcrossGenerationsAndTornTail) {
    std::istringstream in(two_generation_fixture());
    const TelemetryStats stats = TelemetryStats::from_stream(in);

    EXPECT_EQ(stats.campaign, "c0ffee");
    EXPECT_EQ(stats.class_name, "CObList");
    EXPECT_EQ(stats.seed, 7u);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.declared_mutants, 3u);
    EXPECT_EQ(stats.generations, 2u);
    EXPECT_EQ(stats.malformed_lines, 1u);  // the torn write
    EXPECT_EQ(stats.starts, 3u);
    EXPECT_EQ(stats.finishes, 3u);
    EXPECT_EQ(stats.resumes, 1u);

    // Items deduplicate by index across generations; item 0 appears as
    // finish (gen 1) and resume (gen 2) but counts once.
    ASSERT_EQ(stats.items.size(), 3u);
    EXPECT_EQ(stats.items[0].mutant, "M0");
    EXPECT_EQ(stats.items[0].fate, "killed");
    EXPECT_FALSE(stats.items[0].has_timing);  // last event was a resume
    EXPECT_TRUE(stats.items[1].has_timing);
    EXPECT_DOUBLE_EQ(stats.items[1].wall_ms, 30.0);

    const auto fates = stats.fate_counts();
    EXPECT_EQ(fates.at("killed"), 2u);
    EXPECT_EQ(fates.at("equivalent"), 1u);

    const auto reasons = stats.kill_reasons();
    EXPECT_EQ(reasons.at("crash"), 1u);
    EXPECT_EQ(reasons.at("assertion"), 1u);
    EXPECT_EQ(reasons.count("alive"), 0u);  // only killed items counted

    // Worker loads count only items whose LAST event carried timing:
    // M0's resume superseded its generation-1 finish, so only M1 and M2
    // contribute.
    const auto loads = stats.worker_loads();
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].worker, 0u);
    EXPECT_EQ(loads[0].items, 1u);
    EXPECT_DOUBLE_EQ(loads[0].busy_ms, 30.0);
    EXPECT_EQ(loads[1].worker, 1u);
    EXPECT_DOUBLE_EQ(loads[1].busy_ms, 5.0);

    EXPECT_TRUE(stats.have_summary);
    EXPECT_EQ(stats.killed, 2u);
    EXPECT_EQ(stats.steals, 1u);
    EXPECT_DOUBLE_EQ(stats.score, 1.0);
}

TEST(TelemetryStats, RenderListsSlowestItemsFirst) {
    std::istringstream in(two_generation_fixture());
    const TelemetryStats stats = TelemetryStats::from_stream(in);

    std::ostringstream os;
    stats.render(os, 2);
    const std::string out = os.str();

    EXPECT_NE(out.find("CObList"), std::string::npos);
    EXPECT_NE(out.find("c0ffee"), std::string::npos);
    EXPECT_NE(out.find("fate"), std::string::npos);
    EXPECT_NE(out.find("kill reason"), std::string::npos);
    EXPECT_NE(out.find("slowest item"), std::string::npos);
    EXPECT_NE(out.find("worker"), std::string::npos);
    // M1 (30 ms) ranks above M2 (5 ms); M0 has no timing and never
    // enters the slowest table.
    const auto m1 = out.find("M1");
    const auto m2 = out.find("M2");
    ASSERT_NE(m1, std::string::npos);
    ASSERT_NE(m2, std::string::npos);
    EXPECT_LT(m1, m2);
}

TEST(TelemetryStats, EmptyAndMissingInputsAreHandled) {
    std::istringstream in("");
    const TelemetryStats stats = TelemetryStats::from_stream(in);
    EXPECT_EQ(stats.generations, 0u);
    EXPECT_TRUE(stats.items.empty());
    EXPECT_FALSE(stats.have_summary);
    std::ostringstream os;
    stats.render(os);  // must not crash on an empty run
    EXPECT_FALSE(os.str().empty());

    EXPECT_THROW((void)TelemetryStats::from_file("/tmp/stc_obs_no_such.jsonl"),
                 Error);
}

TEST(TelemetryStats, FromFilesDeduplicatesItemsAndTalliesDispatchEvents) {
    const std::string coord =
        "/tmp/stc_obs_files_coord_" + std::to_string(getpid()) + ".jsonl";
    const std::string worker =
        "/tmp/stc_obs_files_worker_" + std::to_string(getpid()) + ".jsonl";
    {
        std::ofstream out(coord);
        out << R"({"event":"campaign-start","class":"X","mutants":2})" << "\n"
            << R"({"event":"worker-connect","worker":0})" << "\n"
            << R"({"event":"worker-disconnect","worker":1,"reason":"x"})"
            << "\n"
            << R"({"event":"worker-redispatch","item":1,"worker":1})" << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"crash","worker":0,"wall_ms":1.0,)"
            << R"("shrunk":false})" << "\n";
    }
    {
        std::ofstream out(worker);
        out << R"({"event":"worker-session","worker":0})" << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"crash","worker":0,"wall_ms":1.0,)"
            << R"("shrunk":false})" << "\n"
            << R"({"event":"item-finish","item":1,"mutant":"m1",)"
            << R"("fate":"alive","reason":"none","worker":0,"wall_ms":2.0,)"
            << R"("shrunk":false})" << "\n";
    }

    const TelemetryStats stats = TelemetryStats::from_files({coord, worker});
    EXPECT_EQ(stats.streams, 2u);
    // item 0 is reported by both perspectives but counts once.
    ASSERT_EQ(stats.items.size(), 2u);
    EXPECT_EQ(stats.items[0].index, 0u);
    EXPECT_EQ(stats.items[1].index, 1u);
    EXPECT_EQ(stats.finishes, 3u);  // raw event count keeps both
    EXPECT_EQ(stats.worker_connects, 1u);
    EXPECT_EQ(stats.worker_disconnects, 1u);
    EXPECT_EQ(stats.redispatched, 1u);
    EXPECT_EQ(stats.serve_sessions, 1u);

    std::ostringstream os;
    stats.render(os);
    EXPECT_NE(os.str().find("dispatch: 1 worker connect(s), 1 disconnect(s), "
                            "1 item(s) re-dispatched, 1 serve session(s), "
                            "2 stream(s)"),
              std::string::npos);

    // One of the files alone: single-process shape, no dispatch line
    // beyond its own events, no stream count.
    const TelemetryStats solo = TelemetryStats::from_files({worker});
    EXPECT_EQ(solo.streams, 1u);
    std::ostringstream solo_os;
    solo.render(solo_os);
    EXPECT_EQ(solo_os.str().find("stream(s)"), std::string::npos);

    EXPECT_THROW((void)TelemetryStats::from_files({coord, "/tmp/nope.jsonl"}),
                 Error);
    std::remove(coord.c_str());
    std::remove(worker.c_str());
}

// -------------------------------------------- distributed trace pieces

TEST(Tracer, ActorQualifiesSpanIdsAndExportedPid) {
    // The same span sequence on actor 0 and actor 1 must produce
    // disjoint id sets — that is the whole no-collision-on-merge
    // guarantee — and the actor shows up as Chrome "pid" actor+1.
    auto collect = [](int actor) {
        const Tracer tracer = Tracer::make(actor);
        { const SpanScope a(tracer, "phase", "one"); }
        { const SpanScope b(tracer, "phase", "two"); }
        std::vector<std::uint64_t> ids;
        for (const auto& e : tracer.events()) ids.push_back(e.span_id);
        return ids;
    };
    const auto coordinator = collect(0);
    const auto worker = collect(1);
    ASSERT_EQ(coordinator.size(), 2u);
    for (const std::uint64_t id : coordinator) {
        for (const std::uint64_t other : worker) EXPECT_NE(id, other);
    }
    // Determinism survives the actor fold.
    EXPECT_EQ(collect(1), collect(1));

    const Tracer tracer = Tracer::make(3);
    EXPECT_EQ(tracer.actor(), 3);
    { const SpanScope s(tracer, "phase", "x"); }
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    EXPECT_NE(os.str().find("\"pid\":4"), std::string::npos);
}

TEST(Tracer, BeginWithParentOverridesStackButStillNestsChildren) {
    const Tracer tracer = Tracer::make(1);
    const std::uint64_t foreign_parent = 0xabcdef0123456789ULL;
    std::uint64_t outer_id = 0;
    {
        const SpanScope outer(tracer, "serve", "work-item", foreign_parent);
        outer_id = outer.id();
        { const SpanScope inner(tracer, "mutant-evaluation", "m"); }
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // inner closed first; it parents on the enclosing span normally.
    EXPECT_EQ(events[0].name, "m");
    EXPECT_EQ(events[0].parent_id, outer_id);
    // outer's recorded parent is the foreign id, not the (empty) stack.
    EXPECT_EQ(events[1].name, "work-item");
    EXPECT_EQ(events[1].parent_id, foreign_parent);
    // Parent 0 degrades to plain begin().
    { const SpanScope plain(tracer, "phase", "p", std::uint64_t{0}); }
    EXPECT_EQ(tracer.events().back().parent_id, 0u);
}

TEST(Tracer, AbsorbAndEventsFromSupportIncrementalDrain) {
    const Tracer tracer = Tracer::make();
    { const SpanScope a(tracer, "phase", "one"); }
    EXPECT_EQ(tracer.events_from(0).size(), 1u);
    EXPECT_TRUE(tracer.events_from(1).empty());
    EXPECT_TRUE(tracer.events_from(99).empty());

    TraceEvent foreign;
    foreign.name = "streamed";
    foreign.category = "serve";
    foreign.ts_us = 10;
    foreign.dur_us = 5;
    foreign.actor = 2;
    foreign.span_id = 42;
    foreign.parent_id = 7;
    tracer.absorb(foreign);
    const auto tail = tracer.events_from(1);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].name, "streamed");
    EXPECT_EQ(tail[0].actor, 2);
    EXPECT_EQ(tail[0].span_id, 42u);

    Tracer disabled;
    disabled.absorb(foreign);  // inert, not a crash
    EXPECT_TRUE(disabled.events_from(0).empty());
}

TEST(Tracer, TraceIdExportsAndSurvivesTheParser) {
    const Tracer tracer = Tracer::make();
    EXPECT_EQ(tracer.trace_id(), 0u);
    tracer.set_trace_id(0x1122334455667788ULL);
    EXPECT_EQ(tracer.trace_id(), 0x1122334455667788ULL);
    { const SpanScope s(tracer, "phase", "x"); }
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    EXPECT_NE(os.str().find("\"traceId\":\"1122334455667788\""),
              std::string::npos);
    std::istringstream is(os.str());
    const auto parsed = parse_chrome_trace(is);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->size(), 1u);
}

TEST(Tracer, TraceEventWireJsonRoundTrips) {
    TraceEvent event;
    event.name = "work-item";
    event.category = "serve";
    event.ts_us = 123;
    event.dur_us = 456;
    event.tid = 2;
    event.actor = 3;
    event.span_id = 0xdeadbeefULL;
    event.parent_id = 0xfeedULL;
    event.args = JsonObject().set("item", std::uint64_t{7});

    const JsonObject wire = trace_event_to_json(event);
    const auto back = trace_event_from_json(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->name, event.name);
    EXPECT_EQ(back->category, event.category);
    EXPECT_EQ(back->ts_us, event.ts_us);
    EXPECT_EQ(back->dur_us, event.dur_us);
    EXPECT_EQ(back->tid, event.tid);
    EXPECT_EQ(back->actor, event.actor);
    EXPECT_EQ(back->span_id, event.span_id);
    EXPECT_EQ(back->parent_id, event.parent_id);
    EXPECT_EQ(back->args.get_uint("item"), std::optional<std::uint64_t>(7));

    // Root spans omit "parent" on the wire and come back as parent 0.
    event.parent_id = 0;
    const auto root = trace_event_from_json(trace_event_to_json(event));
    ASSERT_TRUE(root.has_value());
    EXPECT_EQ(root->parent_id, 0u);

    EXPECT_FALSE(trace_event_from_json(JsonObject()).has_value());
    EXPECT_FALSE(
        trace_event_from_json(JsonObject().set("name", std::string("x")))
            .has_value());
}

TEST(Metrics, HistogramPercentilesFromLog2Buckets) {
    HistogramSnapshot empty;
    EXPECT_EQ(empty.percentile(0.5), 0.0);

    const Metrics metrics = Metrics::make();
    // 90 fast calls in the (0.5, 1] bucket, 10 slow in (64, 128].
    for (int i = 0; i < 90; ++i) metrics.observe_ms("m.eval_ms", 0.9);
    for (int i = 0; i < 10; ++i) metrics.observe_ms("m.eval_ms", 100.0);
    const auto hists = metrics.histograms();
    ASSERT_EQ(hists.size(), 1u);
    const HistogramSnapshot& h = hists[0];
    // A percentile is the log2 bucket's upper bound (µs buckets, so
    // 0.9ms lands in le-1.024ms), clamped to the observed max; p50/p90
    // land in the fast bucket, p99 in the slow one.
    EXPECT_EQ(h.percentile(0.50), 1.024);
    EXPECT_EQ(h.percentile(0.90), 1.024);
    EXPECT_EQ(h.percentile(0.99), 100.0);  // 131.072 clamped to max_ms
    EXPECT_EQ(h.percentile(0.0), 1.024);   // first non-empty bucket
    EXPECT_EQ(h.percentile(1.5), h.percentile(1.0));  // clamped q

    std::ostringstream text;
    metrics.write_text(text);
    EXPECT_NE(text.str().find("p50 ms"), std::string::npos);
    EXPECT_NE(text.str().find("p99 ms"), std::string::npos);
    std::ostringstream json;
    metrics.write_json(json);
    EXPECT_NE(json.str().find("\"p50_ms\":1.024"), std::string::npos);
    EXPECT_NE(json.str().find("\"p99_ms\":100"), std::string::npos);
}

// ------------------------------------------------- live follow pieces

namespace {

const char* const kFollowStream[] = {
    R"({"event":"campaign-start","campaign":"fp","class":"CObList",)"
    R"("seed":7,"jobs":2,"mutants":4,"cases":10,"model":false})",
    R"({"event":"item-finish","item":0,)"
    R"("mutant":"CObList::AddHead@s0.IndVarRepReq.NULL","fate":"killed",)"
    R"("reason":"crash","worker":0,"wall_ms":2.0,"shrunk":false})",
    R"({"event":"item-finish","item":1,)"
    R"("mutant":"CObList::AddTail@s1.IndVarBitNeg.k","fate":"alive",)"
    R"("reason":"none","worker":1,"wall_ms":6.0,"shrunk":false})",
    R"({"event":"metrics-snapshot","worker":1,"metrics":"{}"})",
};

std::string join_lines(std::size_t n) {
    std::string text;
    for (std::size_t i = 0; i < n; ++i) {
        text += kFollowStream[i];
        text += "\n";
    }
    return text;
}

}  // namespace

TEST(TelemetryStats, IncrementalAbsorbMatchesWholeStreamAbsorb) {
    TelemetryStats incremental;
    for (const char* line : kFollowStream) incremental.absorb_line(line);
    incremental.sort_items();

    std::istringstream stream(join_lines(4));
    TelemetryStats whole;
    whole.absorb_stream(stream);
    whole.streams = 0;  // absorb_line feeds lines, not whole streams

    std::ostringstream a;
    std::ostringstream b;
    incremental.render(a);
    whole.render(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(incremental.items.size(), 2u);
    EXPECT_EQ(incremental.metrics_snapshots, 1u);

    // Dedup-by-index holds incrementally too: a re-reported item (the
    // coordinator's merge copy of a worker-streamed finish) updates in
    // place instead of double-counting.
    incremental.absorb_line(kFollowStream[1]);
    incremental.sort_items();
    EXPECT_EQ(incremental.items.size(), 2u);
}

TEST(TelemetryStats, RenderFollowShowsProgressLoadAndOperators) {
    TelemetryStats stats;
    for (const char* line : kFollowStream) stats.absorb_line(line);
    stats.sort_items();

    std::ostringstream os;
    stats.render_follow(os, 4.0);
    const std::string text = os.str();
    EXPECT_NE(text.find("follow: CObList  2/4 item(s)"), std::string::npos);
    EXPECT_NE(text.find("alive=1"), std::string::npos);
    EXPECT_NE(text.find("killed=1"), std::string::npos);
    EXPECT_NE(text.find("rate 0.5 item(s)/s"), std::string::npos);
    EXPECT_NE(text.find("eta 4s"), std::string::npos);
    EXPECT_EQ(text.find("[campaign complete]"), std::string::npos);
    EXPECT_NE(text.find("w0 1"), std::string::npos);
    EXPECT_NE(text.find("w1 1"), std::string::npos);
    EXPECT_NE(text.find("operator p50/p90/p99 ms:"), std::string::npos);
    EXPECT_NE(text.find("IndVarRepReq"), std::string::npos);
    EXPECT_NE(text.find("IndVarBitNeg"), std::string::npos);

    stats.absorb_line(
        R"({"event":"campaign-end","campaign":"fp","items":4,"executed":2,)"
        R"("killed":1,"equivalent":0,"not_covered":0,"score":0.5,)"
        R"("workers":2,"wall_ms":8.0})");
    std::ostringstream done;
    stats.render_follow(done, 4.0);
    EXPECT_NE(done.str().find("[campaign complete]"), std::string::npos);

    // No timing yet: rate renders as unknown, not a division blowup.
    TelemetryStats fresh;
    std::ostringstream zero;
    fresh.render_follow(zero, 0.0);
    EXPECT_NE(zero.str().find("- item(s)/s"), std::string::npos);
}

TEST(TelemetryStats, WriteJsonCoversSummaryFatesAndOperators) {
    TelemetryStats stats;
    for (const char* line : kFollowStream) stats.absorb_line(line);
    stats.absorb_line(
        R"({"event":"campaign-end","campaign":"fp","items":4,"executed":2,)"
        R"("killed":1,"equivalent":0,"not_covered":0,"score":0.5,)"
        R"("workers":2,"wall_ms":8.0})");
    stats.sort_items();

    std::ostringstream os;
    stats.write_json(os, 1);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"class\":\"CObList\""), std::string::npos);
    EXPECT_NE(text.find("\"declared_mutants\":4"), std::string::npos);
    EXPECT_NE(text.find("\"fates\":{\"alive\":1,\"killed\":1}"),
              std::string::npos);
    EXPECT_NE(text.find("\"metrics_snapshots\":1"), std::string::npos);
    EXPECT_NE(text.find("\"operators\":["), std::string::npos);
    EXPECT_NE(text.find("\"operator\":\"IndVarRepReq\""), std::string::npos);
    EXPECT_NE(text.find("\"final\":{"), std::string::npos);
    EXPECT_NE(text.find("\"score\":0.5"), std::string::npos);
    // --top bounds the slowest-item table: the 6ms item only.
    EXPECT_NE(text.find("\"slowest\":["), std::string::npos);
    EXPECT_NE(text.find("\"mutant\":\"CObList::AddTail@s1.IndVarBitNeg.k\","
                        "\"fate\":\"alive\""),
              std::string::npos);
    EXPECT_EQ(text.find("\"mutant\":\"CObList::AddHead@s0.IndVarRepReq.NULL\","
                        "\"fate\":\"killed\""),
              std::string::npos);
    // Interrupted stream: "final" is null, never a half summary.
    TelemetryStats torn;
    torn.absorb_line(kFollowStream[0]);
    std::ostringstream torn_os;
    torn.write_json(torn_os);
    EXPECT_NE(torn_os.str().find("\"final\":null"), std::string::npos);
}

TEST(TelemetryTail, HoldsBackTornTailUntilTheNewlineArrives) {
    const std::string path =
        "/tmp/stc_obs_tail_" + std::to_string(getpid()) + ".jsonl";
    std::remove(path.c_str());

    TelemetryTail tail(path);
    TelemetryStats stats;
    EXPECT_EQ(tail.poll(stats), 0u);  // file does not exist yet

    std::ofstream out(path, std::ios::binary);
    out << kFollowStream[0] << "\n" << kFollowStream[1];  // torn second line
    out.flush();
    EXPECT_EQ(tail.poll(stats), 1u);
    EXPECT_EQ(stats.generations, 1u);
    EXPECT_EQ(stats.items.size(), 0u);
    EXPECT_EQ(stats.malformed_lines, 0u);  // the torn tail never parsed

    out << "\n";  // the newline completes the held-back line
    out.flush();
    EXPECT_EQ(tail.poll(stats), 1u);
    ASSERT_EQ(stats.items.size(), 1u);
    EXPECT_EQ(stats.items[0].fate, "killed");

    EXPECT_EQ(tail.poll(stats), 0u);  // nothing new
    out << kFollowStream[2] << "\n";
    out.flush();
    EXPECT_EQ(tail.poll(stats), 1u);
    stats.sort_items();
    EXPECT_EQ(stats.items.size(), 2u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace stc::obs
