// Tests for golden-record persistence and the regression workflow — the
// Table 3 "new release" scenario end to end: freeze suite + baseline of
// version N, replay against version N+1.
#include <gtest/gtest.h>

#include <sstream>

#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/oracle/golden_io.h"
#include "test_component.h"

namespace stc::oracle {
namespace {

driver::SuiteResult make_suite_result(
    std::vector<std::tuple<std::string, driver::Verdict, std::string>> rows) {
    driver::SuiteResult out;
    for (auto& [id, verdict, report] : rows) {
        driver::TestResult r;
        r.case_id = id;
        r.verdict = verdict;
        r.report = report;
        out.results.push_back(std::move(r));
    }
    return out;
}

// ---------------------------------------------------------------- save/load

TEST(GoldenIo, RoundTripPreservesEntries) {
    const auto golden = GoldenRecord::from(make_suite_result({
        {"TC0", driver::Verdict::Pass, "state|with|pipes\nand newlines"},
        {"TC1", driver::Verdict::AssertionViolation, ""},
    }));

    std::stringstream buffer;
    save_golden(buffer, golden);
    const GoldenRecord loaded = load_golden(buffer);

    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.find("TC0")->report, "state|with|pipes\nand newlines");
    EXPECT_EQ(loaded.find("TC0")->verdict, driver::Verdict::Pass);
    EXPECT_EQ(loaded.find("TC1")->verdict, driver::Verdict::AssertionViolation);
    EXPECT_FALSE(loaded.all_passed());
}

TEST(GoldenIo, MalformedInputRejected) {
    std::stringstream not_magic("nope\n");
    EXPECT_THROW((void)load_golden(not_magic), Error);
    std::stringstream bad_fields("concat-golden 1\nTC0|pass\n");
    EXPECT_THROW((void)load_golden(bad_fields), Error);
    std::stringstream bad_verdict("concat-golden 1\nTC0|exploded|r|m\n");
    EXPECT_THROW((void)load_golden(bad_verdict), Error);
}

// --------------------------------------------------------------- comparison

TEST(Regression, CleanWhenBehaviourIdentical) {
    const auto golden = GoldenRecord::from(
        make_suite_result({{"TC0", driver::Verdict::Pass, "a"}}));
    const auto report = compare_against_golden(
        golden, make_suite_result({{"TC0", driver::Verdict::Pass, "a"}}));
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.cases_compared, 1u);
}

TEST(Regression, FlagsDivergencesWithReasons) {
    const auto golden = GoldenRecord::from(make_suite_result({
        {"TC0", driver::Verdict::Pass, "a"},
        {"TC1", driver::Verdict::Pass, "b"},
        {"TC2", driver::Verdict::Pass, "c"},
    }));
    const auto observed = make_suite_result({
        {"TC0", driver::Verdict::Pass, "a"},                   // unchanged
        {"TC1", driver::Verdict::Pass, "CHANGED"},             // output diff
        {"TC2", driver::Verdict::AssertionViolation, ""},      // new failure
    });
    const auto report = compare_against_golden(golden, observed);
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].case_id, "TC1");
    EXPECT_EQ(report.findings[0].reason, KillReason::OutputDiff);
    EXPECT_EQ(report.findings[1].case_id, "TC2");
    EXPECT_EQ(report.findings[1].reason, KillReason::Assertion);
    EXPECT_NE(report.summary().find("TC1"), std::string::npos);
}

TEST(Regression, MissingCasesCounted) {
    const auto golden = GoldenRecord::from(
        make_suite_result({{"TC0", driver::Verdict::Pass, "a"},
                           {"TC9", driver::Verdict::Pass, "z"}}));
    const auto report = compare_against_golden(
        golden, make_suite_result({{"TC0", driver::Verdict::Pass, "a"}}));
    EXPECT_EQ(report.cases_missing, 1u);
    EXPECT_FALSE(report.clean());
}

// ----------------------------------------------- full workflow on Counter

TEST(Regression, NewReleaseScenarioEndToEnd) {
    // Version N: generate, run, freeze suite + golden.
    const auto spec = stc::testing::counter_spec();
    const auto suite = driver::DriverGenerator(spec).generate();
    reflect::Registry v1;
    v1.add(stc::testing::counter_binding());
    const auto baseline = driver::TestRunner(v1).run(suite);

    std::stringstream frozen_suite;
    driver::save_suite(frozen_suite, suite);
    std::stringstream frozen_golden;
    save_golden(frozen_golden, GoldenRecord::from(baseline));

    // Version N+1 (healthy): replay — clean.
    {
        const auto replay_suite = driver::load_suite(frozen_suite);
        const auto golden = load_golden(frozen_golden);
        const auto rerun = driver::TestRunner(v1).run(replay_suite);
        EXPECT_TRUE(compare_against_golden(golden, rerun).clean());
    }

    // Version N+2 (regressed: Inc wired to a double increment).
    {
        frozen_suite.clear();
        frozen_suite.seekg(0);
        frozen_golden.clear();
        frozen_golden.seekg(0);
        const auto replay_suite = driver::load_suite(frozen_suite);
        const auto golden = load_golden(frozen_golden);

        reflect::Binder<stc::testing::Counter> b("Counter");
        b.ctor<>();
        b.ctor<int>();
        b.custom("Inc", 0, [](stc::testing::Counter& c, const reflect::Args&) {
            c.Inc();
            c.Inc();  // the regression
            return domain::Value{};
        });
        b.method("Dec", &stc::testing::Counter::Dec);
        b.method("Reset", &stc::testing::Counter::Reset);
        b.method("Get", &stc::testing::Counter::Get);
        reflect::Registry v2;
        v2.add(b.take());

        const auto rerun = driver::TestRunner(v2).run(replay_suite);
        const auto report = compare_against_golden(golden, rerun);
        EXPECT_FALSE(report.clean());
        EXPECT_GT(report.findings.size(), 0u);
    }
}

}  // namespace
}  // namespace stc::oracle
