// Error-recovery (negative) transactions — §3.4.1 highlights transaction
// coverage as "useful to reveal faults in transactions, specially those
// used less frequently, such as error-recovery transactions".  A node
// entry "!mX" drives mX outside its declared domain and expects the
// precondition to reject the call, with the object surviving.
#include <gtest/gtest.h>

#include <sstream>

#include "product_component.h"
#include "stc/codegen/driver_codegen.h"
#include "stc/core/self_testable.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"
#include "stc/tspec/parser.h"

namespace stc {
namespace {

using examples::Product;

/// Product spec extended with an error-recovery transaction:
/// create -> !UpdateQty (out-of-range) -> ShowAttributes -> destroy.
tspec::ComponentSpec product_with_recovery() {
    tspec::ComponentSpec spec = examples::product_spec();
    spec.nodes.push_back({"nE", false, 1, {"!m6"}});   // negative UpdateQty
    spec.nodes.push_back({"nE2", false, 1, {"m9"}});   // ShowAttributes after
    spec.edges.push_back({"n1", "nE"});
    spec.edges.push_back({"nE", "nE2"});
    spec.edges.push_back({"nE2", "n11"});
    // Fix the declared out-degrees our additions changed.
    for (auto& n : spec.nodes) {
        int out = 0;
        for (const auto& e : spec.edges) out += e.from == n.id ? 1 : 0;
        n.declared_out_degree = out;
    }
    spec.ensure_valid();
    return spec;
}

// ------------------------------------------------------------------ model

TEST(NegativeCalls, MarkerHelpers) {
    EXPECT_TRUE(tspec::is_negative_call("!m6"));
    EXPECT_FALSE(tspec::is_negative_call("m6"));
    EXPECT_EQ(tspec::strip_negative_marker("!m6"), "m6");
    EXPECT_EQ(tspec::strip_negative_marker("m6"), "m6");
}

TEST(NegativeCalls, ParserAcceptsMarkerInNodeLists) {
    const auto spec = tspec::parse_tspec(
        "Class ('X', No, <empty>, <empty>)\n"
        "Method (m1, 'X', <empty>, constructor, 0)\n"
        "Method (m2, 'f', <empty>, new, 1)\n"
        "Parameter (m2, 'q', range, 0, 9)\n"
        "Node (n1, Yes, 1, [m1])\n"
        "Node (n2, No, 0, [!m2])\n"
        "Edge (n1, n2)\n");
    EXPECT_TRUE(spec.validate().empty());
    EXPECT_EQ(spec.nodes[1].method_ids, (std::vector<std::string>{"!m2"}));
}

TEST(NegativeCalls, ValidationRejectsMarkerMisuse) {
    // Negative marker on a constructor.
    tspec::ComponentSpec spec;
    spec.class_name = "X";
    spec.methods.push_back({"m1", "X", "", tspec::MethodCategory::Constructor, {}});
    spec.nodes.push_back({"n1", true, 0, {"m1", "!m1"}});
    EXPECT_FALSE(spec.validate().empty());

    // Unknown method behind the marker.
    tspec::ComponentSpec spec2;
    spec2.class_name = "X";
    spec2.methods.push_back({"m1", "X", "", tspec::MethodCategory::Constructor, {}});
    spec2.nodes.push_back({"n1", true, 0, {"m1", "!mZ"}});
    EXPECT_FALSE(spec2.validate().empty());
}

// -------------------------------------------------------------- generation

TEST(NegativeCalls, GeneratorPlacesOutOfDomainArgument) {
    const auto spec = product_with_recovery();
    const auto suite = driver::DriverGenerator(spec).generate();

    std::size_t negative_calls = 0;
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.calls) {
            if (!call.expect_rejection) continue;
            ++negative_calls;
            EXPECT_EQ(call.method_name, "UpdateQty");
            ASSERT_EQ(call.arguments.size(), 1u);
            const auto q = call.arguments[0].as_int();
            EXPECT_TRUE(q < 0 || q > 99999) << q;
            EXPECT_EQ(call.render().substr(0, 1), "!");
        }
    }
    EXPECT_GT(negative_calls, 0u);
}

TEST(NegativeCalls, GeneratorRejectsUnrejectableMethods) {
    // A parameterless method cannot be driven out of contract by values.
    tspec::SpecBuilder b("X");
    b.method("m1", "X", tspec::MethodCategory::Constructor);
    b.method("m2", "~X", tspec::MethodCategory::Destructor);
    b.method("m3", "f", tspec::MethodCategory::New);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"!m3"});
    b.node("n3", false, {"m2"});
    b.edge("n1", "n2").edge("n2", "n3");
    EXPECT_THROW((void)driver::DriverGenerator(b.build()).generate(), SpecError);
}

// --------------------------------------------------------------- execution

TEST(NegativeCalls, HealthyComponentRejectsAndSurvives) {
    const auto spec = product_with_recovery();
    core::SelfTestableComponent component(spec, examples::product_binding());
    examples::ProviderPool providers;
    component.set_completions(examples::product_completions(providers));

    const auto report = component.self_test();
    EXPECT_TRUE(report.all_passed()) << report.summary();

    // The rejection is part of the observable record.
    bool saw_rejection = false;
    for (const auto& r : report.result.results) {
        saw_rejection =
            saw_rejection || r.report.find("UpdateQty -> <rejected>") !=
                                 std::string::npos;
    }
    EXPECT_TRUE(saw_rejection);
}

TEST(NegativeCalls, LaxComponentGetsContractNotEnforced) {
    // A Product whose UpdateQty swallows anything: the error-recovery
    // transaction must expose the missing contract check.
    class LaxProduct : public Product {
    public:
        using Product::Product;
        void LaxUpdateQty(int q) {
            if (q >= 0 && q <= kMaxQty) UpdateQty(q);
            // silently ignore out-of-range input: no rejection
        }
    };
    reflect::Binder<LaxProduct> b("Product");
    b.ctor<>();
    b.ctor<int, const char*, float, examples::Provider*>();
    b.ctor<const char*>();
    b.method("UpdateName", &Product::UpdateName);
    b.method("UpdateQty", &LaxProduct::LaxUpdateQty);
    b.method("UpdatePrice", &Product::UpdatePrice);
    b.method("UpdateProv", &Product::UpdateProv);
    b.method("ShowAttributes", &Product::ShowAttributes);
    b.method("InsertProduct", &Product::InsertProduct);
    b.custom("RemoveProduct", 0, [](LaxProduct& p, const reflect::Args&) {
        return domain::Value::make_string(p.RemoveProduct() ? "removed" : "<absent>");
    });

    const auto spec = product_with_recovery();
    core::SelfTestableComponent component(spec, b.take());
    examples::ProviderPool providers;
    component.set_completions(examples::product_completions(providers));

    const auto report = component.self_test();
    EXPECT_FALSE(report.all_passed());
    EXPECT_GT(report.result.count(driver::Verdict::ContractNotEnforced), 0u);
}

// ------------------------------------------------------------- persistence

TEST(NegativeCalls, RejectionFlagSurvivesSaveLoad) {
    const auto spec = product_with_recovery();
    const auto suite = driver::DriverGenerator(spec).generate();

    std::stringstream buffer;
    driver::save_suite(buffer, suite);
    const auto loaded = driver::load_suite(buffer);
    ASSERT_EQ(loaded.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        ASSERT_EQ(loaded.cases[i].calls.size(), suite.cases[i].calls.size());
        for (std::size_t c = 0; c < suite.cases[i].calls.size(); ++c) {
            EXPECT_EQ(loaded.cases[i].calls[c].expect_rejection,
                      suite.cases[i].calls[c].expect_rejection);
        }
    }
}

// ----------------------------------------------------------------- codegen

TEST(NegativeCalls, CodegenEmitsExpectedViolationBlock) {
    const auto spec = product_with_recovery();
    driver::GeneratorOptions options;
    options.enumeration.max_node_visits = 1;
    const auto suite = driver::DriverGenerator(spec, options).generate();

    const codegen::DriverCodegen generator(spec);
    const std::string src = generator.suite_source(suite);
    EXPECT_NE(src.find("catch (const stc::bit::AssertionViolation&)"),
              std::string::npos);
    EXPECT_NE(src.find("CONTRACT NOT ENFORCED"), std::string::npos);
}

}  // namespace
}  // namespace stc
