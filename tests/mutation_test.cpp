#include <gtest/gtest.h>

#include "stc/mutation/controller.h"
#include "stc/mutation/descriptor.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/frame.h"
#include "stc/mutation/mutant.h"
#include "stc/mutation/report.h"
#include "test_component.h"

namespace stc::mutation {
namespace {

// -------------------------------------------------------------- descriptor

TEST(Descriptor, BuilderCollectsVariableSets) {
    const MethodDescriptor d = MethodDescriptor::Builder("C", "f")
                                   .param("p", int_type())
                                   .local("l1", int_type())
                                   .local("l2", pointer_type("Node"))
                                   .attr("g_used", int_type(), true)
                                   .attr("g_unused", int_type(), false)
                                   .site("l1")
                                   .site("g_used")
                                   .build();
    EXPECT_EQ(d.qualified_name(), "C::f");
    EXPECT_EQ(d.locals().size(), 2u);
    EXPECT_EQ(d.globals_used().size(), 1u);
    EXPECT_EQ(d.globals_unused().size(), 1u);
    ASSERT_EQ(d.sites().size(), 2u);
    EXPECT_EQ(d.sites()[0].ordinal, 0u);
    EXPECT_EQ(d.sites()[1].var, "g_used");
    EXPECT_EQ(d.sites()[0].type, int_type());
}

TEST(Descriptor, SiteOnParamRejected) {
    EXPECT_THROW((void)MethodDescriptor::Builder("C", "f")
                     .param("p", int_type())
                     .site("p")
                     .build(),
                 SpecError);
}

TEST(Descriptor, SiteOnUnknownOrUnusedVarRejected) {
    EXPECT_THROW((void)MethodDescriptor::Builder("C", "f").site("ghost").build(),
                 SpecError);
    EXPECT_THROW((void)MethodDescriptor::Builder("C", "f")
                     .attr("e", int_type(), false)
                     .site("e")
                     .build(),
                 SpecError);
}

TEST(DescriptorRegistry, LookupAndDuplicates) {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("C", "f").local("x", int_type()).build();
    DescriptorRegistry registry;
    registry.add(&d);
    EXPECT_EQ(registry.find("C", "f"), &d);
    EXPECT_EQ(registry.find("C", "g"), nullptr);
    EXPECT_EQ(registry.for_class("C").size(), 1u);
    EXPECT_THROW(registry.add(&d), SpecError);
    EXPECT_THROW(registry.add(nullptr), ContractError);
}

// ------------------------------------------------------------- enumeration

TEST(Enumeration, CounterIncHasTheHandCountedPopulation) {
    const auto mutants = enumerate_mutants(stc::testing::Counter::inc_descriptor());
    // See test_component.h: 9 mutants per site, two sites.
    EXPECT_EQ(mutants.size(), 18u);

    std::size_t bitneg = 0;
    std::size_t repglob = 0;
    std::size_t reploc = 0;
    std::size_t repext = 0;
    std::size_t repreq = 0;
    for (const auto& m : mutants) {
        switch (m.op) {
            case Operator::IndVarBitNeg: ++bitneg; break;
            case Operator::IndVarRepGlob: ++repglob; break;
            case Operator::IndVarRepLoc: ++reploc; break;
            case Operator::IndVarRepExt: ++repext; break;
            case Operator::IndVarRepReq: ++repreq; break;
            default: FAIL() << "paper set must not contain DirVar: " << m.id();
        }
    }
    EXPECT_EQ(bitneg, 2u);   // one per int site
    EXPECT_EQ(repglob, 3u);  // delta->{value_,step_}, value_->{step_}
    EXPECT_EQ(reploc, 1u);   // value_->delta
    EXPECT_EQ(repext, 2u);   // ->max_ at each site
    EXPECT_EQ(repreq, 10u);  // 5 constants x 2 sites
}

TEST(Enumeration, TypeCompatibilityIsEnforced) {
    static const MethodDescriptor d = MethodDescriptor::Builder("C", "f")
                                          .local("pi", int_type())
                                          .local("pp", pointer_type("Node"))
                                          .attr("gi", int_type(), true)
                                          .attr("gp", pointer_type("Node"), true)
                                          .attr("gq", pointer_type("Other"), true)
                                          .site("pp")
                                          .build();
    const auto mutants = enumerate_mutants(d);
    for (const auto& m : mutants) {
        // A pointer site can only be replaced by same-pointee pointers
        // (gp), never the int local/attr nor the Other-typed pointer.
        EXPECT_NE(m.replacement_var, "pi");
        EXPECT_NE(m.replacement_var, "gi");
        EXPECT_NE(m.replacement_var, "gq");
    }
    std::size_t repglob = 0;
    for (const auto& m : mutants) repglob += m.op == Operator::IndVarRepGlob ? 1 : 0;
    EXPECT_EQ(repglob, 1u);  // only gp
}

TEST(Enumeration, IdentityReplacementExcluded) {
    static const MethodDescriptor d = MethodDescriptor::Builder("C", "f")
                                          .attr("g", int_type(), true)
                                          .site("g")
                                          .build();
    for (const auto& m : enumerate_mutants(d)) {
        EXPECT_NE(m.replacement_var, "g") << m.id();
    }
}

TEST(Enumeration, NoBitNegForPointers) {
    static const MethodDescriptor d = MethodDescriptor::Builder("C", "f")
                                          .local("p", pointer_type("Node"))
                                          .site("p")
                                          .build();
    for (const auto& m : enumerate_mutants(d)) {
        EXPECT_NE(m.op, Operator::IndVarBitNeg);
    }
}

TEST(Enumeration, OperatorSubsetHonored) {
    const auto only_req = enumerate_mutants(stc::testing::Counter::inc_descriptor(),
                                            {Operator::IndVarRepReq});
    EXPECT_EQ(only_req.size(), 10u);
    for (const auto& m : only_req) EXPECT_EQ(m.op, Operator::IndVarRepReq);
}

TEST(RequiredConstants, MatchThePaperSets) {
    const auto ints = required_constants(int_type());
    ASSERT_EQ(ints.size(), 5u);  // 0, 1, -1, MAXINT, MININT
    EXPECT_EQ(ints[3].label, "MAXINT");
    EXPECT_EQ(ints[4].label, "MININT");
    const auto ptrs = required_constants(pointer_type("Node"));
    ASSERT_EQ(ptrs.size(), 1u);
    EXPECT_EQ(ptrs[0].label, "NULL");
    EXPECT_EQ(required_constants(real_type()).size(), 2u);
}

TEST(MutantId, IsDescriptive) {
    const auto mutants = enumerate_mutants(stc::testing::Counter::inc_descriptor());
    const std::string id = mutants.front().id();
    EXPECT_NE(id.find("Counter::Inc"), std::string::npos);
    EXPECT_NE(id.find("@s0"), std::string::npos);
}

// -------------------------------------------------------- controller/frame

class FrameTest : public ::testing::Test {
protected:
    static const MethodDescriptor& desc() {
        return stc::testing::Counter::inc_descriptor();
    }

    static Mutant make(std::size_t site, Operator op, std::string var = "",
                       std::optional<RequiredConstant> rc = {}) {
        return Mutant{&desc(), site, op, std::move(var), std::move(rc)};
    }
};

TEST_F(FrameTest, NoActiveMutantPassesValuesThrough) {
    MutFrame frame(desc());
    int value = 41;
    frame.bind("value_", &value);
    EXPECT_EQ(frame.use(0, 7), 7);
    EXPECT_FALSE(MutationController::instance().hit());
}

TEST_F(FrameTest, BitNegActsOnlyOnItsSite) {
    const Mutant m = make(0, Operator::IndVarBitNeg);
    MutantActivation activation(m);
    MutFrame frame(desc());
    EXPECT_EQ(frame.use(1, 7), 7);   // other site untouched
    EXPECT_FALSE(MutationController::instance().hit());
    EXPECT_EQ(frame.use(0, 7), ~7);  // targeted site negated
    EXPECT_TRUE(MutationController::instance().hit());
}

TEST_F(FrameTest, RepReqSubstitutesConstant) {
    const Mutant m = make(0, Operator::IndVarRepReq, "",
                          RequiredConstant{TypeKey::Kind::Int, -1, 0.0, "MINUSONE"});
    MutantActivation activation(m);
    MutFrame frame(desc());
    EXPECT_EQ(frame.use(0, 999), -1);
}

TEST_F(FrameTest, RepVarReadsTheBoundReplacement) {
    const Mutant m = make(0, Operator::IndVarRepExt, "max_");
    MutantActivation activation(m);
    MutFrame frame(desc());
    int max_attr = 123;
    frame.bind("max_", &max_attr);
    EXPECT_EQ(frame.use(0, 1), 123);
    max_attr = 456;  // live read, not a snapshot
    EXPECT_EQ(frame.use(0, 1), 456);
}

TEST_F(FrameTest, UnboundReplacementIsInstrumentationBug) {
    const Mutant m = make(0, Operator::IndVarRepGlob, "value_");
    MutantActivation activation(m);
    MutFrame frame(desc());  // nothing bound
    EXPECT_THROW((void)frame.use(0, 1), ContractError);
}

TEST_F(FrameTest, OtherMethodsFramesUnaffected) {
    static const MethodDescriptor other =
        MethodDescriptor::Builder("Other", "g").local("x", int_type()).site("x").build();
    const Mutant m = make(0, Operator::IndVarBitNeg);
    MutantActivation activation(m);
    MutFrame frame(other);
    EXPECT_EQ(frame.use(0, 5), 5);  // mutant targets Counter::Inc, not Other::g
}

TEST_F(FrameTest, PointerSiteSemantics) {
    static const MethodDescriptor d = MethodDescriptor::Builder("P", "f")
                                          .local("a", pointer_type("Node"))
                                          .local("b", pointer_type("Node"))
                                          .site("a")
                                          .build();
    int object = 0;
    int other = 0;

    {
        const Mutant null_mutant{&d, 0, Operator::IndVarRepReq, "",
                                 required_constants(pointer_type("Node")).front()};
        MutantActivation activation(null_mutant);
        MutFrame frame(d);
        EXPECT_EQ(frame.use_ptr(0, &object), nullptr);
    }
    {
        const Mutant swap_mutant{&d, 0, Operator::IndVarRepLoc, "b", {}};
        MutantActivation activation(swap_mutant);
        MutFrame frame(d);
        int* b_value = &other;
        frame.bind_ptr("b", &b_value);
        EXPECT_EQ(frame.use_ptr(0, &object), &other);
    }
}

TEST_F(FrameTest, RealSiteSemantics) {
    static const MethodDescriptor d = MethodDescriptor::Builder("R", "f")
                                          .local("x", real_type())
                                          .local("y", real_type())
                                          .site("x")
                                          .build();
    const Mutant m{&d, 0, Operator::IndVarRepLoc, "y", {}};
    MutantActivation activation(m);
    MutFrame frame(d);
    double y = 2.5;
    frame.bind("y", &y);
    EXPECT_DOUBLE_EQ(frame.use_real(0, 1.0), 2.5);
}

TEST_F(FrameTest, ActivationIsExclusive) {
    const Mutant a = make(0, Operator::IndVarBitNeg);
    const Mutant b = make(1, Operator::IndVarBitNeg);
    MutantActivation first(a);
    EXPECT_THROW(MutantActivation second(b), ContractError);
}

TEST_F(FrameTest, ActivationClearsOnScopeExit) {
    {
        const Mutant m = make(0, Operator::IndVarBitNeg);
        MutantActivation activation(m);
        EXPECT_TRUE(MutationController::instance().any_active());
    }
    EXPECT_FALSE(MutationController::instance().any_active());
}

// ------------------------------------------------------------------ engine

class EngineTest : public ::testing::Test {
protected:
    EngineTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(stc::testing::counter_binding());
        suite_ = driver::DriverGenerator(spec_).generate();
        driver::GeneratorOptions probe_options;
        probe_options.seed = 999;
        probe_options.cases_per_transaction = 3;
        probe_ = driver::DriverGenerator(spec_, probe_options).generate();
        mutants_ = enumerate_mutants(stc::testing::counter_descriptors(), "Counter");
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestSuite suite_;
    driver::TestSuite probe_;
    std::vector<Mutant> mutants_;
};

TEST_F(EngineTest, BaselineIsCleanAndMostMutantsDie) {
    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(suite_, mutants_, &probe_);
    EXPECT_TRUE(run.baseline_clean);
    EXPECT_EQ(run.total(), 18u);
    // The Counter's Inc is exercised by every transaction through n3/n4;
    // value-visible mutations die via output or assertion.
    EXPECT_GT(run.score(), 0.8);
    EXPECT_GT(run.kills_by(oracle::KillReason::Assertion) +
                  run.kills_by(oracle::KillReason::OutputDiff),
              0u);
}

TEST_F(EngineTest, SpecificMutantFates) {
    // delta -> ZERO: Inc becomes a no-op; final Get differs -> output kill.
    const Mutant zero{&stc::testing::Counter::inc_descriptor(), 0,
                      Operator::IndVarRepReq, "",
                      RequiredConstant{TypeKey::Kind::Int, 0, 0.0, "ZERO"}};
    // value_ -> MAXINT at the read: overflow breaks the postcondition.
    const Mutant maxint{&stc::testing::Counter::inc_descriptor(), 1,
                        Operator::IndVarRepReq, "",
                        RequiredConstant{TypeKey::Kind::Int,
                                         std::numeric_limits<std::int32_t>::max(), 0.0,
                                         "MAXINT"}};
    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(suite_, {zero, maxint}, &probe_);
    ASSERT_EQ(run.outcomes.size(), 2u);
    // A no-op Inc is caught either by a later Dec's precondition or by
    // the differing Get output, depending on the transaction.
    EXPECT_EQ(run.outcomes[0].fate, MutantFate::Killed);
    EXPECT_NE(run.outcomes[0].reason, oracle::KillReason::None);
    EXPECT_EQ(run.outcomes[1].fate, MutantFate::Killed);
    EXPECT_EQ(run.outcomes[1].reason, oracle::KillReason::Assertion);
    EXPECT_TRUE(run.outcomes[0].hit_by_suite);
}

TEST_F(EngineTest, AssertionsOnlyOracleKillsFewer) {
    EngineOptions assertions_only;
    assertions_only.oracle.use_output_diff = false;
    const MutationRun weak =
        MutationEngine(registry_, assertions_only).run(suite_, mutants_, &probe_);
    const MutationRun full = MutationEngine(registry_).run(suite_, mutants_, &probe_);
    EXPECT_LT(weak.killed(), full.killed());
    EXPECT_EQ(weak.kills_by(oracle::KillReason::OutputDiff), 0u);
}

TEST_F(EngineTest, NotCoveredWhenSuiteMissesTheSite) {
    // A suite whose transactions never call Inc: only the n1->n4(Inc,Dec)
    // path family calls it... so build a suite from the Get-only paths.
    driver::TestSuite narrow = suite_;
    narrow.cases.clear();
    for (const auto& tc : suite_.cases) {
        bool calls_inc = false;
        for (const auto& call : tc.calls) calls_inc |= call.method_name == "Inc";
        if (!calls_inc) narrow.cases.push_back(tc);
    }
    ASSERT_FALSE(narrow.cases.empty());

    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(narrow, {mutants_.front()}, nullptr);
    ASSERT_EQ(run.outcomes.size(), 1u);
    EXPECT_EQ(run.outcomes[0].fate, MutantFate::NotCovered);
    EXPECT_FALSE(run.outcomes[0].hit_by_suite);
}

TEST_F(EngineTest, ProbeSeparatesMissedFromEquivalent) {
    // Same narrow suite, but with the probe (which covers Inc): a
    // killable mutant missed by the suite is Alive + killed_by_probe.
    driver::TestSuite narrow = suite_;
    narrow.cases.clear();
    for (const auto& tc : suite_.cases) {
        bool calls_inc = false;
        for (const auto& call : tc.calls) calls_inc |= call.method_name == "Inc";
        if (!calls_inc) narrow.cases.push_back(tc);
    }
    const Mutant zero{&stc::testing::Counter::inc_descriptor(), 0,
                      Operator::IndVarRepReq, "",
                      RequiredConstant{TypeKey::Kind::Int, 0, 0.0, "ZERO"}};
    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(narrow, {zero}, &probe_);
    ASSERT_EQ(run.outcomes.size(), 1u);
    EXPECT_EQ(run.outcomes[0].fate, MutantFate::Alive);
    EXPECT_TRUE(run.outcomes[0].killed_by_probe);
}

TEST_F(EngineTest, ScoreFormulaMatchesThePaper) {
    MutationRun run;
    run.outcomes.resize(10);
    static const MethodDescriptor& d = stc::testing::Counter::inc_descriptor();
    static const Mutant m{&d, 0, Operator::IndVarBitNeg, "", {}};
    for (auto& o : run.outcomes) o.mutant = &m;
    for (int i = 0; i < 6; ++i) run.outcomes[i].fate = MutantFate::Killed;
    run.outcomes[6].fate = MutantFate::EquivalentPresumed;
    run.outcomes[7].fate = MutantFate::EquivalentPresumed;
    run.outcomes[8].fate = MutantFate::Alive;
    run.outcomes[9].fate = MutantFate::NotCovered;
    // killed / (total - equivalent) = 6 / 8
    EXPECT_DOUBLE_EQ(run.score(), 0.75);
    EXPECT_EQ(run.killed(), 6u);
    EXPECT_EQ(run.equivalent(), 2u);
    // covered_score() additionally drops the NotCovered mutant: 6 / 7.
    EXPECT_EQ(run.not_covered(), 1u);
    EXPECT_DOUBLE_EQ(run.covered_score(), 6.0 / 7.0);
}

TEST_F(EngineTest, AllNotCoveredScoresZeroButCoveredScoreIsVacuous) {
    // Edge case: a suite that reaches no mutated site at all.  score()
    // keeps NotCovered in the denominator (the paper's accounting), so
    // the component scores 0 — the suite demonstrably tested nothing.
    // covered_score() has an empty denominator and reports the vacuous
    // 1.0, which is why it must never be read without score() beside it.
    MutationRun run;
    run.outcomes.resize(4);
    static const MethodDescriptor& d = stc::testing::Counter::inc_descriptor();
    static const Mutant m{&d, 0, Operator::IndVarBitNeg, "", {}};
    for (auto& o : run.outcomes) {
        o.mutant = &m;
        o.fate = MutantFate::NotCovered;
    }
    EXPECT_EQ(run.not_covered(), 4u);
    EXPECT_DOUBLE_EQ(run.score(), 0.0);
    EXPECT_DOUBLE_EQ(run.covered_score(), 1.0);

    // And the fully-empty run is well-defined for both.
    const MutationRun empty;
    EXPECT_DOUBLE_EQ(empty.score(), 1.0);
    EXPECT_DOUBLE_EQ(empty.covered_score(), 1.0);
}

// ------------------------------------------------------------------ report

TEST_F(EngineTest, TableAggregatesPerMethodAndOperator) {
    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(suite_, mutants_, &probe_);
    const MutationTable table = MutationTable::build(run);
    ASSERT_EQ(table.methods().size(), 1u);
    EXPECT_EQ(table.methods()[0], "Inc");
    EXPECT_EQ(table.grand_total().total, 18u);
    EXPECT_EQ(table.row_total("Inc").total, 18u);
    EXPECT_EQ(table.column_total(Operator::IndVarRepReq).total, 10u);
    EXPECT_EQ(table.cell("Inc", Operator::IndVarBitNeg).total, 2u);
    EXPECT_EQ(table.cell("Ghost", Operator::IndVarBitNeg).total, 0u);

    std::ostringstream os;
    table.render(os, run);
    const std::string out = os.str();
    EXPECT_NE(out.find("IndVarRepLoc"), std::string::npos);
    EXPECT_NE(out.find("#mutants"), std::string::npos);
    EXPECT_NE(out.find("Score"), std::string::npos);
    EXPECT_NE(out.find("kills by reason:"), std::string::npos);

    std::ostringstream csv;
    table.render_csv(csv);
    EXPECT_NE(csv.str().find("Inc,IndVarRepReq,10"), std::string::npos);
}

TEST_F(EngineTest, ManualOracleComplementsTheAutomaticChannels) {
    // The identity-like mutant delta -> step_ (delta is initialized from
    // step_) survives crash/assertion/output channels; only a manually
    // derived oracle (§3.3) can condemn it.
    const Mutant identity{&stc::testing::Counter::inc_descriptor(), 0,
                          Operator::IndVarRepGlob, "step_", {}};

    const MutationEngine plain(registry_);
    const auto survived = plain.run(suite_, {identity}, &probe_);
    ASSERT_EQ(survived.outcomes[0].fate, MutantFate::EquivalentPresumed);

    EngineOptions strict;
    strict.manual_oracle = [](const std::string&, const std::string&) {
        return false;  // the tester's oracle rejects every observed state
    };
    const MutationEngine picky(registry_, strict);
    const auto judged = picky.run(suite_, {identity}, &probe_);
    EXPECT_EQ(judged.outcomes[0].fate, MutantFate::Killed);
    EXPECT_EQ(judged.outcomes[0].reason, oracle::KillReason::ManualOracle);
}

TEST_F(EngineTest, AssertionGuidanceNamesInstrumentedMethods) {
    const MutationEngine engine(registry_);
    const MutationRun run = engine.run(suite_, mutants_, &probe_);
    std::ostringstream os;
    MutationTable::render_assertion_guidance(os, run);
    const std::string out = os.str();
    EXPECT_NE(out.find("Counter::Inc"), std::string::npos);
    EXPECT_NE(out.find("assertion share"), std::string::npos);
    EXPECT_NE(out.find("ASSERT++"), std::string::npos);
}

TEST(OperatorNames, MatchTable1) {
    EXPECT_STREQ(to_string(Operator::IndVarBitNeg), "IndVarBitNeg");
    EXPECT_STREQ(describe(Operator::IndVarRepGlob),
                 "Replaces non-interface variable by G(R2)");
    EXPECT_STREQ(describe(Operator::IndVarRepReq),
                 "Replaces non-interface variable by RC");
}

}  // namespace
}  // namespace stc::mutation
