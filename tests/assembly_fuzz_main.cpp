// Fuzz driver for the assembly product builder (stc::assembly) and the
// assembly-block grammar: random role specs are composed under random —
// and deliberately adversarial — wiring and export tables, and the
// resulting descriptions are pushed through build_product and the
// print/parse round-trip.
//
// Invariants checked on every iteration:
//   - build_product never crashes: it returns a product or throws
//     stc::Error (SpecError), whatever the input;
//   - dangling role refs, ctors/dtors or unknown methods in wires,
//     cyclic hidden-action chains, duplicate public names and
//     state-budget explosions are all *rejected* (an exception, not a
//     mangled product);
//   - a successful build has sane stats (reachable <= conceivable,
//     birth + death present) and rebuilding is bit-identical;
//   - print_assembly/parse_assembly is the identity on every valid
//     description, and parse_assembly never crashes on corrupted text.
//
// `assembly_fuzz --smoke` is the CI entry (ctest): a seconds-scale
// budget.  `assembly_fuzz --iters N [--seed S]` is the long-haul form.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "stc/assembly/product.h"
#include "stc/support/error.h"
#include "stc/support/rng.h"
#include "stc/tfm/graph.h"
#include "stc/tspec/assembly.h"
#include "stc/tspec/builder.h"

namespace {

using stc::support::Pcg32;
using stc::tspec::AssemblySpec;
using stc::tspec::MethodCategory;

int g_failures = 0;

void check(bool ok, const std::string& what, std::uint64_t iteration) {
    if (ok) return;
    std::cerr << "assembly_fuzz: FAILED at iteration " << iteration << ": "
              << what << "\n";
    ++g_failures;
}

/// A small structurally valid role spec: birth node, one node per
/// plain method chained in order (plus random extra edges), death
/// node reachable from every method node.
stc::tspec::ComponentSpec random_role(Pcg32& rng, const std::string& cls,
                                      std::size_t method_count) {
    stc::tspec::SpecBuilder b(cls);
    b.method("m1", cls, MethodCategory::Constructor);
    b.method("m2", "~" + cls, MethodCategory::Destructor);
    std::vector<std::string> nodes;
    for (std::size_t k = 0; k < method_count; ++k) {
        const std::string id = "m" + std::to_string(3 + k);
        b.method(id, "Op" + std::to_string(k), MethodCategory::New);
        const std::string node = "n" + std::to_string(2 + k);
        b.node(node, false, {id});
        nodes.push_back(node);
    }
    const std::string death = "n" + std::to_string(2 + method_count);
    b.node("n1", true, {"m1"});
    b.node(death, false, {"m2"});
    // Dedup so random extras never repeat a chain edge (a duplicate
    // link is a spec inconsistency, not the composition's concern).
    std::set<std::pair<std::string, std::string>> edges;
    edges.emplace("n1", nodes.front());
    for (std::size_t k = 0; k + 1 < nodes.size(); ++k) {
        edges.emplace(nodes[k], nodes[k + 1]);
    }
    for (const auto& node : nodes) {
        edges.emplace(node, death);
        // Random extra structure: self-loops and back edges.
        if (rng.index(2) == 0) edges.emplace(node, node);
        if (nodes.size() > 1 && rng.index(3) == 0) {
            edges.emplace(node, nodes[rng.index(nodes.size())]);
        }
    }
    for (const auto& [from, to] : edges) b.edge(from, to);
    return b.build();
}

struct Fixture {
    AssemblySpec assembly;
    std::map<std::string, stc::tspec::ComponentSpec> specs;
};

/// A random well-formed assembly: 2-3 roles, wires only from lower to
/// higher role index (acyclic by construction), unique export aliases.
Fixture random_fixture(Pcg32& rng) {
    Fixture f;
    f.assembly.name = "Fuzz";
    const std::size_t role_count = 2 + rng.index(2);
    std::vector<std::vector<std::string>> methods(role_count);
    for (std::size_t r = 0; r < role_count; ++r) {
        const std::string id = "r" + std::to_string(r);
        const std::string cls = "C" + std::to_string(r);
        const std::size_t method_count = 1 + rng.index(2);
        f.assembly.roles.push_back({id, cls, ""});
        f.specs.emplace(id, random_role(rng, cls, method_count));
        for (std::size_t k = 0; k < method_count; ++k) {
            methods[r].push_back("m" + std::to_string(3 + k));
        }
    }
    const std::size_t wires = rng.index(4);
    for (std::size_t w = 0; w < wires && role_count >= 2; ++w) {
        const std::size_t caller = rng.index(role_count - 1);
        const std::size_t callee =
            caller + 1 + rng.index(role_count - caller - 1);
        f.assembly.wiring.push_back(
            {"r" + std::to_string(caller),
             methods[caller][rng.index(methods[caller].size())],
             "r" + std::to_string(callee),
             methods[callee][rng.index(methods[callee].size())],
             rng.index(2) == 0});
    }
    for (std::size_t r = 0; r < role_count; ++r) {
        f.assembly.exports.push_back({"r" + std::to_string(r), methods[r][0],
                                      "Pub" + std::to_string(r)});
    }
    return f;
}

/// build_product under a tight state budget; returns true when it
/// threw (any stc::Error).  Crashes are the fuzzer's failure mode.
bool build_throws(const Fixture& f, std::uint64_t iteration,
                  std::string* rendered = nullptr) {
    stc::assembly::ProductOptions options;
    options.max_states = 500;
    try {
        const auto product =
            stc::assembly::build_product(f.assembly, f.specs, options);
        check(product.stats.reachable_tuples <=
                  product.stats.conceivable_tuples,
              "reachable tuples exceed conceivable", iteration);
        check(product.stats.product_nodes >= 2,
              "product lost its birth/death nodes", iteration);
        check(product.spec.validate().empty(),
              "product spec failed validation", iteration);
        if (rendered != nullptr) {
            *rendered = stc::assembly::describe(product.stats) +
                        product.spec.build_tfm().to_dot();
        }
        return false;
    } catch (const stc::Error&) {
        return true;
    }
}

void one_iteration(Pcg32& rng, std::uint64_t iteration) {
    Fixture f = random_fixture(rng);

    switch (rng.index(8)) {
        case 0: {  // well-formed: success or clean rejection, and
                   // rebuilding must be bit-identical.
            std::string first;
            if (!build_throws(f, iteration, &first)) {
                std::string second;
                check(!build_throws(f, iteration, &second) && first == second,
                      "rebuild of the same assembly differed", iteration);
            }
            break;
        }
        case 1: {  // dangling role in a wire or export
            if (f.assembly.wiring.empty() || rng.index(2) == 0) {
                f.assembly.exports[rng.index(f.assembly.exports.size())].role =
                    "ghost";
            } else {
                auto& wire =
                    f.assembly.wiring[rng.index(f.assembly.wiring.size())];
                (rng.index(2) == 0 ? wire.caller_role : wire.callee_role) =
                    "ghost";
            }
            check(build_throws(f, iteration),
                  "dangling role ref was not rejected", iteration);
            break;
        }
        case 2: {  // ctor/dtor or unknown method in a wire or export
            const std::string bad =
                rng.index(3) == 0 ? "m1" : (rng.index(2) == 0 ? "m2" : "m99");
            if (f.assembly.wiring.empty() || rng.index(2) == 0) {
                f.assembly.exports[rng.index(f.assembly.exports.size())]
                    .method = bad;
            } else {
                auto& wire =
                    f.assembly.wiring[rng.index(f.assembly.wiring.size())];
                (rng.index(2) == 0 ? wire.caller_method
                                   : wire.callee_method) = bad;
            }
            check(build_throws(f, iteration),
                  "ctor/dtor/unknown method in wiring was not rejected",
                  iteration);
            break;
        }
        case 3: {  // cyclic hidden-action chain
            if (f.assembly.wiring.empty()) break;
            const auto& wire = f.assembly.wiring.front();
            // Close the loop: callee's method calls back into the caller's.
            f.assembly.wiring.push_back({wire.callee_role, wire.callee_method,
                                         wire.caller_role, wire.caller_method,
                                         false});
            check(build_throws(f, iteration),
                  "cyclic hidden-action chain was not rejected", iteration);
            break;
        }
        case 4: {  // duplicate public names
            f.assembly.exports.push_back(f.assembly.exports.front());
            check(build_throws(f, iteration),
                  "duplicate public name was not rejected", iteration);
            break;
        }
        case 5: {  // state budget explosion
            stc::assembly::ProductOptions tiny;
            tiny.max_states = 1;
            try {
                (void)stc::assembly::build_product(f.assembly, f.specs, tiny);
                check(false, "state explosion guard did not fire", iteration);
            } catch (const stc::Error&) {
            }
            break;
        }
        case 6: {  // grammar round-trip on the pristine description
            const std::string text = stc::tspec::print_assembly(f.assembly);
            try {
                const AssemblySpec back = stc::tspec::parse_assembly(text);
                check(back == f.assembly,
                      "print/parse round-trip changed the assembly",
                      iteration);
            } catch (const stc::Error&) {
                check(false, "printer emitted unparseable text", iteration);
            }
            break;
        }
        default: {  // corrupted text: parse may reject, must not crash
            std::string text = stc::tspec::print_assembly(f.assembly);
            const std::size_t edits = 1 + rng.index(4);
            for (std::size_t e = 0; e < edits && !text.empty(); ++e) {
                const std::size_t at = rng.index(text.size());
                switch (rng.index(3)) {
                    case 0:
                        text[at] = static_cast<char>(rng.index(256));
                        break;
                    case 1:
                        text.erase(at, 1 + rng.index(8));
                        break;
                    default:
                        text.insert(at, "((}{'m1',", 1 + rng.index(9));
                        break;
                }
            }
            try {
                (void)stc::tspec::parse_assembly(text);
            } catch (const stc::Error&) {
            }
            break;
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t iterations = 20000;
    std::uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            iterations = 2000;
        } else if (arg == "--iters" && i + 1 < argc) {
            iterations = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::cerr
                << "usage: assembly_fuzz [--smoke] [--iters N] [--seed S]\n";
            return 2;
        }
    }

    Pcg32 rng(seed);
    for (std::uint64_t i = 0; i < iterations; ++i) {
        one_iteration(rng, i);
        if (g_failures > 10) break;  // enough signal; stop the spew
    }

    if (g_failures != 0) {
        std::cerr << "assembly_fuzz: " << g_failures
                  << " invariant failure(s)\n";
        return 1;
    }
    std::cout << "assembly_fuzz: " << iterations << " iteration(s), seed "
              << seed << ", all invariants held\n";
    return 0;
}
