// Tests for the extended DirVar* operators — interface-variable (formal
// parameter) mutation, the half of Delamaro's interface mutation the
// paper's essential subset traded away.
#include <gtest/gtest.h>

#include "stc/mutation/controller.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/frame.h"
#include "stc/mutation/report.h"
#include "wallet_component.h"

namespace stc::mutation {
namespace {

const MethodDescriptor& gadget_desc() {
    static const MethodDescriptor d = MethodDescriptor::Builder("G", "f")
                                          .param("p", int_type())
                                          .local("l", int_type())
                                          .attr("g", int_type(), true)
                                          .attr("e", int_type(), false)
                                          .site("l", "local use")          // s0
                                          .interface_site("p", "param")    // s1
                                          .build();
    return d;
}

// -------------------------------------------------------------- descriptor

TEST(DirVar, InterfaceSitesRequireParams) {
    EXPECT_THROW((void)MethodDescriptor::Builder("C", "f")
                     .local("l", int_type())
                     .interface_site("l")
                     .build(),
                 SpecError);
    // And plain sites still reject params, pointing at interface_site.
    try {
        (void)MethodDescriptor::Builder("C", "f")
            .param("p", int_type())
            .site("p")
            .build();
        FAIL();
    } catch (const SpecError& e) {
        EXPECT_NE(std::string(e.what()).find("interface_site"), std::string::npos);
    }
}

// ------------------------------------------------------------- enumeration

TEST(DirVar, OperatorsPartitionBySiteKind) {
    // IndVar ops never touch the interface site; DirVar ops never touch
    // the local site.
    const auto ind = enumerate_mutants(gadget_desc());  // default: paper set
    for (const auto& m : ind) {
        EXPECT_EQ(m.site_index, 0u) << m.id();
        EXPECT_FALSE(is_dirvar(m.op));
    }
    const auto dir = enumerate_mutants(
        gadget_desc(), {kDirVarOperators.begin(), kDirVarOperators.end()});
    for (const auto& m : dir) {
        EXPECT_EQ(m.site_index, 1u) << m.id();
        EXPECT_TRUE(is_dirvar(m.op));
    }
    // DirVar population on s1: BitNeg 1, RepGlob {g} 1, RepLoc {l} 1,
    // RepExt {e} 1, RepReq 5 = 9.
    EXPECT_EQ(dir.size(), 9u);

    const auto all = enumerate_mutants(
        gadget_desc(), {kExtendedOperators.begin(), kExtendedOperators.end()});
    EXPECT_EQ(all.size(), ind.size() + dir.size());
}

TEST(DirVar, ClassificationHelpers) {
    EXPECT_TRUE(is_dirvar(Operator::DirVarRepReq));
    EXPECT_FALSE(is_dirvar(Operator::IndVarRepReq));
    EXPECT_TRUE(is_bitneg(Operator::DirVarBitNeg));
    EXPECT_TRUE(is_repreq(Operator::DirVarRepReq));
    EXPECT_STREQ(to_string(Operator::DirVarRepLoc), "DirVarRepLoc");
    EXPECT_STREQ(describe(Operator::DirVarRepGlob),
                 "Replaces interface variable by G(R2)");
}

// ------------------------------------------------------------------ frame

TEST(DirVar, FrameAppliesDirVarSubstitutions) {
    // DirVarRepGlob at the interface site: the parameter use reads g.
    const Mutant rep_glob{&gadget_desc(), 1, Operator::DirVarRepGlob, "g", {}};
    {
        MutantActivation activation(rep_glob);
        MutFrame frame(gadget_desc());
        int g = 77;
        frame.bind("g", &g);
        EXPECT_EQ(frame.use(1, 5), 77);   // param use mutated
        EXPECT_EQ(frame.use(0, 5), 5);    // local site untouched
    }
    const Mutant bitneg{&gadget_desc(), 1, Operator::DirVarBitNeg, "", {}};
    {
        MutantActivation activation(bitneg);
        MutFrame frame(gadget_desc());
        EXPECT_EQ(frame.use(1, 5), ~5);
    }
    const Mutant repreq{&gadget_desc(), 1, Operator::DirVarRepReq, "",
                        RequiredConstant{TypeKey::Kind::Int, -1, 0.0, "MINUSONE"}};
    {
        MutantActivation activation(repreq);
        MutFrame frame(gadget_desc());
        EXPECT_EQ(frame.use(1, 5), -1);
    }
}

// ----------------------------------------------------------- end to end

TEST(DirVar, WalletParameterMutantsAreKilled) {
    // Deposit's amount -> ZERO: the deposit vanishes; observable in the
    // wallet balance and the ledger.
    reflect::Registry registry;
    examples::register_wallet_classes(registry);

    examples::LedgerPool ledgers;
    const auto completions = ledgers.completions();
    driver::DriverGenerator generator(examples::wallet_intraclass_spec());
    generator.completions(&completions);
    const auto suite = generator.generate();

    const auto dir_mutants = enumerate_mutants(
        examples::wallet_descriptors(), "Wallet",
        {kDirVarOperators.begin(), kDirVarOperators.end()});
    ASSERT_FALSE(dir_mutants.empty());

    const MutationEngine engine(registry);
    const auto run = engine.run(suite, dir_mutants, nullptr);
    EXPECT_TRUE(run.baseline_clean);
    EXPECT_GT(run.score(), 0.5);

    // Table rendering shows DirVar columns only when present.
    const auto table = MutationTable::build(run);
    const auto cols = table.columns();
    bool has_dirvar = false;
    for (Operator op : cols) has_dirvar = has_dirvar || is_dirvar(op);
    EXPECT_TRUE(has_dirvar);
    EXPECT_EQ(table.grand_total().total, dir_mutants.size());
}

TEST(DirVar, PaperBenchPopulationsUnchanged) {
    // The default (paper) operator set must still produce IndVar-only
    // populations even on descriptors that declare interface sites.
    const auto mutants =
        enumerate_mutants(examples::wallet_descriptors(), "Wallet");
    for (const auto& m : mutants) EXPECT_FALSE(is_dirvar(m.op)) << m.id();
}

}  // namespace
}  // namespace stc::mutation
