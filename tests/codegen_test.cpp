#include <gtest/gtest.h>

#include "stc/codegen/driver_codegen.h"
#include "stc/driver/generator.h"
#include "test_component.h"

namespace stc::codegen {
namespace {

class CodegenTest : public ::testing::Test {
protected:
    CodegenTest() : spec_(stc::testing::counter_spec()) {
        driver::GeneratorOptions options;
        options.enumeration.max_node_visits = 1;
        suite_ = driver::DriverGenerator(spec_, options).generate();
    }

    tspec::ComponentSpec spec_;
    driver::TestSuite suite_;
};

TEST_F(CodegenTest, TestCaseFollowsFig6Structure) {
    const DriverCodegen generator(spec_);
    const std::string src = generator.test_case_source(suite_.cases.front());

    // Template function reusable for subclass testing.
    EXPECT_NE(src.find("template <class ClassType>"), std::string::npos);
    EXPECT_NE(src.find("void TestCase0(ClassType* CUT)"), std::string::npos);
    // Invariant before call and after return.
    EXPECT_NE(src.find("CUT->InvariantTest();"), std::string::npos);
    // CurrentMethod bookkeeping and catch block.
    EXPECT_NE(src.find("CurrentMethod = "), std::string::npos);
    EXPECT_NE(src.find("catch (const std::exception& er)"), std::string::npos);
    EXPECT_NE(src.find("Method called: "), std::string::npos);
    // Reporter stores the internal state; the CUT dies at the end.
    EXPECT_NE(src.find("CUT->Reporter(LogFile);"), std::string::npos);
    EXPECT_NE(src.find("delete CUT;"), std::string::npos);
    // Log file matches the paper's name.
    EXPECT_NE(src.find("\"Result.txt\""), std::string::npos);
}

TEST_F(CodegenTest, PlainFunctionModeUsesConcreteClass) {
    CodegenOptions options;
    options.as_templates = false;
    const DriverCodegen generator(spec_, options);
    const std::string src = generator.test_case_source(suite_.cases.front());
    EXPECT_EQ(src.find("template"), std::string::npos);
    EXPECT_NE(src.find("Counter* CUT"), std::string::npos);
}

TEST_F(CodegenTest, SuiteHasMainInstantiatingTheCut) {
    const DriverCodegen generator(spec_);
    const std::string src = generator.suite_source(suite_);
    EXPECT_NE(src.find("int main() {"), std::string::npos);
    EXPECT_NE(src.find("new Counter("), std::string::npos);
    // One TestCase call per case.
    std::size_t calls = 0;
    for (std::size_t pos = 0; (pos = src.find("TestCase", pos)) != std::string::npos;
         ++pos) {
        ++calls;
    }
    EXPECT_GE(calls, suite_.size());
    // Header block records the generation metadata the paper reports.
    EXPECT_NE(src.find("node(s)"), std::string::npos);
}

TEST_F(CodegenTest, IncludesAndUsingsEmitted) {
    CodegenOptions options;
    options.includes = {"counter.h", "<vector>"};
    options.usings = {"stc::testing"};
    const DriverCodegen generator(spec_, options);
    const std::string src = generator.suite_source(suite_);
    EXPECT_NE(src.find("#include \"counter.h\""), std::string::npos);
    EXPECT_NE(src.find("#include <vector>"), std::string::npos);
    EXPECT_NE(src.find("using namespace stc::testing;"), std::string::npos);
}

TEST_F(CodegenTest, ValueReturningCallsAreDiscardedExplicitly) {
    const DriverCodegen generator(spec_);
    const std::string src = generator.suite_source(suite_);
    // Get() returns int -> (void) cast; Inc() returns void -> plain call.
    EXPECT_NE(src.find("(void)CUT->Get()"), std::string::npos);
    EXPECT_NE(src.find("CUT->Inc()"), std::string::npos);
    EXPECT_EQ(src.find("(void)CUT->Inc()"), std::string::npos);
}

TEST_F(CodegenTest, CustomLogFileName) {
    CodegenOptions options;
    options.log_file = "Custom.log";
    const DriverCodegen generator(spec_, options);
    EXPECT_NE(generator.test_case_source(suite_.cases.front()).find("\"Custom.log\""),
              std::string::npos);
}

TEST_F(CodegenTest, StructuredParametersBecomeTesterHooks) {
    tspec::SpecBuilder b("Holder");
    b.method("m1", "Holder", tspec::MethodCategory::Constructor);
    b.method("m2", "~Holder", tspec::MethodCategory::Destructor);
    b.method("m3", "Attach", tspec::MethodCategory::New)
        .param_pointer("peer", "Provider");
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m2"});
    b.edge("n1", "n2").edge("n2", "n3");
    const auto spec = b.build();
    const auto suite = driver::DriverGenerator(spec).generate();

    const DriverCodegen generator(spec);
    const std::string src = generator.suite_source(suite);
    EXPECT_NE(src.find("Provider* tester_supplied_Provider(int hint);"),
              std::string::npos);
    EXPECT_NE(src.find("Attach(tester_supplied_Provider(0))"), std::string::npos);
    EXPECT_EQ(generator.completion_classes(suite),
              (std::vector<std::string>{"Provider"}));
}

TEST_F(CodegenTest, NoHooksForPlainSuites) {
    const DriverCodegen generator(spec_);
    EXPECT_TRUE(generator.completion_classes(suite_).empty());
    EXPECT_EQ(generator.suite_source(suite_).find("tester_supplied"),
              std::string::npos);
}

TEST_F(CodegenTest, StringArgumentsAreEscaped) {
    tspec::SpecBuilder b("S");
    b.method("m1", "S", tspec::MethodCategory::Constructor);
    b.method("m2", "~S", tspec::MethodCategory::Destructor);
    b.method("m3", "Say", tspec::MethodCategory::New)
        .param_string_set("text", {"he\"llo"});
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m2"});
    b.edge("n1", "n2").edge("n2", "n3");
    const auto spec = b.build();
    const auto suite = driver::DriverGenerator(spec).generate();
    const std::string src = DriverCodegen(spec).suite_source(suite);
    EXPECT_NE(src.find("Say(\"he\\\"llo\")"), std::string::npos);
}

}  // namespace
}  // namespace stc::codegen
