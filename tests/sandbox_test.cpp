// stc::sandbox tests: frame IPC, wait-status decoding, the forked
// worker pool surviving genuinely hostile jobs (real SIGSEGV, hangs,
// allocation bombs), and the isolated campaign contracts — fates
// byte-identical to in-process for benign mutants, real faults
// contained to one worker, and clean resume after the orchestrator
// itself is SIGKILLed mid-run.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stc/campaign/scheduler.h"
#include "stc/sandbox/codec.h"
#include "stc/sandbox/ipc.h"
#include "stc/sandbox/limits.h"
#include "stc/sandbox/worker_pool.h"
#include "hostile_component.h"
#include "test_component.h"

// Real-fault tests deliberately segfault and exhaust address space in
// forked children; sanitizer runtimes intercept both and turn them
// into their own reports, so those tests skip under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define STC_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STC_UNDER_ASAN 1
#endif
#endif
#ifndef STC_UNDER_ASAN
#define STC_UNDER_ASAN 0
#endif

namespace stc::sandbox {
namespace {

// ------------------------------------------------------------------- ipc

std::string raw_frame(const std::string& payload) {
    const auto n = static_cast<std::uint32_t>(payload.size());
    std::string out;
    out.push_back(static_cast<char>(n & 0xffu));
    out.push_back(static_cast<char>((n >> 8u) & 0xffu));
    out.push_back(static_cast<char>((n >> 16u) & 0xffu));
    out.push_back(static_cast<char>((n >> 24u) & 0xffu));
    out += payload;
    return out;
}

TEST(SandboxIpc, FrameRoundTripsThroughAPipe) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = "hello, \x01 hostile \n bytes";
    ASSERT_TRUE(write_frame(fds[1], payload));
    ASSERT_TRUE(write_frame(fds[1], ""));  // empty payload is a valid frame
    EXPECT_EQ(read_frame(fds[0]), payload);
    EXPECT_EQ(read_frame(fds[0]), "");
    ::close(fds[1]);
    EXPECT_FALSE(read_frame(fds[0]).has_value());  // clean EOF
    ::close(fds[0]);
}

TEST(SandboxIpc, TornPrefixReadsAsNoFrame) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], "\x07\x00", 2), 2);  // half a length prefix
    ::close(fds[1]);
    EXPECT_FALSE(read_frame(fds[0]).has_value());
    ::close(fds[0]);
}

TEST(SandboxIpc, FrameBufferReassemblesByteByByte) {
    const std::string wire = raw_frame("first") + raw_frame("") +
                             raw_frame("second frame");
    FrameBuffer buffer;
    std::vector<std::string> frames;
    for (const char byte : wire) {
        buffer.feed(&byte, 1);
        while (auto frame = buffer.take_frame()) frames.push_back(*frame);
        EXPECT_FALSE(buffer.oversized());
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0], "first");
    EXPECT_EQ(frames[1], "");
    EXPECT_EQ(frames[2], "second frame");
    EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(SandboxIpc, FrameBufferFlagsOversizedPrefixes) {
    FrameBuffer buffer;
    const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};  // 4 GiB claim
    buffer.feed(huge, sizeof huge);
    EXPECT_TRUE(buffer.oversized());
    EXPECT_FALSE(buffer.take_frame().has_value());
}

// --------------------------------------------------- wait-status decode

/// Fork, run `in_child`, return the waitpid status.  The child must
/// terminate inside `in_child` (or it _exits 0).
int wait_status_of(const std::function<void()>& in_child) {
    const pid_t pid = ::fork();
    if (pid == 0) {
        in_child();
        ::_exit(0);
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    return status;
}

TEST(DecodeWaitStatus, CleanAndReservedExitCodes) {
    const auto clean = decode_wait_status(
        wait_status_of([] { ::_exit(0); }), false);
    EXPECT_EQ(clean.kind, ExitKind::WorkerExit);
    EXPECT_EQ(clean.code, 0);
    EXPECT_EQ(outcome_kind(clean), "worker-exit:0");

    const auto oom = decode_wait_status(
        wait_status_of([] { ::_exit(kResourceLimitExit); }), false);
    EXPECT_EQ(oom.kind, ExitKind::ResourceLimit);
    EXPECT_EQ(outcome_kind(oom), "resource-limit");

    const auto failed = decode_wait_status(
        wait_status_of([] { ::_exit(kWorkerFailureExit); }), false);
    EXPECT_EQ(failed.kind, ExitKind::WorkerExit);
    EXPECT_EQ(failed.code, kWorkerFailureExit);
}

TEST(DecodeWaitStatus, SignalsFollowTheTable) {
    const auto segv = decode_wait_status(wait_status_of([] {
        ::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
    }), false);
    EXPECT_EQ(segv.kind, ExitKind::CrashSignal);
    EXPECT_EQ(segv.signal, SIGSEGV);
    EXPECT_EQ(outcome_kind(segv), "crash-signal:" + std::to_string(SIGSEGV));

    // SIGXCPU is the RLIMIT_CPU backstop: a timeout, not a crash.
    const auto xcpu = decode_wait_status(wait_status_of([] {
        ::signal(SIGXCPU, SIG_DFL);
        ::raise(SIGXCPU);
    }), false);
    EXPECT_EQ(xcpu.kind, ExitKind::Timeout);
    EXPECT_EQ(outcome_kind(xcpu), "timeout");

    // A SIGKILL the parent did not send reads as the kernel OOM killer.
    const auto external = decode_wait_status(wait_status_of([] {
        ::raise(SIGKILL);
    }), false);
    EXPECT_EQ(external.kind, ExitKind::ResourceLimit);

    // The same status, when the parent sent the kill for a missed
    // deadline, reads as a timeout.
    const auto deadline = decode_wait_status(wait_status_of([] {
        ::raise(SIGKILL);
    }), true);
    EXPECT_EQ(deadline.kind, ExitKind::Timeout);
}

// ------------------------------------------------------------ worker pool

/// Payload-directed job: "ok:<x>" echoes, the rest misbehave for real.
std::string hostile_job(const std::string& payload) {
    if (payload.rfind("ok:", 0) == 0) return "echo:" + payload;
    if (payload == "exit") ::_exit(3);
    if (payload == "throw") throw std::runtime_error("job failure");
    if (payload == "segv") {
        volatile int* null = nullptr;
        *null = 1;
    }
    if (payload == "hang") {
        for (;;) ::pause();
    }
    if (payload == "alloc") {
        std::vector<std::unique_ptr<char[]>> hoard;
        for (;;) {
            constexpr std::size_t kChunk = 8u << 20;
            hoard.push_back(std::make_unique<char[]>(kChunk));
            for (std::size_t off = 0; off < kChunk; off += 4096) {
                hoard.back()[off] = 1;
            }
        }
    }
    return "unreachable";
}

std::vector<TaskResult> run_pool(const std::vector<std::string>& payloads,
                                 PoolOptions options,
                                 PoolStats* stats_out = nullptr) {
    WorkerPool pool(hostile_job, std::move(options));
    std::vector<TaskResult> results(payloads.size());
    pool.run(payloads, [&](std::size_t index, TaskResult result) {
        results[index] = std::move(result);
    });
    if (stats_out != nullptr) *stats_out = pool.stats();
    return results;
}

TEST(SandboxWorkerPool, EchoesEveryPayloadAtSeveralWidths) {
    std::vector<std::string> payloads;
    for (int i = 0; i < 24; ++i) payloads.push_back("ok:" + std::to_string(i));
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        PoolOptions options;
        options.workers = workers;
        PoolStats stats;
        const auto results = run_pool(payloads, options, &stats);
        for (std::size_t i = 0; i < payloads.size(); ++i) {
            ASSERT_TRUE(results[i].ok()) << results[i].outcome();
            EXPECT_EQ(results[i].payload, "echo:" + payloads[i]);
            EXPECT_LT(results[i].worker, workers);
        }
        EXPECT_EQ(stats.respawned, 0u);
        EXPECT_EQ(stats.kills, 0u);
        EXPECT_LE(stats.spawned, workers);
    }
}

TEST(SandboxWorkerPool, SurvivesWorkerDeathsAndKeepsServing) {
    PoolOptions options;
    options.workers = 2;
    options.limits.timeout_ms = 500;

    std::vector<WorkerEvent> events;
    options.on_event = [&](const WorkerEvent& e) { events.push_back(e); };
    std::size_t dispatches = 0;
    options.on_dispatch = [&](std::size_t, std::size_t) { ++dispatches; };

    const std::vector<std::string> payloads = {
        "ok:a", "exit", "ok:b", "throw", "hang", "ok:c"};
    PoolStats stats;
    const auto results = run_pool(payloads, options, &stats);

    EXPECT_EQ(results[0].payload, "echo:ok:a");
    EXPECT_EQ(results[1].outcome(), "worker-exit:3");
    EXPECT_EQ(results[2].payload, "echo:ok:b");
    EXPECT_EQ(results[3].outcome(),
              "worker-exit:" + std::to_string(kWorkerFailureExit));
    EXPECT_EQ(results[4].outcome(), "timeout");
    EXPECT_EQ(results[5].payload, "echo:ok:c");

    EXPECT_EQ(stats.kills, 1u);        // the hang
    EXPECT_EQ(stats.timeouts, 1u);
    EXPECT_EQ(stats.worker_exits, 2u);  // exit + throw
    // Respawn is lazy (on next dispatch), so a worker whose death
    // coincided with the end of the queue may never be replaced.
    EXPECT_GE(stats.respawned, 2u);
    EXPECT_EQ(dispatches, payloads.size());

    std::size_t spawns = 0, exits = 0, kills = 0;
    for (const WorkerEvent& e : events) {
        if (e.kind == WorkerEventKind::Spawn) ++spawns;
        if (e.kind == WorkerEventKind::Exit) ++exits;
        if (e.kind == WorkerEventKind::Kill) ++kills;
    }
    EXPECT_EQ(spawns, stats.spawned);
    EXPECT_EQ(kills, 1u);
    EXPECT_GE(exits, 3u);  // the three mid-run deaths (+ final shutdown)
}

TEST(SandboxWorkerPool, RealSegfaultAndAllocationBombAreContained) {
    if (STC_UNDER_ASAN) {
        GTEST_SKIP() << "real SIGSEGV / RLIMIT_AS conflict with sanitizers";
    }
    PoolOptions options;
    options.workers = 2;
    options.limits.timeout_ms = 5000;
    options.limits.rlimit_as_mb = 512;

    const std::vector<std::string> payloads = {"ok:a", "segv", "alloc", "ok:b"};
    PoolStats stats;
    const auto results = run_pool(payloads, options, &stats);

    EXPECT_EQ(results[0].payload, "echo:ok:a");
    EXPECT_EQ(results[1].outcome(), "crash-signal:" + std::to_string(SIGSEGV));
    EXPECT_EQ(results[2].outcome(), "resource-limit");
    EXPECT_EQ(results[3].payload, "echo:ok:b");
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.resource_limits, 1u);
}

TEST(SandboxRunner, RespawnsAfterACrashAndKeepsServing) {
    SandboxLimits limits;
    limits.timeout_ms = 500;
    SandboxRunner runner(hostile_job, limits);

    EXPECT_EQ(runner.call("ok:1").payload, "echo:ok:1");
    EXPECT_EQ(runner.call("exit").outcome(), "worker-exit:3");
    EXPECT_EQ(runner.call("ok:2").payload, "echo:ok:2");
    EXPECT_EQ(runner.call("hang").outcome(), "timeout");
    EXPECT_EQ(runner.call("ok:3").payload, "echo:ok:3");
    EXPECT_GE(runner.stats().respawned, 2u);
}

// ------------------------------------------------------------------ codec

TEST(SandboxCodec, OutcomeRoundTripsAndTerminationIsAKill) {
    mutation::MutantOutcome outcome;
    outcome.fate = mutation::MutantFate::Killed;
    outcome.reason = oracle::KillReason::Assertion;
    outcome.hit_by_suite = true;
    outcome.killed_by_probe = true;
    const auto back = decode_outcome(encode_outcome(outcome));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fate, outcome.fate);
    EXPECT_EQ(back->reason, outcome.reason);
    EXPECT_TRUE(back->hit_by_suite);
    EXPECT_TRUE(back->killed_by_probe);

    EXPECT_FALSE(decode_outcome("not json").has_value());
    EXPECT_FALSE(decode_outcome("{\"fate\":\"killed\"}").has_value());

    const auto terminated = outcome_from_termination("crash-signal:11");
    EXPECT_EQ(terminated.fate, mutation::MutantFate::Killed);
    EXPECT_EQ(terminated.reason, oracle::KillReason::Crash);
    EXPECT_TRUE(terminated.hit_by_suite);
    EXPECT_EQ(terminated.sandbox, "crash-signal:11");
}

TEST(SandboxCodec, EveryKillReasonSurvivesTheOutcomeCodec) {
    // A reason the codec cannot ship silently downgrades an isolated
    // campaign's report (the frame decodes to nullopt → respawn churn),
    // so the whole enumeration — IllegalQuiescence included — must
    // round-trip bit-exactly.
    for (const oracle::KillReason reason : oracle::kAllKillReasons) {
        mutation::MutantOutcome outcome;
        outcome.fate = reason == oracle::KillReason::None
                           ? mutation::MutantFate::Alive
                           : mutation::MutantFate::Killed;
        outcome.reason = reason;
        outcome.hit_by_suite = true;
        const auto back = decode_outcome(encode_outcome(outcome));
        ASSERT_TRUE(back.has_value()) << oracle::to_string(reason);
        EXPECT_EQ(back->fate, outcome.fate) << oracle::to_string(reason);
        EXPECT_EQ(back->reason, reason) << oracle::to_string(reason);
    }
}

TEST(SandboxCodec, EveryVerdictSurvivesTheResultCodec) {
    // The fuzz replay channel ships raw TestResults; same exhaustive
    // contract for the verdict enumeration.
    for (const driver::Verdict verdict : driver::kAllVerdicts) {
        driver::TestResult result;
        result.case_id = "tc_7";
        result.verdict = verdict;
        result.failed_method = "m3";
        result.message = "obligation 'ledger.Record' silently absorbed";
        const auto back = decode_result(encode_result(result));
        ASSERT_TRUE(back.has_value()) << driver::to_string(verdict);
        EXPECT_EQ(back->verdict, verdict) << driver::to_string(verdict);
        EXPECT_EQ(back->case_id, "tc_7");
        EXPECT_EQ(back->failed_method, "m3");
        EXPECT_EQ(back->message, result.message);
    }
}

// ------------------------------------------------------ isolated campaign

class IsolatedCampaignTest : public ::testing::Test {
protected:
    IsolatedCampaignTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(stc::testing::counter_binding());
        suite_ = driver::DriverGenerator(spec_).generate();
        mutants_ = mutation::enumerate_mutants(
            stc::testing::counter_descriptors(), "Counter");
    }

    [[nodiscard]] campaign::CampaignResult run_campaign(
        campaign::CampaignOptions options) const {
        const campaign::CampaignScheduler scheduler(registry_,
                                                    std::move(options));
        return scheduler.run(suite_, mutants_, nullptr);
    }

    static void expect_same_outcomes(const mutation::MutationRun& a,
                                     const mutation::MutationRun& b) {
        ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
        for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
            EXPECT_EQ(a.outcomes[i].mutant, b.outcomes[i].mutant) << i;
            EXPECT_EQ(a.outcomes[i].fate, b.outcomes[i].fate) << i;
            EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
            EXPECT_EQ(a.outcomes[i].hit_by_suite, b.outcomes[i].hit_by_suite)
                << i;
            EXPECT_EQ(a.outcomes[i].killed_by_probe,
                      b.outcomes[i].killed_by_probe)
                << i;
        }
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestSuite suite_;
    std::vector<mutation::Mutant> mutants_;
};

TEST_F(IsolatedCampaignTest, BenignFatesMatchInProcessAtSeveralJobCounts) {
    campaign::CampaignOptions in_process;
    in_process.jobs = 2;
    const auto baseline = run_campaign(in_process);

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
        campaign::CampaignOptions isolated_options;
        isolated_options.jobs = jobs;
        isolated_options.isolate = true;
        isolated_options.sandbox.timeout_ms = 20000;
        const auto isolated = run_campaign(isolated_options);

        expect_same_outcomes(baseline.run, isolated.run);
        EXPECT_EQ(baseline.fingerprint, isolated.fingerprint);
        EXPECT_TRUE(isolated.run.baseline_clean);
        EXPECT_EQ(isolated.stats.executed, mutants_.size());
        for (const auto& outcome : isolated.run.outcomes) {
            EXPECT_EQ(outcome.sandbox, "") << outcome.mutant->id();
        }
        EXPECT_DOUBLE_EQ(baseline.run.score(), isolated.run.score());
    }
}

TEST_F(IsolatedCampaignTest, IsolationRejectsTheShrinker) {
    campaign::CampaignOptions options;
    options.isolate = true;
    options.shrink_corpus_dir = "/tmp/stc_isolate_shrink_corpus";
    options.spec = &spec_;
    EXPECT_THROW((void)run_campaign(options), ContractError);
}

// ------------------------------------------------------ hostile campaign

/// Scoped STC_HOSTILE_FAULTS=1 — the opt-in for REAL faults.
struct HostileFaultsScope {
    HostileFaultsScope() { ::setenv("STC_HOSTILE_FAULTS", "1", 1); }
    ~HostileFaultsScope() { ::unsetenv("STC_HOSTILE_FAULTS"); }
};

class HostileCampaignTest : public ::testing::Test {
protected:
    HostileCampaignTest() : spec_(stc::testing::hostile_spec()) {
        registry_.add(stc::testing::hostile_binding());
        suite_ = driver::DriverGenerator(spec_).generate();
        mutants_ = mutation::enumerate_mutants(
            stc::testing::hostile_descriptors(), "Hostile");
    }

    [[nodiscard]] campaign::CampaignOptions isolated_options() const {
        campaign::CampaignOptions options;
        options.jobs = 2;
        options.isolate = true;
        // Generous deadline: the Gobble allocation bomb needs a few
        // hundred ms of CPU to reach RLIMIT_AS, and on a single-core
        // box two workers share that CPU — the deadline must not fire
        // before the resource limit does.
        options.sandbox.timeout_ms = 2000;
        options.sandbox.rlimit_as_mb = 512;
        return options;
    }

    [[nodiscard]] campaign::CampaignResult run_campaign(
        campaign::CampaignOptions options) const {
        const campaign::CampaignScheduler scheduler(registry_,
                                                    std::move(options));
        return scheduler.run(suite_, mutants_, nullptr);
    }

    /// Assert the contract of every hostile mutant: triggering mutants
    /// (everything but the value-preserving RepReq.ZERO) are terminated
    /// by the sandbox with the kind their method provokes; ZERO mutants
    /// run to completion with no sandbox termination at all.
    static void expect_contained_faults(const mutation::MutationRun& run) {
        for (const auto& outcome : run.outcomes) {
            const std::string id = outcome.mutant->id();
            if (id.find(".ZERO") != std::string::npos) {
                EXPECT_EQ(outcome.sandbox, "") << id;
                continue;
            }
            SCOPED_TRACE(id);
            EXPECT_EQ(outcome.fate, mutation::MutantFate::Killed);
            EXPECT_EQ(outcome.reason, oracle::KillReason::Crash);
            if (id.find("::Segv@") != std::string::npos) {
                EXPECT_EQ(outcome.sandbox,
                          "crash-signal:" + std::to_string(SIGSEGV));
            } else if (id.find("::Hang@") != std::string::npos) {
                EXPECT_EQ(outcome.sandbox, "timeout");
            } else if (id.find("::Gobble@") != std::string::npos) {
                // The allocation bomb normally dies at RLIMIT_AS, but
                // on a CPU-starved box the wall-clock deadline can fire
                // while the hoard is still being zeroed.  Either kind
                // proves the sandbox contained it.
                EXPECT_TRUE(outcome.sandbox == "resource-limit" ||
                            outcome.sandbox == "timeout")
                    << "sandbox=" << outcome.sandbox;
            }
        }
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestSuite suite_;
    std::vector<mutation::Mutant> mutants_;
};

TEST_F(HostileCampaignTest, RealFaultsKillOnlyTheirWorker) {
    if (STC_UNDER_ASAN) {
        GTEST_SKIP() << "real SIGSEGV / RLIMIT_AS conflict with sanitizers";
    }
    const HostileFaultsScope hostile;
    const auto result = run_campaign(isolated_options());

    EXPECT_TRUE(result.run.baseline_clean);
    EXPECT_EQ(result.run.outcomes.size(), mutants_.size());
    expect_contained_faults(result.run);
    // 15 triggering mutants (3 methods x (BitNeg + 4 nonzero RepReq)),
    // each of which took down a persistent worker.  Respawn is lazy
    // (on next dispatch), so a worker whose death coincided with the
    // end of its queue is never replaced — at 2 jobs that forgives up
    // to two of the fifteen deaths.
    EXPECT_GE(result.stats.respawns, 13u);
}

TEST_F(HostileCampaignTest, SurvivesOrchestratorSigkillAndResumes) {
    if (STC_UNDER_ASAN) {
        GTEST_SKIP() << "real SIGSEGV / RLIMIT_AS conflict with sanitizers";
    }
    const std::string store = "/tmp/stc_sandbox_resume_store.jsonl";
    std::remove(store.c_str());

    const HostileFaultsScope hostile;
    auto options = isolated_options();
    options.store_path = store;

    // First generation: a child orchestrator that we SIGKILL mid-run —
    // the crash-surviving-campaign contract, exercised for real.
    const pid_t orchestrator = ::fork();
    ASSERT_GE(orchestrator, 0);
    if (orchestrator == 0) {
        try {
            (void)run_campaign(options);
        } catch (...) {
        }
        ::_exit(0);  // never exit(): parent-owned buffers are inherited
    }
    ::usleep(900 * 1000);  // long enough to finish some items, not all
    ::kill(orchestrator, SIGKILL);
    int status = 0;
    while (::waitpid(orchestrator, &status, 0) < 0 && errno == EINTR) {}

    // Second generation, in this process: resume from whatever the
    // killed orchestrator managed to persist, and finish the campaign.
    const auto resumed = run_campaign(options);
    EXPECT_EQ(resumed.stats.resumed + resumed.stats.executed, mutants_.size());
    EXPECT_GE(resumed.stats.resumed, 1u);
    EXPECT_LE(resumed.stats.executed, mutants_.size() - 1);
    expect_contained_faults(resumed.run);
}

}  // namespace
}  // namespace stc::sandbox
