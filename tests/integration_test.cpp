// Cross-module integration tests: the complete producer/consumer
// pipelines of §3.1 over the Product component (Figs. 1-3) and the MFC
// lists, including a compile-and-run check of generated driver source.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "product_component.h"
#include "stc/codegen/driver_codegen.h"
#include "stc/core/self_testable.h"
#include "stc/history/incremental.h"
#include "stc/mfc/component.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/report.h"
#include "stc/tspec/parser.h"
#include "test_paths.h"

namespace stc {
namespace {

// ------------------------------------------------------------ Product flow

class ProductPipeline : public ::testing::Test {
protected:
    ProductPipeline()
        : component_(examples::product_spec(), examples::product_binding()) {
        component_.set_completions(examples::product_completions(providers_));
        examples::StockDatabase::instance().clear();
    }

    ~ProductPipeline() override { examples::StockDatabase::instance().clear(); }

    examples::ProviderPool providers_;
    core::SelfTestableComponent component_;
};

TEST_F(ProductPipeline, TspecTextParsesAndValidates) {
    const auto spec = tspec::parse_tspec(examples::product_tspec_text());
    EXPECT_TRUE(spec.validate().empty());
    EXPECT_EQ(spec.class_name, "Product");
    EXPECT_EQ(spec.methods.size(), 11u);
    EXPECT_EQ(spec.nodes.size(), 11u);
    EXPECT_EQ(spec.edges.size(), 17u);
}

TEST_F(ProductPipeline, UseCasePathOfFig2IsARealTransaction) {
    const auto graph = component_.spec().build_tfm();
    const auto use_case = examples::product_use_case_path(graph);
    const auto all = graph.enumerate_transactions();
    EXPECT_NE(std::find(all.begin(), all.end(), use_case), all.end())
        << "the Fig. 2 scenario must be among the enumerated transactions";
}

TEST_F(ProductPipeline, FullSelfTestIsGreen) {
    const auto report = component_.self_test();
    EXPECT_TRUE(report.all_passed()) << report.summary();
    EXPECT_GT(report.suite.size(), 10u);
    EXPECT_GT(report.assertions_checked, 0u);
}

TEST_F(ProductPipeline, SelfTestAcrossSeedsAndPolicies) {
    for (std::uint64_t seed : {3ULL, 1979ULL}) {
        driver::GeneratorOptions options;
        options.seed = seed;
        EXPECT_TRUE(component_.self_test(options).all_passed()) << seed;

        options.value_policy = driver::ValuePolicy::Boundary;
        options.cases_per_transaction = 2;
        EXPECT_TRUE(component_.self_test(options).all_passed()) << seed;
    }
}

TEST_F(ProductPipeline, SummaryReportsModelAndCounts) {
    const auto report = component_.self_test();
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("self-test of Product"), std::string::npos);
    EXPECT_NE(summary.find("11 node(s)"), std::string::npos);
    EXPECT_NE(summary.find("failed:     0"), std::string::npos);
}

TEST_F(ProductPipeline, MismatchedBindingRejected) {
    EXPECT_THROW(core::SelfTestableComponent(examples::product_spec(),
                                             mfc::coblist_binding()),
                 SpecError);
}

TEST_F(ProductPipeline, BrokenComponentIsCaught) {
    // Consumer-side detection: a Product whose UpdateQty is wired to a
    // faulty implementation (stores q+1) must fail the self-test via the
    // assertion/output oracle.
    class BrokenProduct : public examples::Product {
    public:
        using examples::Product::Product;

        void BadUpdateQty(int q) {
            UpdateQty(q);
            // corrupt the observable state afterwards
            UpdatePrice(-1.0F);  // violates the class invariant (price >= 0)
        }
    };
    reflect::Binder<BrokenProduct> b("Product");
    b.ctor<>();
    b.method("UpdateQty", &BrokenProduct::BadUpdateQty);
    b.method("UpdateName", &examples::Product::UpdateName);
    b.method("UpdatePrice", &examples::Product::UpdatePrice);
    b.method("UpdateProv", &examples::Product::UpdateProv);
    b.method("ShowAttributes", &examples::Product::ShowAttributes);
    b.method("InsertProduct", &examples::Product::InsertProduct);
    b.custom("RemoveProduct", 0, [](BrokenProduct& p, const reflect::Args&) {
        return domain::Value::make_string(p.RemoveProduct() ? "removed" : "<absent>");
    });
    // Constructors with arity 4 and 1 from the healthy class.
    b.ctor<int, const char*, float, examples::Provider*>();
    b.ctor<const char*>();

    core::SelfTestableComponent broken(examples::product_spec(), b.take());
    broken.set_completions(examples::product_completions(providers_));
    const auto report = broken.self_test();
    EXPECT_FALSE(report.all_passed());
    EXPECT_GT(report.result.count(driver::Verdict::AssertionViolation), 0u);
    EXPECT_GT(report.assertions_violated, 0u);
}

// --------------------------------------------------- generated-driver flow

TEST_F(ProductPipeline, GeneratedDriverSourceCompilesAndRuns) {
    // End-to-end reproduction of the paper's actual tool output: generate
    // driver source, compile it against the component, execute it, and
    // check the Result.txt log.  Skipped when no compiler is reachable.
    if (std::system("c++ --version > /dev/null 2>&1") != 0) {
        GTEST_SKIP() << "no c++ compiler on PATH";
    }

    driver::GeneratorOptions options;
    options.enumeration.max_node_visits = 1;
    const auto suite = component_.generate_tests(options);

    codegen::CodegenOptions cg;
    cg.includes = {"product.h"};
    cg.usings = {"stc::examples"};
    cg.log_file = "itest_result.txt";
    const codegen::DriverCodegen generator(component_.spec(), cg);

    const std::string root(STC_SOURCE_DIR);

    const std::string driver_src = "/tmp/stc_itest_driver.cpp";
    {
        std::ofstream out(driver_src);
        out << generator.suite_source(suite);
        // The tester's completion of structured parameters (§3.4.1).
        out << "\nProvider* tester_supplied_Provider(int hint) {\n"
               "    static Provider providers[] = {{1, \"p1\"}, {2, \"p2\"}};\n"
               "    return &providers[hint % 2];\n"
               "}\n";
    }

    const std::string compile =
        "c++ -std=c++20 -I " + root + "/examples/product -I " + root +
        "/src/bit/include -I " + root + "/src/support/include " + driver_src + " " +
        root + "/examples/product/product.cpp " + root +
        "/src/bit/bit.cpp -o /tmp/stc_itest_driver > /tmp/stc_itest_cc.log 2>&1";
    ASSERT_EQ(std::system(compile.c_str()), 0) << "generated source failed to compile";

    ASSERT_EQ(std::system("cd /tmp && rm -f itest_result.txt && ./stc_itest_driver"),
              0);
    std::ifstream log("/tmp/itest_result.txt");
    ASSERT_TRUE(log.good());
    std::stringstream content;
    content << log.rdbuf();
    EXPECT_NE(content.str().find("TestCase TC0 OK!"), std::string::npos);
    EXPECT_NE(content.str().find("Product{"), std::string::npos);
}

// --------------------------------------------------------------- MFC flow

TEST(MfcPipeline, Table2And3ShapesHold) {
    // Miniature of the two experiments (the benches run them in full):
    // experiment 1 must score far higher than experiment 2.
    mfc::ElementPool pool;
    core::SelfTestableComponent derived(mfc::sortable_spec(), mfc::sortable_binding());
    derived.set_completions(mfc::make_completions(pool));

    const auto full = derived.generate_tests();
    const auto plan = derived.incremental_plan(full);
    ASSERT_GT(plan.reused_cases(), plan.new_cases() / 2);

    reflect::Registry registry;
    mfc::register_mfc(registry);
    const mutation::MutationEngine engine(registry);

    // Sampled mutants keep this test fast.
    auto sample = [](std::vector<mutation::Mutant> all, std::size_t stride) {
        std::vector<mutation::Mutant> out;
        for (std::size_t i = 0; i < all.size(); i += stride) out.push_back(all[i]);
        return out;
    };
    const auto expt1 = engine.run(
        full, sample(mutation::enumerate_mutants(mfc::descriptors(),
                                                 "CSortableObList"), 23), nullptr);
    const auto expt2 = engine.run(
        plan.incremental,
        sample(mutation::enumerate_mutants(mfc::descriptors(), "CObList"), 5),
        nullptr);
    ASSERT_TRUE(expt1.baseline_clean);
    ASSERT_TRUE(expt2.baseline_clean);
    EXPECT_GT(expt1.score(), expt2.score());
    EXPECT_GT(expt1.score(), 0.9);
    EXPECT_LT(expt2.score(), 0.95);
}

TEST(MfcPipeline, HistoryRoundTripsThroughDisk) {
    mfc::ElementPool pool;
    core::SelfTestableComponent derived(mfc::sortable_spec(), mfc::sortable_binding());
    derived.set_completions(mfc::make_completions(pool));
    const auto full = derived.generate_tests();
    const history::IncrementalPlanner planner(derived.spec());
    const auto saved = history::TestHistory::from_suite(full, &planner);

    std::stringstream buffer;
    saved.save(buffer);
    const auto loaded = history::TestHistory::load(buffer);
    ASSERT_EQ(loaded.entries().size(), full.size());

    // The reuse accounting derived from the history matches the planner.
    std::size_t reused = 0;
    for (const auto& e : loaded.entries()) {
        reused += e.decision == history::ReuseDecision::ReusedNotRerun ? 1 : 0;
    }
    EXPECT_EQ(reused, planner.plan(full).reused_cases());
}

}  // namespace
}  // namespace stc
