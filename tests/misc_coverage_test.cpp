// Focused tests for small helpers not centrally exercised elsewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stc/domain/value.h"
#include "stc/interclass/system_driver.h"
#include "stc/support/rng.h"
#include "stc/support/strings.h"
#include "stc/support/table.h"
#include "stc/tfm/graph.h"

namespace stc {
namespace {

TEST(MiscStrings, PercentHandlesNan) {
    EXPECT_EQ(support::percent(std::nan("")), "n/a");
}

TEST(MiscRng, ChanceRespectsProbabilityEnds) {
    support::Pcg32 rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    // A fair-ish coin lands both ways over 200 trials.
    int heads = 0;
    for (int i = 0; i < 200; ++i) heads += rng.chance(0.5) ? 1 : 0;
    EXPECT_GT(heads, 50);
    EXPECT_LT(heads, 150);
}

TEST(MiscTable, AlignmentOverride) {
    support::TextTable t({"a", "b"});
    t.set_align(1, support::Align::Left);
    t.add_row({"x", "1"});
    t.add_row({"y", "22"});
    std::ostringstream os;
    t.render(os);
    // Left alignment pads on the right: "| 1  |" not "|  1 |".
    EXPECT_NE(os.str().find("| 1  |"), std::string::npos);
}

TEST(MiscValue, DisplayForms) {
    using domain::Value;
    EXPECT_EQ(Value::make_string("plain").to_display(), "plain");
    EXPECT_EQ(Value::make_pointer(nullptr, "P").to_display(), "<null P*>");
    int x = 0;
    EXPECT_NE(Value::make_pointer(&x, "P").to_display().find("<P* "),
              std::string::npos);
    EXPECT_EQ(Value::make_object(&x, "Obj").to_display(), "<object Obj>");
    EXPECT_EQ(Value{}.to_display(), "/*empty*/");
}

TEST(MiscValue, SourceFormKeepsRealMarker) {
    EXPECT_EQ(domain::Value::make_real(0.5).to_source(), "0.5");
    EXPECT_EQ(domain::Value::make_real(1e20).to_source(), "1e+20");
    EXPECT_EQ(domain::Value::make_real(3.0).to_source(), "3.0");
}

TEST(MiscSystemArg, RenderForms) {
    interclass::SystemArg role;
    role.role_ref = "audit";
    EXPECT_EQ(role.render(), "@audit");
    interclass::SystemArg value;
    value.value = domain::Value::make_int(7);
    EXPECT_EQ(value.render(), "7");

    interclass::SystemMethodCall call;
    call.role = "wallet";
    call.method_name = "Attach";
    call.arguments = {role};
    EXPECT_EQ(call.render(), "wallet.Attach(@audit)");
}

TEST(MiscTfm, DiagnosticNamesAreStable) {
    EXPECT_STREQ(to_string(tfm::DiagnosticKind::NoBirthNode), "no-birth-node");
    EXPECT_STREQ(to_string(tfm::DiagnosticKind::DeadEndMismatch),
                 "cannot-reach-death");
    EXPECT_STREQ(to_string(tfm::DiagnosticKind::DuplicateEdge), "duplicate-edge");
}

TEST(MiscTfm, EmptyGraphBehaves) {
    tfm::Graph g;
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_TRUE(g.enumerate_transactions().empty());
    const auto diagnostics = g.diagnose();
    // Only "no birth node" applies to an empty graph.
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].kind, tfm::DiagnosticKind::NoBirthNode);
}

TEST(MiscTfm, DotWithoutHighlightHasNoRed) {
    tfm::Graph g;
    g.add_node(tfm::Node{"n0", true, {"m"}});
    const std::string dot = g.to_dot();
    EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace stc
