#include <gtest/gtest.h>

#include <sstream>

#include "stc/driver/generator.h"
#include "stc/history/incremental.h"
#include "stc/support/error.h"
#include "stc/tspec/builder.h"

namespace stc::history {
namespace {

using tspec::MethodCategory;

/// Subclass-style spec: inherited f/g, redefined h, new s.
tspec::ComponentSpec subclass_spec() {
    tspec::SpecBuilder b("Child");
    b.superclass("Parent");
    b.method("m1", "Child", MethodCategory::Constructor);
    b.method("m2", "~Child", MethodCategory::Destructor);
    b.method("m3", "f", MethodCategory::Inherited);
    b.method("m4", "g", MethodCategory::Inherited);
    b.method("m5", "h", MethodCategory::Redefined);
    b.method("m6", "s", MethodCategory::New);

    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});       // f
    b.node("n3", false, {"m4"});       // g
    b.node("n4", false, {"m5"});       // h (redefined)
    b.node("n5", false, {"m6"});       // s (new)
    b.node("n6", false, {"m2"});
    b.edge("n1", "n2").edge("n1", "n4");
    b.edge("n2", "n3").edge("n2", "n5");
    b.edge("n3", "n6");
    b.edge("n4", "n6");
    b.edge("n5", "n6");
    return b.build();
}

tspec::ComponentSpec parent_spec() {
    tspec::SpecBuilder b("Parent");
    b.method("m1", "Parent", MethodCategory::Constructor);
    b.method("m2", "~Parent", MethodCategory::Destructor);
    b.method("m3", "f", MethodCategory::New);
    b.method("m4", "g", MethodCategory::New);
    b.method("m5", "h", MethodCategory::New).param_range("x", 0, 5);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m2"});
    b.edge("n1", "n2");
    return b.build();
}

// ------------------------------------------------------------ classification

TEST(Classification, InheritedOnlyTransactionIsReused) {
    const auto spec = subclass_spec();
    const IncrementalPlanner planner(spec);
    const auto c = planner.classify({"m1", "m3", "m4", "m2"});
    EXPECT_EQ(c.decision, ReuseDecision::ReusedNotRerun);
    EXPECT_TRUE(c.triggering_methods.empty());
}

TEST(Classification, NewMethodForcesRetest) {
    const IncrementalPlanner planner(subclass_spec());
    const auto c = planner.classify({"m1", "m3", "m6", "m2"});
    EXPECT_EQ(c.decision, ReuseDecision::Retest);
    EXPECT_EQ(c.triggering_methods, (std::vector<std::string>{"m6"}));
}

TEST(Classification, RedefinedMethodForcesRetest) {
    const IncrementalPlanner planner(subclass_spec());
    const auto c = planner.classify({"m1", "m5", "m2"});
    EXPECT_EQ(c.decision, ReuseDecision::Retest);
    EXPECT_EQ(c.triggering_methods, (std::vector<std::string>{"m5"}));
}

TEST(Classification, ConstructorAndDestructorDoNotTrigger) {
    // ctor/dtor are excluded from the reuse decision (§3.4.2), even
    // though the subclass necessarily redefines them.
    const IncrementalPlanner planner(subclass_spec());
    const auto c = planner.classify({"m1", "m2"});
    EXPECT_EQ(c.decision, ReuseDecision::ReusedNotRerun);
}

TEST(Classification, UnknownMethodIdThrows) {
    const IncrementalPlanner planner(subclass_spec());
    EXPECT_THROW((void)planner.classify({"mZ"}), SpecError);
}

// ------------------------------------------------------------------- plan

TEST(Plan, PartitionsSuiteByDecision) {
    const auto spec = subclass_spec();
    const driver::TestSuite full = driver::DriverGenerator(spec).generate();
    const IncrementalPlanner planner(spec);
    const IncrementalPlan plan = planner.plan(full);

    EXPECT_EQ(plan.new_cases() + plan.reused_cases(), full.size());
    EXPECT_GT(plan.new_cases(), 0u);
    EXPECT_GT(plan.reused_cases(), 0u);

    // Every retained case contains a new/redefined method; every reused
    // case does not.
    for (const auto& tc : plan.incremental.cases) {
        bool has_trigger = false;
        for (const auto& call : tc.calls) {
            has_trigger = has_trigger || call.method_id == "m5" ||
                          call.method_id == "m6";
        }
        EXPECT_TRUE(has_trigger) << tc.transaction_text;
    }
    for (const auto& tc : plan.reused) {
        for (const auto& call : tc.calls) {
            EXPECT_NE(call.method_id, "m5");
            EXPECT_NE(call.method_id, "m6");
        }
    }
}

TEST(Plan, PreservesSuiteMetadata) {
    const auto spec = subclass_spec();
    const driver::TestSuite full = driver::DriverGenerator(spec).generate();
    const auto plan = IncrementalPlanner(spec).plan(full);
    EXPECT_EQ(plan.incremental.class_name, full.class_name);
    EXPECT_EQ(plan.incremental.seed, full.seed);
    EXPECT_EQ(plan.incremental.model_nodes, full.model_nodes);
}

// ---------------------------------------------------------------- adoption

TEST(Adoption, RewritesCtorDtorAndKeepsInheritedCalls) {
    // Parent: f/g/h are its own methods; its suite gets adopted by a
    // child where all three are Inherited.
    tspec::SpecBuilder pb("Parent");
    pb.method("m1", "Parent", MethodCategory::Constructor);
    pb.method("m2", "~Parent", MethodCategory::Destructor);
    pb.method("m3", "f", MethodCategory::New).param_range("x", 0, 5);
    pb.node("n1", true, {"m1"});
    pb.node("n2", false, {"m3"});
    pb.node("n3", false, {"m2"});
    pb.edge("n1", "n2").edge("n2", "n3");
    const auto parent_suite = driver::DriverGenerator(pb.build()).generate();

    tspec::SpecBuilder cb("Child");
    cb.superclass("Parent");
    cb.method("c1", "Child", MethodCategory::Constructor);
    cb.method("c2", "~Child", MethodCategory::Destructor);
    cb.method("c3", "f", MethodCategory::Inherited).param_range("x", 0, 5);
    cb.node("n1", true, {"c1"});
    cb.node("n2", false, {"c2"});
    cb.edge("n1", "n2");
    const auto child_spec = cb.build();

    const auto adopted = adopt_parent_suite(parent_suite, child_spec);
    ASSERT_EQ(adopted.size(), parent_suite.size());
    EXPECT_EQ(adopted.class_name, "Child");
    for (const auto& tc : adopted.cases) {
        EXPECT_EQ(tc.calls.front().method_name, "Child");
        EXPECT_EQ(tc.calls.front().method_id, "c1");
        EXPECT_EQ(tc.calls.back().method_name, "~Child");
        for (const auto& call : tc.calls) {
            if (!call.is_constructor && !call.is_destructor) {
                EXPECT_EQ(call.method_id, "c3");
            }
        }
    }
}

TEST(Adoption, DropsCasesTouchingNonInheritedMethods) {
    tspec::SpecBuilder pb("Parent");
    pb.method("m1", "Parent", MethodCategory::Constructor);
    pb.method("m2", "~Parent", MethodCategory::Destructor);
    pb.method("m3", "f", MethodCategory::New);
    pb.method("m4", "g", MethodCategory::New);
    pb.node("n1", true, {"m1"});
    pb.node("n2", false, {"m3"});
    pb.node("n3", false, {"m4"});
    pb.node("n4", false, {"m2"});
    pb.edge("n1", "n2").edge("n1", "n3").edge("n2", "n4").edge("n3", "n4");
    const auto parent_suite = driver::DriverGenerator(pb.build()).generate();

    // Child redefines g: transactions through g are not adoptable.
    tspec::SpecBuilder cb("Child");
    cb.superclass("Parent");
    cb.method("c1", "Child", MethodCategory::Constructor);
    cb.method("c2", "~Child", MethodCategory::Destructor);
    cb.method("c3", "f", MethodCategory::Inherited);
    cb.method("c4", "g", MethodCategory::Redefined);
    cb.node("n1", true, {"c1"});
    cb.node("n2", false, {"c2"});
    cb.edge("n1", "n2");
    const auto adopted = adopt_parent_suite(parent_suite, cb.build());
    EXPECT_LT(adopted.size(), parent_suite.size());
    EXPECT_GT(adopted.size(), 0u);
    for (const auto& tc : adopted.cases) {
        for (const auto& call : tc.calls) EXPECT_NE(call.method_name, "g");
    }
}

// ---------------------------------------------------------------- hierarchy

TEST(Hierarchy, ConformingChildPasses) {
    tspec::SpecBuilder b("Child");
    b.superclass("Parent");
    b.method("m1", "Child", MethodCategory::Constructor);
    b.method("m2", "~Child", MethodCategory::Destructor);
    b.method("m3", "f", MethodCategory::Inherited);
    b.method("m5", "h", MethodCategory::Redefined).param_range("x", 0, 5);
    b.method("m6", "s", MethodCategory::New);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m2"});
    b.edge("n1", "n2");
    EXPECT_TRUE(validate_hierarchy(parent_spec(), b.build()).empty());
}

TEST(Hierarchy, DetectsWrongSuperclass) {
    tspec::SpecBuilder b("Child");
    b.superclass("SomethingElse");
    b.method("m1", "Child", MethodCategory::Constructor);
    b.node("n1", true, {"m1"});
    const auto problems = validate_hierarchy(parent_spec(), b.build_unchecked());
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].message.find("single inheritance"), std::string::npos);
}

TEST(Hierarchy, DetectsPhantomInheritance) {
    tspec::SpecBuilder b("Child");
    b.superclass("Parent");
    b.method("m3", "not_in_parent", MethodCategory::Inherited);
    const auto problems = validate_hierarchy(parent_spec(), b.build_unchecked());
    EXPECT_FALSE(problems.empty());
}

TEST(Hierarchy, DetectsSignatureChangingRedefinition) {
    // Constraint (ii) of Harrold et al.: a redefinition keeps the
    // parent's argument list.
    tspec::SpecBuilder b("Child");
    b.superclass("Parent");
    b.method("m5", "h", MethodCategory::Redefined);  // parent's h takes 1 arg
    const auto problems = validate_hierarchy(parent_spec(), b.build_unchecked());
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].message.find("signature"), std::string::npos);
}

TEST(Hierarchy, DetectsFalseNew) {
    tspec::SpecBuilder b("Child");
    b.superclass("Parent");
    b.method("m9", "f", MethodCategory::New);  // parent already has f
    const auto problems = validate_hierarchy(parent_spec(), b.build_unchecked());
    EXPECT_FALSE(problems.empty());
}

// ------------------------------------------------------------ test history

TEST(History, FromSuiteRecordsTransactions) {
    const auto spec = subclass_spec();
    const driver::TestSuite full = driver::DriverGenerator(spec).generate();
    const IncrementalPlanner planner(spec);
    const TestHistory history = TestHistory::from_suite(full, &planner);
    EXPECT_EQ(history.entries().size(), full.size());
    const HistoryEntry* first = history.find(full.cases[0].id);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->transaction_text, full.cases[0].transaction_text);
    EXPECT_FALSE(first->method_ids.empty());
}

TEST(History, SaveLoadRoundTrip) {
    const auto spec = subclass_spec();
    const driver::TestSuite full = driver::DriverGenerator(spec).generate();
    const IncrementalPlanner planner(spec);
    const TestHistory original = TestHistory::from_suite(full, &planner);

    std::stringstream buffer;
    original.save(buffer);
    const TestHistory loaded = TestHistory::load(buffer);

    ASSERT_EQ(loaded.entries().size(), original.entries().size());
    for (std::size_t i = 0; i < original.entries().size(); ++i) {
        EXPECT_EQ(loaded.entries()[i].case_id, original.entries()[i].case_id);
        EXPECT_EQ(loaded.entries()[i].transaction_text,
                  original.entries()[i].transaction_text);
        EXPECT_EQ(loaded.entries()[i].method_ids, original.entries()[i].method_ids);
        EXPECT_EQ(loaded.entries()[i].decision, original.entries()[i].decision);
    }
}

TEST(History, LoadRejectsMalformedLines) {
    std::stringstream bad("only|three|fields\n");
    EXPECT_THROW((void)TestHistory::load(bad), Error);
    std::stringstream bad_decision("TC0|n1|m1|banana\n");
    EXPECT_THROW((void)TestHistory::load(bad_decision), Error);
    std::stringstream empty("\n   \n");
    EXPECT_EQ(TestHistory::load(empty).entries().size(), 0u);
}

}  // namespace
}  // namespace stc::history
