#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"

namespace stc::bit {
namespace {

class BitTest : public ::testing::Test {
protected:
    void SetUp() override { AssertionStats::instance().reset(); }
    void TearDown() override { AssertionStats::instance().reset(); }
};

// ---------------------------------------------------------------- test mode

TEST_F(BitTest, AssertionsAreInertOutsideTestMode) {
    // BIT access control: outside test mode the macros must not fire —
    // the paper gates all BIT services behind the test-mode switch.
    ASSERT_FALSE(TestMode::enabled());
    EXPECT_NO_THROW(STC_CLASS_INVARIANT(false));
    EXPECT_NO_THROW(STC_PRECONDITION(false));
    EXPECT_NO_THROW(STC_POSTCONDITION(false));
    EXPECT_EQ(AssertionStats::instance().total_checked(), 0u);
}

TEST_F(BitTest, TestModeGuardIsScopedAndNestable) {
    EXPECT_FALSE(TestMode::enabled());
    {
        TestModeGuard outer;
        EXPECT_TRUE(TestMode::enabled());
        {
            TestModeGuard inner;
            EXPECT_TRUE(TestMode::enabled());
        }
        EXPECT_TRUE(TestMode::enabled());
    }
    EXPECT_FALSE(TestMode::enabled());
}

// --------------------------------------------------------------- assertions

TEST_F(BitTest, ViolationThrowsTypedException) {
    TestModeGuard guard;
    EXPECT_THROW(STC_CLASS_INVARIANT(false), AssertionViolation);
    EXPECT_THROW(STC_PRECONDITION(false), AssertionViolation);
    EXPECT_THROW(STC_POSTCONDITION(false), AssertionViolation);
    EXPECT_NO_THROW(STC_CLASS_INVARIANT(true));
}

TEST_F(BitTest, ViolationCarriesKindExpressionAndLocation) {
    TestModeGuard guard;
    try {
        STC_PRECONDITION(1 > 2);
        FAIL();
    } catch (const AssertionViolation& v) {
        EXPECT_EQ(v.assertion_kind(), AssertionKind::Precondition);
        EXPECT_EQ(v.expression(), "1 > 2");
        EXPECT_NE(v.file().find("bit_test.cpp"), std::string::npos);
        EXPECT_GT(v.line(), 0);
        // Fig. 5 wording survives in the message.
        EXPECT_NE(std::string(v.what()).find("Pre-condition is violated!"),
                  std::string::npos);
    }
}

TEST_F(BitTest, StatsCountChecksAndViolationsPerKind) {
    TestModeGuard guard;
    STC_CLASS_INVARIANT(true);
    STC_CLASS_INVARIANT(true);
    try {
        STC_CLASS_INVARIANT(false);
    } catch (const AssertionViolation&) {
    }
    STC_POSTCONDITION(true);

    auto& stats = AssertionStats::instance();
    EXPECT_EQ(stats.counters(AssertionKind::Invariant).checked, 3u);
    EXPECT_EQ(stats.counters(AssertionKind::Invariant).violated, 1u);
    EXPECT_EQ(stats.counters(AssertionKind::Postcondition).checked, 1u);
    EXPECT_EQ(stats.counters(AssertionKind::Precondition).checked, 0u);
    EXPECT_EQ(stats.total_checked(), 4u);
    EXPECT_EQ(stats.total_violated(), 1u);
}

TEST_F(BitTest, StatsAreThreadLocalButProcessTotalsAggregate) {
    // The concurrency contract documented on AssertionStats: per-thread
    // counters never observe another worker's checks, while the relaxed
    // process-wide totals see everything and survive reset().
    const auto base = AssertionStats::process_totals();

    std::thread worker([] {
        TestModeGuard guard;
        STC_CLASS_INVARIANT(true);
        STC_PRECONDITION(true);
        try {
            STC_POSTCONDITION(false);
        } catch (const AssertionViolation&) {
        }
        // The worker sees only its own thread-local counts...
        EXPECT_EQ(AssertionStats::instance().total_checked(), 3u);
        EXPECT_EQ(AssertionStats::instance().total_violated(), 1u);
        AssertionStats::instance().reset();
    });
    worker.join();

    // ...this thread's counters are untouched by the worker's activity,
    EXPECT_EQ(AssertionStats::instance().total_checked(), 0u);
    // ...and the process totals advanced despite the worker's reset().
    const auto after = AssertionStats::process_totals();
    EXPECT_EQ(after.checked - base.checked, 3u);
    EXPECT_EQ(after.violated - base.violated, 1u);
}

TEST_F(BitTest, SuppressionGuardDisablesChecking) {
    TestModeGuard guard;
    {
        AssertionSuppressGuard off;
        EXPECT_NO_THROW(STC_CLASS_INVARIANT(false));
    }
    EXPECT_THROW(STC_CLASS_INVARIANT(false), AssertionViolation);
}

TEST_F(BitTest, StatsResetPreservesSuppression) {
    TestModeGuard guard;
    AssertionSuppressGuard off;
    AssertionStats::instance().reset();
    EXPECT_TRUE(AssertionStats::instance().suppressed());
    EXPECT_NO_THROW(STC_CLASS_INVARIANT(false));
}

TEST_F(BitTest, PredicateEvaluatedOnlyWhenActive) {
    int evaluations = 0;
    auto probe = [&evaluations] {
        ++evaluations;
        return true;
    };
    STC_PRECONDITION(probe());  // outside test mode: not evaluated
    EXPECT_EQ(evaluations, 0);
    {
        TestModeGuard guard;
        STC_PRECONDITION(probe());
        EXPECT_EQ(evaluations, 1);
    }
}

// ------------------------------------------------------------- BuiltInTest

class Probe final : public BuiltInTest {
public:
    void InvariantTest() const override { STC_CLASS_INVARIANT(healthy); }
    void Reporter(std::ostream& os) const override { os << "Probe{" << healthy << "}"; }
    bool healthy = true;
};

TEST_F(BitTest, ReportConvenienceUsesReporter) {
    Probe probe;
    EXPECT_EQ(probe.report(), "Probe{1}");
    probe.healthy = false;
    EXPECT_EQ(probe.report(), "Probe{0}");
}

TEST_F(BitTest, InvariantTestIntegrates) {
    Probe probe;
    TestModeGuard guard;
    EXPECT_NO_THROW(probe.InvariantTest());
    probe.healthy = false;
    EXPECT_THROW(probe.InvariantTest(), AssertionViolation);
}

TEST_F(BitTest, PaperMacroAliasesWork) {
// Verified in an inner scope so the aliases don't leak into other tests.
#include "stc/bit/paper_macros.h"
    TestModeGuard guard;
    EXPECT_NO_THROW(ClassInvariant(true));
    EXPECT_THROW(ClassInvariant(false), AssertionViolation);
    EXPECT_THROW(PreCondition(1 > 2), AssertionViolation);
    EXPECT_THROW(PostCondition(false), AssertionViolation);
    try {
        ClassInvariant(false);
    } catch (const AssertionViolation& v) {
        // Fig. 5 wording.
        EXPECT_NE(std::string(v.what()).find("Invariant is violated!"),
                  std::string::npos);
    }
#undef ClassInvariant
#undef PreCondition
#undef PostCondition
}

TEST_F(BitTest, KindNames) {
    EXPECT_STREQ(to_string(AssertionKind::Invariant), "Invariant");
    EXPECT_STREQ(to_string(AssertionKind::Precondition), "Pre-condition");
    EXPECT_STREQ(to_string(AssertionKind::Postcondition), "Post-condition");
}

}  // namespace
}  // namespace stc::bit
