// A deliberately dangerous self-testable component for sandbox tests:
// each method carries one mutation site whose active mutants trigger a
// REAL fault — a null-pointer write (SIGSEGV), a wall-clock busy loop,
// or an allocation bomb — the fault classes the stc::sandbox subsystem
// exists to survive.
//
// The real faults are double-gated:
//   - they only fire while a mutant is active (the unmutated baseline,
//     which the campaign scheduler always runs in the orchestrator
//     process, is completely benign), and
//   - they only fire when STC_HOSTILE_FAULTS=1 is in the environment;
//     otherwise the method throws instead, which any in-process run
//     survives as an ordinary uncaught-exception kill.
// Tests set the variable only around isolated (forked) campaigns.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "stc/bit/built_in_test.h"
#include "stc/mutation/descriptor.h"
#include "stc/mutation/frame.h"
#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc::testing {

/// True when the environment opts into genuine faults.
inline bool hostile_faults_enabled() {
    const char* v = std::getenv("STC_HOSTILE_FAULTS");
    return v != nullptr && v[0] == '1';
}

/// Hostile component.  Each instrumented method has exactly one local
/// (`sel`, initially 0) and one site on it, so the mutant population
/// per method is hand-countable: BitNeg 1 + RepReq 5 = 6 (the RepReq
/// ZERO mutant is value-preserving and stays alive/equivalent; every
/// other mutant makes `sel` nonzero and pulls the trigger).
class Hostile : public bit::BuiltInTest {
public:
    Hostile() = default;

    static const mutation::MethodDescriptor& segv_descriptor();
    static const mutation::MethodDescriptor& hang_descriptor();
    static const mutation::MethodDescriptor& gobble_descriptor();

    /// Mutant active (+ env gate): write through a null pointer.
    void Segv();
    /// Mutant active (+ env gate): burn wall-clock far past any sane
    /// sandbox deadline (bounded at ~120 s so a forgotten gate cannot
    /// wedge a build farm forever).
    void Hang();
    /// Mutant active (+ env gate): allocate-and-touch until RLIMIT_AS
    /// makes `new` fail (the sandbox new-handler then _exits with the
    /// reserved resource-limit code).  Bounded at 16 GiB of attempts.
    void Gobble();

    [[nodiscard]] int Calls() const { return calls_; }

    void InvariantTest() const override {
        STC_CLASS_INVARIANT(calls_ >= 0);
    }

    void Reporter(std::ostream& os) const override {
        os << "Hostile{calls=" << calls_ << "}";
    }

private:
    [[noreturn]] static void throw_gated(const char* what) {
        throw std::runtime_error(std::string("hostile fault (gated): ") + what);
    }

    int calls_ = 0;
};

inline const mutation::MethodDescriptor& Hostile::segv_descriptor() {
    static const mutation::MethodDescriptor d =
        mutation::MethodDescriptor::Builder("Hostile", "Segv")
            .local("sel", mutation::int_type())
            .site("sel", "fault selector")  // s0
            .build();
    return d;
}

inline const mutation::MethodDescriptor& Hostile::hang_descriptor() {
    static const mutation::MethodDescriptor d =
        mutation::MethodDescriptor::Builder("Hostile", "Hang")
            .local("sel", mutation::int_type())
            .site("sel", "fault selector")  // s0
            .build();
    return d;
}

inline const mutation::MethodDescriptor& Hostile::gobble_descriptor() {
    static const mutation::MethodDescriptor d =
        mutation::MethodDescriptor::Builder("Hostile", "Gobble")
            .local("sel", mutation::int_type())
            .site("sel", "fault selector")  // s0
            .build();
    return d;
}

inline void Hostile::Segv() {
    mutation::MutFrame frame(segv_descriptor());
    int sel = 0;
    frame.bind("sel", &sel);
    sel = frame.use(0, sel);
    ++calls_;
    if (sel == 0) return;  // baseline / value-preserving mutant
    if (!hostile_faults_enabled()) throw_gated("segv");
    volatile int* null = nullptr;
    *null = sel;  // real SIGSEGV
}

inline void Hostile::Hang() {
    mutation::MutFrame frame(hang_descriptor());
    int sel = 0;
    frame.bind("sel", &sel);
    sel = frame.use(0, sel);
    ++calls_;
    if (sel == 0) return;
    if (!hostile_faults_enabled()) throw_gated("hang");
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    volatile std::uint64_t spin = 0;
    while (std::chrono::steady_clock::now() < give_up) spin = spin + 1;
    throw_gated("hang outlived its 120s bound");
}

inline void Hostile::Gobble() {
    mutation::MutFrame frame(gobble_descriptor());
    int sel = 0;
    frame.bind("sel", &sel);
    sel = frame.use(0, sel);
    ++calls_;
    if (sel == 0) return;
    if (!hostile_faults_enabled()) throw_gated("gobble");
    constexpr std::size_t kChunk = 8u << 20;  // 8 MiB
    constexpr std::size_t kMaxChunks = 2048;  // 16 GiB bound
    std::vector<std::unique_ptr<char[]>> hoard;
    for (std::size_t i = 0; i < kMaxChunks; ++i) {
        // Under RLIMIT_AS this `new` soon fails; the sandbox's
        // new-handler _exits the child before bad_alloc can be thrown.
        hoard.push_back(std::make_unique<char[]>(kChunk));
        for (std::size_t off = 0; off < kChunk; off += 4096) {
            hoard.back()[off] = static_cast<char>(off);
        }
    }
    throw_gated("gobble hit its 16GiB bound without an allocation failure");
}

/// t-spec: ctor -> Segv -> Hang -> Gobble -> Calls -> death.  One
/// linear path, so every generated transaction exercises all three
/// hostile methods.
inline tspec::ComponentSpec hostile_spec() {
    tspec::SpecBuilder b("Hostile");
    b.attr_range("calls_", 0, 1000);
    b.method("m1", "Hostile", tspec::MethodCategory::Constructor);
    b.method("m2", "~Hostile", tspec::MethodCategory::Destructor);
    b.method("m3", "Segv", tspec::MethodCategory::New);
    b.method("m4", "Hang", tspec::MethodCategory::New);
    b.method("m5", "Gobble", tspec::MethodCategory::New);
    b.method("m6", "Calls", tspec::MethodCategory::New, "int");

    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m4"});
    b.node("n4", false, {"m5"});
    b.node("n5", false, {"m6"});
    b.node("n6", false, {"m2"});
    b.edge("n1", "n2");
    b.edge("n2", "n3");
    b.edge("n3", "n4");
    b.edge("n4", "n5");
    b.edge("n5", "n6");
    return b.build();
}

inline reflect::ClassBinding hostile_binding() {
    reflect::Binder<Hostile> b("Hostile");
    b.ctor<>();
    b.method("Segv", &Hostile::Segv);
    b.method("Hang", &Hostile::Hang);
    b.method("Gobble", &Hostile::Gobble);
    b.method("Calls", &Hostile::Calls);
    return b.take();
}

inline const mutation::DescriptorRegistry& hostile_descriptors() {
    static const mutation::DescriptorRegistry registry = [] {
        mutation::DescriptorRegistry r;
        r.add(&Hostile::segv_descriptor());
        r.add(&Hostile::hang_descriptor());
        r.add(&Hostile::gobble_descriptor());
        return r;
    }();
    return registry;
}

}  // namespace stc::testing
