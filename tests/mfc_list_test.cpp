#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/mfc/coblist.h"
#include "stc/mfc/sortable.h"
#include "stc/mfc/component.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"
#include "stc/support/rng.h"

namespace stc::mfc {
namespace {

/// Elements owned by the fixture; lists never own their elements.
class ListTest : public ::testing::Test {
protected:
    CInt* element(int value) {
        pool_.push_back(std::make_unique<CInt>(value));
        return pool_.back().get();
    }

    /// Values along the list, head to tail.
    static std::vector<int> values_of(const CObList& list) {
        std::vector<int> out;
        for (POSITION p = list.GetHeadPosition(); p != nullptr;) {
            out.push_back(dynamic_cast<CInt*>(list.GetNext(p))->value());
        }
        return out;
    }

    std::vector<std::unique_ptr<CInt>> pool_;
};

// --------------------------------------------------------------- basic API

TEST_F(ListTest, StartsEmpty) {
    CObList list;
    EXPECT_TRUE(list.IsEmpty());
    EXPECT_EQ(list.GetCount(), 0);
    EXPECT_EQ(list.GetHeadPosition(), nullptr);
    EXPECT_EQ(list.GetTailPosition(), nullptr);
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, AddHeadPrepends) {
    CObList list;
    list.AddHead(element(1));
    list.AddHead(element(2));
    list.AddHead(element(3));
    EXPECT_EQ(values_of(list), (std::vector<int>{3, 2, 1}));
    EXPECT_EQ(list.GetCount(), 3);
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, AddTailAppends) {
    CObList list;
    list.AddTail(element(1));
    list.AddTail(element(2));
    EXPECT_EQ(values_of(list), (std::vector<int>{1, 2}));
    EXPECT_EQ(dynamic_cast<CInt*>(list.GetHead())->value(), 1);
    EXPECT_EQ(dynamic_cast<CInt*>(list.GetTail())->value(), 2);
}

TEST_F(ListTest, RemoveHeadAndTailReturnElements) {
    CObList list;
    list.AddTail(element(1));
    list.AddTail(element(2));
    list.AddTail(element(3));
    EXPECT_EQ(dynamic_cast<CInt*>(list.RemoveHead())->value(), 1);
    EXPECT_EQ(dynamic_cast<CInt*>(list.RemoveTail())->value(), 3);
    EXPECT_EQ(values_of(list), (std::vector<int>{2}));
    EXPECT_EQ(dynamic_cast<CInt*>(list.RemoveHead())->value(), 2);
    EXPECT_TRUE(list.IsEmpty());
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, RemoveAtEveryPosition) {
    for (int victim = 0; victim < 4; ++victim) {
        CObList list;
        for (int i = 0; i < 4; ++i) list.AddTail(element(i));
        list.RemoveAt(list.FindIndex(victim));
        std::vector<int> expected;
        for (int i = 0; i < 4; ++i) {
            if (i != victim) expected.push_back(i);
        }
        EXPECT_EQ(values_of(list), expected) << "victim " << victim;
        EXPECT_TRUE(list.DeepValidState());
    }
}

TEST_F(ListTest, RemoveAtSingleElement) {
    CObList list;
    list.AddHead(element(9));
    list.RemoveAt(list.GetHeadPosition());
    EXPECT_TRUE(list.IsEmpty());
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, NodeRecyclingThroughFreeList) {
    CObList list;
    const POSITION first = list.AddHead(element(1));
    list.RemoveHead();
    const POSITION second = list.AddHead(element(2));
    // MFC recycles the freed node.
    EXPECT_EQ(first, second);
}

TEST_F(ListTest, IterationForwardAndBackward) {
    CObList list;
    for (int i = 1; i <= 4; ++i) list.AddTail(element(i));
    std::vector<int> backward;
    for (POSITION p = list.GetTailPosition(); p != nullptr;) {
        backward.push_back(dynamic_cast<CInt*>(list.GetPrev(p))->value());
    }
    EXPECT_EQ(backward, (std::vector<int>{4, 3, 2, 1}));
}

TEST_F(ListTest, GetAtSetAt) {
    CObList list;
    list.AddTail(element(1));
    list.AddTail(element(2));
    const POSITION p = list.FindIndex(1);
    EXPECT_EQ(dynamic_cast<CInt*>(list.GetAt(p))->value(), 2);
    list.SetAt(p, element(99));
    EXPECT_EQ(values_of(list), (std::vector<int>{1, 99}));
}

TEST_F(ListTest, InsertBeforeAndAfter) {
    CObList list;
    list.AddTail(element(1));
    list.AddTail(element(3));
    list.InsertAfter(list.GetHeadPosition(), element(2));
    list.InsertBefore(list.GetHeadPosition(), element(0));
    EXPECT_EQ(values_of(list), (std::vector<int>{0, 1, 2, 3}));
    // Null position falls back to AddHead / AddTail (MFC semantics).
    list.InsertBefore(nullptr, element(-1));
    list.InsertAfter(nullptr, element(4));
    EXPECT_EQ(values_of(list), (std::vector<int>{-1, 0, 1, 2, 3, 4}));
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, FindUsesPointerIdentity) {
    CObList list;
    CInt* a = element(7);
    CInt* twin = element(7);
    list.AddTail(a);
    list.AddTail(twin);
    EXPECT_EQ(list.Find(a), list.GetHeadPosition());
    // Identity, not equality: searching for `twin` skips `a`.
    EXPECT_NE(list.Find(twin), list.GetHeadPosition());
    EXPECT_EQ(list.Find(a, list.GetHeadPosition()), nullptr);  // after a: none
    EXPECT_EQ(list.Find(element(8)), nullptr);
}

TEST_F(ListTest, FindIndexBounds) {
    CObList list;
    list.AddTail(element(1));
    list.AddTail(element(2));
    EXPECT_NE(list.FindIndex(0), nullptr);
    EXPECT_NE(list.FindIndex(1), nullptr);
    EXPECT_EQ(list.FindIndex(2), nullptr);
    EXPECT_EQ(list.FindIndex(-1), nullptr);
}

TEST_F(ListTest, RemoveAllEmptiesAndRecycles) {
    CObList list;
    for (int i = 0; i < 5; ++i) list.AddTail(element(i));
    list.RemoveAll();
    EXPECT_TRUE(list.IsEmpty());
    EXPECT_TRUE(list.DeepValidState());
    // Nodes were recycled, not leaked: re-adding reuses the pool.
    for (int i = 0; i < 5; ++i) list.AddTail(element(i));
    EXPECT_EQ(list.GetCount(), 5);
}

TEST_F(ListTest, BulkAddHeadPreservesOrder) {
    CObList target;
    target.AddTail(element(10));
    CObList source;
    source.AddTail(element(1));
    source.AddTail(element(2));
    target.AddHead(&source);
    EXPECT_EQ(values_of(target), (std::vector<int>{1, 2, 10}));
    // The source list is untouched; elements are shared, nodes are not.
    EXPECT_EQ(values_of(source), (std::vector<int>{1, 2}));
    EXPECT_TRUE(target.DeepValidState());
    EXPECT_TRUE(source.DeepValidState());
}

TEST_F(ListTest, BulkAddTailAppends) {
    CObList target;
    target.AddTail(element(10));
    CObList source;
    source.AddTail(element(1));
    source.AddTail(element(2));
    target.AddTail(&source);
    EXPECT_EQ(values_of(target), (std::vector<int>{10, 1, 2}));
    EXPECT_TRUE(target.DeepValidState());
}

TEST_F(ListTest, BulkAddOfEmptyListIsNoop) {
    CObList target;
    target.AddTail(element(1));
    CObList empty;
    target.AddHead(&empty);
    target.AddTail(&empty);
    EXPECT_EQ(values_of(target), (std::vector<int>{1}));
}

TEST_F(ListTest, BulkAddNullAsserts) {
    bit::TestModeGuard test_mode;
    CObList target;
    EXPECT_THROW(target.AddHead(static_cast<CObList*>(nullptr)),
                 bit::AssertionViolation);
    EXPECT_THROW(target.AddTail(static_cast<CObList*>(nullptr)),
                 bit::AssertionViolation);
}

// ----------------------------------------------------- assertions and BIT

TEST_F(ListTest, PreconditionsFireInTestMode) {
    bit::TestModeGuard test_mode;
    CObList list;
    EXPECT_THROW((void)list.RemoveHead(), bit::AssertionViolation);
    EXPECT_THROW((void)list.RemoveTail(), bit::AssertionViolation);
    EXPECT_THROW((void)list.GetHead(), bit::AssertionViolation);
    EXPECT_THROW(list.AddHead(static_cast<CObject*>(nullptr)),
                 bit::AssertionViolation);
    EXPECT_THROW(list.RemoveAt(nullptr), bit::AssertionViolation);
}

TEST_F(ListTest, ForeignPositionFaults) {
    CObList list;
    CObList other;
    other.AddHead(element(1));
    list.AddHead(element(2));
    // A POSITION from another list is outside this list's pool.
    EXPECT_THROW(list.RemoveAt(other.GetHeadPosition()),
                 mutation::StructuralFault);
    EXPECT_THROW((void)list.GetAt(other.GetHeadPosition()),
                 mutation::StructuralFault);
}

TEST_F(ListTest, InvariantTestAndReporter) {
    bit::TestModeGuard test_mode;
    CObList list;
    list.AddTail(element(5));
    list.AddTail(element(6));
    EXPECT_NO_THROW(list.InvariantTest());
    EXPECT_EQ(list.report(), "CObList count=2 [CInt(5), CInt(6)]");
    EXPECT_NO_THROW(list.AssertValid());
}

TEST_F(ListTest, WeakInvariantIsMfcFaithful) {
    // ValidState deliberately checks only head/tail consistency; a count
    // mismatch with intact head/tail is invisible to it but caught by
    // DeepValidState.  (This difference is what the Table 3 experiment
    // depends on.)
    CObList list;
    list.AddTail(element(1));
    EXPECT_TRUE(list.ValidState());
    EXPECT_TRUE(list.DeepValidState());
}

TEST_F(ListTest, ReporterRendersCycleMarkerUnderMutation) {
    // AddHead mutant: link pNext of the new node to itself (RepLoc
    // pNewNode at the "link pNext" site) -> a one-node cycle at the head.
    const auto& registry = descriptors();
    const auto* add_head = registry.find("CObList", "AddHead");
    ASSERT_NE(add_head, nullptr);
    // site 2 = "link pNext"; replace m_pNodeHead value by pNewNode
    // (RepLoc on site 3: "old head value" -> pNewNode).
    const mutation::Mutant m{add_head, 3, mutation::Operator::IndVarRepLoc,
                             "pNewNode", {}};

    CObList list;
    list.AddTail(element(7));
    {
        const mutation::MutantActivation activation(m);
        list.AddHead(element(8));  // head->pNext now points at head
    }
    EXPECT_FALSE(list.DeepValidState());
    const std::string report = list.report();
    EXPECT_NE(report.find("<cycle>"), std::string::npos) << report;
}

TEST_F(ListTest, FreeNodeFaultsOnNullUnderMutation) {
    // RemoveHead mutant: the recycled node replaced by NULL -> FreeNode
    // dereferences null, the simulated crash of the original MFC code.
    const auto* remove_head = descriptors().find("CObList", "RemoveHead");
    ASSERT_NE(remove_head, nullptr);
    const mutation::Mutant m{
        remove_head, 5, mutation::Operator::IndVarRepReq, "",
        mutation::required_constants(mutation::pointer_type("CNode")).front()};

    CObList list;
    list.AddTail(element(1));
    const mutation::MutantActivation activation(m);
    EXPECT_THROW((void)list.RemoveHead(), mutation::StructuralFault);
}

TEST_F(ListTest, RunawayTraversalGuardFires) {
    // Same cycle as above; Find() must fault instead of spinning.
    const auto* add_head = descriptors().find("CObList", "AddHead");
    const mutation::Mutant m{add_head, 3, mutation::Operator::IndVarRepLoc,
                             "pNewNode", {}};
    CObList list;
    list.AddTail(element(7));
    {
        const mutation::MutantActivation activation(m);
        list.AddHead(element(8));
    }
    CInt needle(99);
    EXPECT_THROW((void)list.Find(&needle), mutation::StructuralFault);
}

// ------------------------------------------------------------ sortable list

class SortableTest : public ListTest {
protected:
    CSortableObList list_;

    void fill(const std::vector<int>& values) {
        for (int v : values) list_.AddTail(element(v));
    }
};

TEST_F(SortableTest, Sort1SortsAndRelinks) {
    fill({5, 3, 9, 1, 7});
    list_.Sort1();
    EXPECT_EQ(values_of(list_), (std::vector<int>{1, 3, 5, 7, 9}));
    EXPECT_TRUE(list_.DeepValidState());
    EXPECT_TRUE(list_.IsSorted());
}

TEST_F(SortableTest, Sort2SortsBySwappingData) {
    fill({4, 4, 2, 8, 0});
    const POSITION head_before = list_.GetHeadPosition();
    list_.Sort2();
    EXPECT_EQ(values_of(list_), (std::vector<int>{0, 2, 4, 4, 8}));
    // Sort2 keeps the node chain: the head node is still the same node.
    EXPECT_EQ(list_.GetHeadPosition(), head_before);
    EXPECT_TRUE(list_.DeepValidState());
}

TEST_F(SortableTest, ShellSortSorts) {
    fill({10, -3, 7, 7, 0, 22, -3});
    list_.ShellSort();
    EXPECT_EQ(values_of(list_), (std::vector<int>{-3, -3, 0, 7, 7, 10, 22}));
    EXPECT_TRUE(list_.DeepValidState());
}

TEST_F(SortableTest, SortsHandleTrivialSizes) {
    list_.Sort1();
    list_.Sort2();
    list_.ShellSort();
    EXPECT_TRUE(list_.IsEmpty());

    list_.AddHead(element(42));
    list_.Sort1();
    list_.Sort2();
    list_.ShellSort();
    EXPECT_EQ(values_of(list_), (std::vector<int>{42}));
    EXPECT_TRUE(list_.DeepValidState());
}

TEST_F(SortableTest, Sort1IsStable) {
    // Insertion sort preserves the relative order of equal keys; verify
    // by identity (three distinct CInt objects with the same value).
    CInt* first = element(5);
    CInt* second = element(5);
    CInt* third = element(5);
    list_.AddTail(element(9));
    list_.AddTail(first);
    list_.AddTail(second);
    list_.AddTail(element(1));
    list_.AddTail(third);
    list_.Sort1();

    std::vector<const CObject*> fives;
    for (POSITION p = list_.GetHeadPosition(); p != nullptr;) {
        const CObject* o = list_.GetNext(p);
        if (dynamic_cast<const CInt*>(o)->value() == 5) fives.push_back(o);
    }
    ASSERT_EQ(fives.size(), 3u);
    EXPECT_EQ(fives[0], first);
    EXPECT_EQ(fives[1], second);
    EXPECT_EQ(fives[2], third);
}

TEST_F(SortableTest, FindMaxAndMin) {
    fill({5, -2, 11, 0});
    EXPECT_EQ(dynamic_cast<CInt*>(list_.FindMax())->value(), 11);
    EXPECT_EQ(dynamic_cast<CInt*>(list_.FindMin())->value(), -2);
    // The list is untouched by the queries.
    EXPECT_EQ(values_of(list_), (std::vector<int>{5, -2, 11, 0}));
}

TEST_F(SortableTest, FindOnEmptyListAsserts) {
    bit::TestModeGuard test_mode;
    EXPECT_THROW((void)list_.FindMax(), bit::AssertionViolation);
    EXPECT_THROW((void)list_.FindMin(), bit::AssertionViolation);
}

TEST_F(SortableTest, SortPostconditionsHoldInTestMode) {
    bit::TestModeGuard test_mode;
    fill({3, 1, 2});
    EXPECT_NO_THROW(list_.Sort1());
    EXPECT_NO_THROW(list_.Sort2());
    EXPECT_NO_THROW(list_.ShellSort());
}

TEST_F(SortableTest, IsSortedDetectsDisorder) {
    fill({1, 3, 2});
    EXPECT_FALSE(list_.IsSorted());
    list_.Sort1();
    EXPECT_TRUE(list_.IsSorted());
}

TEST_F(SortableTest, MixedOperationsKeepSortInvariantsAvailable) {
    fill({9, 1});
    list_.Sort1();
    list_.AddHead(element(5));  // deliberately unsorted again
    EXPECT_FALSE(list_.IsSorted());
    list_.Sort2();
    EXPECT_TRUE(list_.IsSorted());
    list_.RemoveHead();
    EXPECT_EQ(values_of(list_), (std::vector<int>{5, 9}));
}

// ------------------------------------------------- property sweep (TEST_P)

struct SortCase {
    std::uint64_t seed;
    int size;
};

class SortProperty : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortProperty, AllThreeSortsAgreeWithStdSort) {
    const auto [seed, size] = GetParam();
    support::Pcg32 rng(seed);

    std::vector<std::unique_ptr<CInt>> pool;
    auto fresh_list = [&pool](const std::vector<int>& values) {
        auto list = std::make_unique<CSortableObList>();
        for (int v : values) {
            pool.push_back(std::make_unique<CInt>(v));
            list->AddTail(pool.back().get());
        }
        return list;
    };

    std::vector<int> values;
    values.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
        values.push_back(static_cast<int>(rng.uniform(-50, 50)));
    }
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());

    auto extract = [](const CObList& list) {
        std::vector<int> out;
        for (POSITION p = list.GetHeadPosition(); p != nullptr;) {
            out.push_back(dynamic_cast<CInt*>(list.GetNext(p))->value());
        }
        return out;
    };

    const auto l1 = fresh_list(values);
    l1->Sort1();
    EXPECT_EQ(extract(*l1), expected);
    EXPECT_TRUE(l1->DeepValidState());

    const auto l2 = fresh_list(values);
    l2->Sort2();
    EXPECT_EQ(extract(*l2), expected);
    EXPECT_TRUE(l2->DeepValidState());

    const auto l3 = fresh_list(values);
    l3->ShellSort();
    EXPECT_EQ(extract(*l3), expected);
    EXPECT_TRUE(l3->DeepValidState());
}

INSTANTIATE_TEST_SUITE_P(
    RandomLists, SortProperty,
    ::testing::Values(SortCase{1, 0}, SortCase{2, 1}, SortCase{3, 2}, SortCase{4, 3},
                      SortCase{5, 8}, SortCase{6, 16}, SortCase{7, 33},
                      SortCase{8, 64}, SortCase{9, 100}, SortCase{10, 7}));

class RandomOpsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOpsProperty, DeepInvariantHoldsUnderRandomOperationSequences) {
    support::Pcg32 rng(GetParam());
    std::vector<std::unique_ptr<CInt>> pool;
    CSortableObList list;
    std::vector<int> model;  // reference model of expected contents

    for (int step = 0; step < 400; ++step) {
        const auto op = rng.index(8);
        const int value = static_cast<int>(rng.uniform(-99, 99));
        switch (op) {
            case 0: {
                pool.push_back(std::make_unique<CInt>(value));
                list.AddHead(pool.back().get());
                model.insert(model.begin(), value);
                break;
            }
            case 1: {
                pool.push_back(std::make_unique<CInt>(value));
                list.AddTail(pool.back().get());
                model.push_back(value);
                break;
            }
            case 2: {
                if (list.IsEmpty()) break;
                list.RemoveHead();
                model.erase(model.begin());
                break;
            }
            case 3: {
                if (list.IsEmpty()) break;
                list.RemoveTail();
                model.pop_back();
                break;
            }
            case 4: {
                if (list.IsEmpty()) break;
                const auto index =
                    static_cast<int>(rng.index(static_cast<std::size_t>(
                        list.GetCount())));
                list.RemoveAt(list.FindIndex(index));
                model.erase(model.begin() + index);
                break;
            }
            case 5: {
                list.Sort1();
                std::sort(model.begin(), model.end());
                break;
            }
            case 6: {
                list.Sort2();
                std::sort(model.begin(), model.end());
                break;
            }
            case 7: {
                list.ShellSort();
                std::sort(model.begin(), model.end());
                break;
            }
            default: break;
        }
        ASSERT_TRUE(list.DeepValidState()) << "step " << step;
        ASSERT_EQ(list.GetCount(), static_cast<int>(model.size()));
    }

    std::vector<int> final_values;
    for (POSITION p = list.GetHeadPosition(); p != nullptr;) {
        final_values.push_back(dynamic_cast<CInt*>(list.GetNext(p))->value());
    }
    EXPECT_EQ(final_values, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --------------------------------------------------------- CObject / CInt

TEST(CInt, CompareAndText) {
    const CInt a(1);
    const CInt b(2);
    EXPECT_LT(a.Compare(b), 0);
    EXPECT_GT(b.Compare(a), 0);
    EXPECT_EQ(a.Compare(CInt(1)), 0);
    EXPECT_EQ(a.ToText(), "CInt(1)");
    // Foreign objects order before CInts.
    const CObject plain;
    EXPECT_GT(a.Compare(plain), 0);
    EXPECT_EQ(plain.Compare(a), 0);  // base class has no order
}

}  // namespace
}  // namespace stc::mfc
