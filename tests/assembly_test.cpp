// stc::assembly — the synchronous product and its grammar: round-trips
// of the assembly block, referential validation, product construction
// over the shop trio, and every rejection path (dangling roles, cyclic
// wiring, nondeterminism, joint death, state explosion).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "shop_component.h"
#include "stc/assembly/product.h"
#include "stc/support/error.h"
#include "stc/tfm/graph.h"
#include "stc/tspec/assembly.h"
#include "stc/tspec/builder.h"
#include "test_paths.h"

namespace stc {
namespace {

using examples::shop_assembly;
using examples::shop_product;
using examples::shop_role_specs;
using tspec::AssemblySpec;
using tspec::MethodCategory;
using tspec::parse_assembly;
using tspec::print_assembly;

// ---------------------------------------------------------------- grammar

TEST(AssemblyGrammar, PrintParseRoundTrip) {
    AssemblySpec a;
    a.name = "Pair";
    a.roles.push_back({"left", "Alpha", ""});
    a.roles.push_back({"right", "Beta", "beta.tspec"});
    a.wiring.push_back({"left", "m3", "right", "m3", true});
    a.wiring.push_back({"right", "m4", "left", "m4", false});
    a.exports.push_back({"left", "m3", "Go"});
    a.exports.push_back({"right", "m4", ""});

    const AssemblySpec back = parse_assembly(print_assembly(a));
    EXPECT_TRUE(back == a);
    // And the rendering is a fixed point.
    EXPECT_EQ(print_assembly(back), print_assembly(a));
}

TEST(AssemblyGrammar, ShopFileMirrorsTheInCodeSpec) {
    std::ifstream in(std::string(STC_SOURCE_DIR) + "/examples/shop/shop.tspec");
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    const AssemblySpec parsed = parse_assembly(text.str());
    EXPECT_TRUE(parsed == shop_assembly());
}

TEST(AssemblyGrammar, SyntaxProblemsAreParseErrors) {
    // Not an assembly block at all.
    EXPECT_THROW((void)parse_assembly("Class ('X')"), ParseError);
    // Missing braces / unterminated block.
    EXPECT_THROW((void)parse_assembly("Assembly ('A')"), ParseError);
    EXPECT_THROW((void)parse_assembly("Assembly ('A') { roles {"), ParseError);
    // Section name must be an identifier.
    EXPECT_THROW((void)parse_assembly("Assembly ('A') { 42 { } }"), ParseError);
    // Trailing input after the closing brace.
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } "
                     "exports { Export (r, m3) } } junk"),
                 ParseError);
}

TEST(AssemblyGrammar, RecordProblemsAreSpecErrors) {
    const auto wrap = [](const std::string& body) {
        return "Assembly ('A') { " + body + " }";
    };
    // Unknown section, wrong record kind, wrong arity, bad wire mode.
    EXPECT_THROW((void)parse_assembly(wrap("stuff { Role (r, 'C') }")), SpecError);
    EXPECT_THROW((void)parse_assembly(wrap("roles { Wire (a, b, c, d) }")),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(wrap("roles { Role (r) }")), SpecError);
    EXPECT_THROW((void)parse_assembly(
                     wrap("roles { Role (r, 'C') Role (r, 'D') }")),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(
                     wrap("roles { Role (r, 'C') } wiring "
                          "{ Wire (r, m3, r, m4, loudly) } "
                          "exports { Export (r, m3) }")),
                 SpecError);
}

TEST(AssemblyGrammar, ReferentialProblemsAreSpecErrors) {
    // No roles at all.
    EXPECT_THROW((void)parse_assembly("Assembly ('A') { exports { Export (r, m3) } }"),
                 SpecError);
    // Wires naming unknown roles, and self-wiring.
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } "
                     "wiring { Wire (ghost, m3, r, m3) } "
                     "exports { Export (r, m3) } }"),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } "
                     "wiring { Wire (r, m3, ghost, m3) } "
                     "exports { Export (r, m3) } }"),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } "
                     "wiring { Wire (r, m3, r, m4) } "
                     "exports { Export (r, m3) } }"),
                 SpecError);
    // Empty interface, exports of unknown roles, duplicate public names.
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } exports { } }"),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') } "
                     "exports { Export (ghost, m3) } }"),
                 SpecError);
    EXPECT_THROW((void)parse_assembly(
                     "Assembly ('A') { roles { Role (r, 'C') Role (s, 'C') } "
                     "exports { Export (r, m3, 'Go') Export (s, m3, 'Go') } }"),
                 SpecError);
}

// ---------------------------------------------------------------- product

// Minimal two-role fixture: Alpha.Go (m3) is wired to Beta.Poke (m3).
tspec::ComponentSpec alpha_spec() {
    tspec::SpecBuilder b("Alpha");
    b.method("m1", "Alpha", MethodCategory::Constructor);
    b.method("m2", "~Alpha", MethodCategory::Destructor);
    b.method("m3", "Go", MethodCategory::New);
    b.node("a1", true, {"m1"});
    b.node("a2", false, {"m3"});
    b.node("a3", false, {"m2"});
    b.edge("a1", "a2").edge("a2", "a2").edge("a2", "a3");
    return b.build();
}

tspec::ComponentSpec beta_spec() {
    tspec::SpecBuilder b("Beta");
    b.method("m1", "Beta", MethodCategory::Constructor);
    b.method("m2", "~Beta", MethodCategory::Destructor);
    b.method("m3", "Poke", MethodCategory::New);
    b.node("b1", true, {"m1"});
    b.node("b2", false, {"m3"});
    b.node("b3", false, {"m2"});
    b.edge("b1", "b2").edge("b2", "b2").edge("b2", "b3");
    return b.build();
}

AssemblySpec pair_assembly() {
    AssemblySpec a;
    a.name = "Pair";
    a.roles.push_back({"a", "Alpha", ""});
    a.roles.push_back({"b", "Beta", ""});
    a.wiring.push_back({"a", "m3", "b", "m3", true});
    a.exports.push_back({"a", "m3", "Go"});
    return a;
}

std::map<std::string, tspec::ComponentSpec> pair_specs() {
    std::map<std::string, tspec::ComponentSpec> specs;
    specs.emplace("a", alpha_spec());
    specs.emplace("b", beta_spec());
    return specs;
}

TEST(Product, PairProductIsATinyChain) {
    const auto product = assembly::build_product(pair_assembly(), pair_specs());
    // Birth, the (Go, (a2,b2)) node, death.
    EXPECT_EQ(product.stats.conceivable_tuples, 9u);
    EXPECT_EQ(product.stats.reachable_tuples, 2u);
    EXPECT_EQ(product.spec.nodes.size(), 3u);
    EXPECT_EQ(product.spec.class_name, "Pair");
    ASSERT_EQ(product.spec.methods.size(), 3u);
    EXPECT_EQ(product.spec.methods[2].name, "Go");

    const tfm::Graph g = product.spec.build_tfm();
    const auto ts = g.enumerate_transactions();
    ASSERT_FALSE(ts.empty());
    for (const auto& t : ts) EXPECT_TRUE(g.is_valid_transaction(t.path));
}

TEST(Product, MissingRoleSpecRejected) {
    auto specs = pair_specs();
    specs.erase("b");
    EXPECT_THROW((void)assembly::build_product(pair_assembly(), specs), SpecError);
}

TEST(Product, ClassMismatchRejected) {
    auto specs = pair_specs();
    specs.at("b") = alpha_spec();  // declares class Alpha for role b (Beta)
    EXPECT_THROW((void)assembly::build_product(pair_assembly(), specs), SpecError);
}

TEST(Product, UnknownMethodsAndCtorsInWiresRejected) {
    auto a = pair_assembly();
    a.wiring[0].callee_method = "m9";
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
    a = pair_assembly();
    a.wiring[0].callee_method = "m1";  // constructors are composed, not wired
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
    a = pair_assembly();
    a.exports[0].method = "m2";
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
}

TEST(Product, DanglingRoleRefsRejected) {
    // Hand-built specs (not via parse_assembly) may dangle: the builder
    // must reject them cleanly rather than crash — the fuzz harness
    // leans on this.
    auto a = pair_assembly();
    a.wiring[0].caller_role = "ghost";
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
    a = pair_assembly();
    a.exports[0].role = "ghost";
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
}

TEST(Product, CyclicHiddenChainsRejected) {
    auto a = pair_assembly();
    a.wiring.push_back({"b", "m3", "a", "m3", false});  // closes the loop
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
}

TEST(Product, DuplicatePublicNamesRejected) {
    auto a = pair_assembly();
    a.exports.push_back({"b", "m3", "Go"});
    EXPECT_THROW((void)assembly::build_product(a, pair_specs()), SpecError);
}

TEST(Product, NondeterministicRoleRejected) {
    // Two successor nodes of a1 both group m3: one exported action, two
    // product states.
    tspec::SpecBuilder b("Alpha");
    b.method("m1", "Alpha", MethodCategory::Constructor);
    b.method("m2", "~Alpha", MethodCategory::Destructor);
    b.method("m3", "Go", MethodCategory::New);
    b.node("a1", true, {"m1"});
    b.node("a2", false, {"m3"});
    b.node("a2x", false, {"m3"});
    b.node("a3", false, {"m2"});
    b.edge("a1", "a2").edge("a1", "a2x").edge("a2", "a3").edge("a2x", "a3");

    auto specs = pair_specs();
    specs.at("a") = b.build();
    EXPECT_THROW((void)assembly::build_product(pair_assembly(), specs), SpecError);
}

TEST(Product, JointDeathMustBeReachable) {
    // Beta can only die at birth, Alpha never at birth: once Go fires
    // the roles disagree forever, and from the joint birth state Alpha
    // cannot die — no reachable state lets the assembly die.
    tspec::SpecBuilder b("Beta");
    b.method("m1", "Beta", MethodCategory::Constructor);
    b.method("m2", "~Beta", MethodCategory::Destructor);
    b.method("m3", "Poke", MethodCategory::New);
    b.node("b1", true, {"m1"});
    b.node("b2", false, {"m3"});
    b.node("b3", false, {"m2"});
    b.edge("b1", "b2").edge("b1", "b3").edge("b2", "b2");

    auto specs = pair_specs();
    specs.at("b") = b.build();
    EXPECT_THROW((void)assembly::build_product(pair_assembly(), specs), SpecError);
}

TEST(Product, StateExplosionGuard) {
    assembly::ProductOptions options;
    options.max_states = 1;
    EXPECT_THROW(
        (void)assembly::build_product(shop_assembly(), shop_role_specs(), options),
        SpecError);
}

// ------------------------------------------------------------------- shop

TEST(ShopAssembly, ProductBuildsCleanly) {
    const auto product = shop_product();
    // 5 * 4 * 5 * 4 conceivable tuples; reachability prunes hard.
    EXPECT_EQ(product.stats.conceivable_tuples, 400u);
    EXPECT_LT(product.stats.reachable_tuples, product.stats.conceivable_tuples);
    EXPECT_GT(product.stats.reachable_tuples, 1u);
    EXPECT_EQ(product.stats.hidden_wires, 6u);
    EXPECT_GT(product.stats.hidden_steps, 0u);
    // Clean construction: no disabled exports, no blocked hidden
    // actions, no TFM diagnostics — the shop models were built for it.
    EXPECT_TRUE(product.stats.notes.empty());

    const auto& methods = product.spec.methods;
    ASSERT_EQ(methods.size(), 7u);
    EXPECT_EQ(methods[0].name, "Shop");
    EXPECT_EQ(methods[1].name, "~Shop");
    EXPECT_EQ(methods[2].name, "Purchase");
    EXPECT_EQ(methods[3].name, "Sell");
    EXPECT_EQ(methods[4].name, "Balance");
    EXPECT_EQ(methods[5].name, "OnHand");
    EXPECT_EQ(methods[6].name, "AuditCount");
    ASSERT_EQ(methods[2].parameters.size(), 2u);  // Purchase(sku, cost)
}

TEST(ShopAssembly, ProductTransactionsAreValid) {
    const auto product = shop_product();
    const tfm::Graph g = product.spec.build_tfm();
    EXPECT_TRUE(g.diagnose().empty());

    tfm::EnumerationOptions options;
    options.max_transactions = 500;
    const auto ts = g.enumerate_transactions(options);
    ASSERT_FALSE(ts.empty());
    for (const auto& t : ts) EXPECT_TRUE(g.is_valid_transaction(t.path));
}

TEST(ShopAssembly, ProductIsDeterministicallyOrdered) {
    // Two independent constructions yield byte-identical specs — the
    // fleet determinism gate builds on this.
    const auto p1 = shop_product();
    const auto p2 = shop_product();
    EXPECT_EQ(p1.spec.build_tfm().to_dot(), p2.spec.build_tfm().to_dot());
    EXPECT_EQ(assembly::describe(p1.stats), assembly::describe(p2.stats));
}

TEST(ShopAssembly, DescribeMentionsPruning) {
    const auto product = shop_product();
    const std::string text = assembly::describe(product.stats);
    EXPECT_NE(text.find("conceivable tuples: 400"), std::string::npos);
    EXPECT_NE(text.find("pruned tuples"), std::string::npos);
    EXPECT_NE(text.find("hidden wires:       6"), std::string::npos);
}

}  // namespace
}  // namespace stc
