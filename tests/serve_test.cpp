// stc::serve tests: worker daemon + coordinator over real loopback
// sockets, in-process (daemon on a thread, coordinator on the test
// thread).  The mechanics tests drive a toy session so they run in
// microseconds; the end-to-end test dispatches a real builtin campaign
// and checks the merged fates against locally evaluated ones — the
// determinism contract `concat dispatch` rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "shop_targets.h"
#include "stc/campaign/work_list.h"
#include "stc/mutation/engine.h"
#include "stc/tfm/coverage.h"
#include "stc/obs/json.h"
#include "stc/obs/trace.h"
#include "stc/serve/builtin_host.h"
#include "stc/serve/dispatch.h"
#include "stc/serve/socket.h"
#include "stc/serve/span_codec.h"
#include "stc/serve/worker.h"
#include "stc/support/error.h"
#include "stc/wire/frame.h"

namespace stc::serve {
namespace {

// A minimal deterministic session: the "outcome" of item N is a pure
// function of N, so any shard split / redispatch must merge to the same
// results.
class ToySession : public Session {
public:
    explicit ToySession(std::string fingerprint)
        : fingerprint_(std::move(fingerprint)) {}

    const std::string& fingerprint() const override { return fingerprint_; }

    obs::JsonObject evaluate(const obs::JsonObject& work) override {
        const std::uint64_t index = work.get_uint("item").value_or(0);
        obs::JsonObject result;
        result.set("item", index)
            .set("mutant", work.get_string("mutant").value_or(""))
            .set("answer", index * 7 + 1);
        return result;
    }

private:
    std::string fingerprint_;
};

SessionFactory toy_factory(const std::string& fingerprint) {
    return [fingerprint](const obs::JsonObject&, const obs::Context&,
                         std::string*) -> std::unique_ptr<Session> {
        return std::make_unique<ToySession>(fingerprint);
    };
}

std::vector<campaign::WorkItem> toy_items(std::size_t n) {
    std::vector<campaign::WorkItem> items;
    for (std::size_t i = 0; i < n; ++i) {
        campaign::WorkItem item;
        item.index = i;
        item.mutant_id = "toy-mutant-" + std::to_string(i);
        item.item_seed = 1000 + i;
        item.key = campaign::item_key("toy-fp", item.mutant_id);
        items.push_back(item);
    }
    return items;
}

/// One daemon on an ephemeral loopback port, served on its own thread.
struct DaemonHandle {
    explicit DaemonHandle(SessionFactory factory, bool once = true) {
        ServeOptions options;
        options.once = once;
        daemon = std::make_unique<WorkerDaemon>(std::move(factory),
                                                std::move(options));
        port = daemon->bind();
        thread = std::thread([this] { daemon->serve(); });
    }
    ~DaemonHandle() {
        daemon->stop();
        if (thread.joinable()) thread.join();
    }
    Endpoint endpoint() const {
        return parse_endpoint("127.0.0.1:" + std::to_string(port));
    }

    std::unique_ptr<WorkerDaemon> daemon;
    std::uint16_t port = 0;
    std::thread thread;
};

DispatchOptions toy_dispatch(const std::vector<Endpoint>& endpoints) {
    DispatchOptions options;
    options.workers = endpoints;
    options.hello = obs::JsonObject().set("component", "toy");
    options.expected_fingerprint = "toy-fp";
    return options;
}

// ------------------------------------------------------------ endpoints

TEST(ServeEndpoint, ParseFormsAndErrors) {
    const Endpoint full = parse_endpoint("10.1.2.3:555");
    EXPECT_EQ(full.host, "10.1.2.3");
    EXPECT_EQ(full.port, 555);

    const Endpoint bare = parse_endpoint("4242");
    EXPECT_EQ(bare.host, "127.0.0.1");
    EXPECT_EQ(bare.port, 4242);

    const auto list = parse_endpoints("127.0.0.1:1,127.0.0.1:2");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[1].port, 2);

    EXPECT_THROW((void)parse_endpoint("host:notaport"), Error);
    EXPECT_THROW((void)parse_endpoints(""), Error);
}

// ------------------------------------------------------------- dispatch

TEST(ServeDispatch, TwoWorkersCompleteEveryItemExactlyOnce) {
    DaemonHandle d1(toy_factory("toy-fp"));
    DaemonHandle d2(toy_factory("toy-fp"));

    const auto items = toy_items(10);
    std::map<std::size_t, std::uint64_t> answers;
    Coordinator coordinator(toy_dispatch({d1.endpoint(), d2.endpoint()}));
    const DispatchStats stats = coordinator.run(
        items, [&](const campaign::WorkItem& item,
                   const obs::JsonObject& result) {
            EXPECT_EQ(answers.count(item.index), 0u) << "duplicate result";
            answers[item.index] = result.get_uint("answer").value_or(0);
        });

    EXPECT_EQ(stats.workers, 2u);
    EXPECT_EQ(stats.workers_connected, 2u);
    EXPECT_EQ(stats.disconnects, 0u);
    EXPECT_EQ(stats.executed, 10u);
    ASSERT_EQ(answers.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(answers[i], i * 7 + 1);
    }
    // Both daemons carried part of the shard split: every result tags
    // its worker ordinal, and with the content-hash shard both ordinals
    // must appear for this item count.
}

TEST(ServeDispatch, ResumedSubsetKeepsGlobalIndices) {
    DaemonHandle steady(toy_factory("toy-fp"));
    // A mid-campaign death on top of the subset exercises the
    // redispatch bookkeeping with non-identity indices too.
    DaemonHandle flaky([](const obs::JsonObject&, const obs::Context&,
                          std::string*) -> std::unique_ptr<Session> {
        class Flaky : public ToySession {
        public:
            Flaky() : ToySession("toy-fp") {}
            obs::JsonObject evaluate(const obs::JsonObject& work) override {
                if (++count_ > 1) throw Error("injected mid-campaign death");
                return ToySession::evaluate(work);
            }

        private:
            int count_ = 0;
        };
        return std::make_unique<Flaky>();
    });

    // The --resume shape: only the pending remainder of the work list
    // is shipped, so pending[i].index != i.  Results must still slot
    // under each item's global index.
    std::vector<campaign::WorkItem> pending;
    for (const campaign::WorkItem& item : toy_items(12)) {
        if (item.index % 3 != 0) pending.push_back(item);
    }
    ASSERT_EQ(pending.size(), 8u);

    std::map<std::size_t, std::uint64_t> answers;
    Coordinator coordinator(
        toy_dispatch({steady.endpoint(), flaky.endpoint()}));
    const DispatchStats stats = coordinator.run(
        pending, [&](const campaign::WorkItem& item,
                     const obs::JsonObject& result) {
            EXPECT_EQ(answers.count(item.index), 0u) << "duplicate result";
            answers[item.index] = result.get_uint("answer").value_or(0);
        });

    EXPECT_EQ(stats.executed, 8u);
    ASSERT_EQ(answers.size(), 8u);
    for (const campaign::WorkItem& item : pending) {
        EXPECT_EQ(answers[item.index], item.index * 7 + 1)
            << "item " << item.index;
    }
}

TEST(ServeDispatch, FingerprintMismatchMeansNoUsableWorkers) {
    DaemonHandle d1(toy_factory("OTHER-fp"));
    Coordinator coordinator(toy_dispatch({d1.endpoint()}));
    EXPECT_THROW((void)coordinator.run(toy_items(3),
                                       [](const campaign::WorkItem&,
                                          const obs::JsonObject&) {}),
                 Error);
}

TEST(ServeDispatch, HandshakeRejectionFallsBackToSurvivor) {
    DaemonHandle good(toy_factory("toy-fp"));
    DaemonHandle bad([](const obs::JsonObject&, const obs::Context&,
                        std::string* error) -> std::unique_ptr<Session> {
        *error = "unknown component";
        return nullptr;
    });

    std::size_t merged = 0;
    Coordinator coordinator(toy_dispatch({good.endpoint(), bad.endpoint()}));
    const DispatchStats stats = coordinator.run(
        toy_items(6),
        [&](const campaign::WorkItem&, const obs::JsonObject&) { ++merged; });
    EXPECT_EQ(merged, 6u);
    EXPECT_EQ(stats.workers_connected, 1u);
    EXPECT_EQ(stats.disconnects, 1u);
}

TEST(ServeDispatch, UnreachableEndpointFallsBackToSurvivor) {
    DaemonHandle good(toy_factory("toy-fp"));
    // Port 1 on loopback: connect is refused immediately.
    std::size_t merged = 0;
    Coordinator coordinator(
        toy_dispatch({good.endpoint(), parse_endpoint("127.0.0.1:1")}));
    const DispatchStats stats = coordinator.run(
        toy_items(6),
        [&](const campaign::WorkItem&, const obs::JsonObject&) { ++merged; });
    EXPECT_EQ(merged, 6u);
    EXPECT_EQ(stats.disconnects, 1u);
}

TEST(ServeDispatch, MidCampaignDeathRedispatchesToSurvivor) {
    DaemonHandle steady(toy_factory("toy-fp"));
    // This daemon's session dies (Error frame, session torn down) on its
    // second item — after real work was assigned to it.
    DaemonHandle flaky([](const obs::JsonObject&, const obs::Context&,
                          std::string*) -> std::unique_ptr<Session> {
        class Flaky : public ToySession {
        public:
            Flaky() : ToySession("toy-fp") {}
            obs::JsonObject evaluate(const obs::JsonObject& work) override {
                if (++count_ > 1) throw Error("injected mid-campaign death");
                return ToySession::evaluate(work);
            }

        private:
            int count_ = 0;
        };
        return std::make_unique<Flaky>();
    });

    const auto items = toy_items(12);
    std::map<std::size_t, std::uint64_t> answers;
    Coordinator coordinator(
        toy_dispatch({steady.endpoint(), flaky.endpoint()}));
    const DispatchStats stats = coordinator.run(
        items, [&](const campaign::WorkItem& item,
                   const obs::JsonObject& result) {
            answers[item.index] = result.get_uint("answer").value_or(0);
        });

    ASSERT_EQ(answers.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(answers[i], i * 7 + 1) << "item " << i;
    }
    EXPECT_EQ(stats.disconnects, 1u);
    EXPECT_GT(stats.redispatched, 0u);
}

TEST(ServeDispatch, SilentWorkerIsDeclaredDeadByKeepalive) {
    DaemonHandle steady(toy_factory("toy-fp"));
    // This worker accepts the handshake, then stalls far past the
    // dead-after deadline on its first item.  The coordinator must not
    // wait for it: keepalive declares it dead and the survivor finishes.
    DaemonHandle stalled([](const obs::JsonObject&, const obs::Context&,
                            std::string*) -> std::unique_ptr<Session> {
        class Stalled : public ToySession {
        public:
            Stalled() : ToySession("toy-fp") {}
            obs::JsonObject evaluate(const obs::JsonObject& work) override {
                std::this_thread::sleep_for(std::chrono::milliseconds(1500));
                return ToySession::evaluate(work);
            }
        };
        return std::make_unique<Stalled>();
    });

    DispatchOptions options =
        toy_dispatch({steady.endpoint(), stalled.endpoint()});
    options.keepalive_ms = 50;
    options.dead_after_ms = 250;

    std::map<std::size_t, std::uint64_t> answers;
    Coordinator coordinator(std::move(options));
    const DispatchStats stats = coordinator.run(
        toy_items(8), [&](const campaign::WorkItem& item,
                          const obs::JsonObject& result) {
            answers[item.index] = result.get_uint("answer").value_or(0);
        });

    ASSERT_EQ(answers.size(), 8u);
    EXPECT_EQ(stats.disconnects, 1u);
    EXPECT_GT(stats.redispatched, 0u);
}

// --------------------------------------------------------------- worker

TEST(ServeWorker, SecondHelloIsAProtocolError) {
    DaemonHandle daemon(toy_factory("toy-fp"));
    const Fd conn = connect_to(daemon.endpoint());
    const std::string hello =
        obs::JsonObject().set("component", "toy").to_line();

    ASSERT_TRUE(
        wire::write_message(conn.get(), wire::MessageType::Hello, hello));
    const auto ack = wire::read_message(conn.get());
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, wire::MessageType::HelloAck);

    // A session is configured exactly once: a second Hello must fail
    // the connection, not silently reconfigure it.
    ASSERT_TRUE(
        wire::write_message(conn.get(), wire::MessageType::Hello, hello));
    const auto reply = wire::read_message(conn.get());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, wire::MessageType::Error);
    const auto payload = obs::JsonObject::parse(reply->payload);
    ASSERT_TRUE(payload.has_value());
    EXPECT_NE(payload->get_string("error").value_or("").find("hello"),
              std::string::npos);
}

// ---------------------------------------------------------- builtin host

TEST(ServeBuiltinHost, HelloRoundTripsTheConfig) {
    BuiltinCampaignConfig config;
    config.component = "coblist";
    config.generator.seed = 99;
    config.generator.cases_per_transaction = 2;
    config.probe = true;
    config.model = false;

    const obs::JsonObject hello = make_hello(config, "fp-here");
    std::string error;
    const auto parsed = parse_hello(hello, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->component, "coblist");
    EXPECT_EQ(parsed->generator.seed, 99u);
    EXPECT_EQ(parsed->generator.cases_per_transaction, 2u);
    EXPECT_TRUE(parsed->probe);
    EXPECT_FALSE(parsed->model);
    EXPECT_EQ(hello.get_string("fingerprint").value_or(""), "fp-here");
}

TEST(ServeBuiltinHost, UnknownComponentIsRejectedNotFatal) {
    BuiltinCampaignConfig config;
    config.component = "no-such-thing";
    std::string error;
    EXPECT_EQ(BuiltinCampaign::open(config, &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(ServeBuiltinHost, RegistryServesTheExampleAssemblyTarget) {
    examples::register_example_targets();
    examples::register_example_targets();  // idempotent: replace, not grow

    const BuiltinTarget* shop = find_builtin_target("shop");
    ASSERT_NE(shop, nullptr);
    EXPECT_TRUE(shop->assembly);
    const BuiltinTarget* wallet = find_builtin_target("wallet");
    ASSERT_NE(wallet, nullptr);
    EXPECT_FALSE(wallet->assembly);
    const std::vector<std::string> names = builtin_target_names();
    EXPECT_EQ(names, (std::vector<std::string>{"coblist", "shop", "sortable",
                                               "wallet"}));

    // The worker-side reconstruction path (`open`) works for the
    // assembly product, and the ioco channel reaches the dispatch
    // evaluator: the write-through mutant that survives the intraclass
    // wallet campaign is killed here by illegal quiescence.
    BuiltinCampaignConfig config;
    config.component = "shop";
    config.generator.criterion = tfm::Criterion::AllEdges;
    std::string error;
    const auto host = BuiltinCampaign::open(config, &error);
    ASSERT_NE(host, nullptr) << error;
    EXPECT_TRUE(host->baseline_clean());
    EXPECT_EQ(host->suite().class_name, "Shop");

    const auto outcome =
        host->evaluate("Wallet::Deposit@s2.IndVarRepReq.NULL");
    EXPECT_EQ(outcome.fate, mutation::MutantFate::Killed);
    EXPECT_EQ(outcome.reason, oracle::KillReason::IllegalQuiescence);
}

TEST(ServeBuiltinHost, DispatchedFatesMatchLocalEvaluation) {
    BuiltinCampaignConfig config;
    config.component = "sortable";
    std::string error;
    const auto host = BuiltinCampaign::open(config, &error);
    ASSERT_NE(host, nullptr) << error;

    DaemonHandle d1(builtin_session_factory());
    DaemonHandle d2(builtin_session_factory());

    DispatchOptions options;
    options.workers = {d1.endpoint(), d2.endpoint()};
    options.hello = make_hello(config, host->fingerprint());
    options.expected_fingerprint = host->fingerprint();

    std::map<std::size_t, std::string> fates;
    Coordinator coordinator(std::move(options));
    const DispatchStats stats = coordinator.run(
        host->items(), [&](const campaign::WorkItem& item,
                           const obs::JsonObject& result) {
            fates[item.index] = result.get_string("fate").value_or("?");
        });

    EXPECT_EQ(stats.workers_connected, 2u);
    ASSERT_EQ(fates.size(), host->items().size());
    for (const campaign::WorkItem& item : host->items()) {
        const mutation::MutantOutcome local = host->evaluate(item.mutant_id);
        EXPECT_EQ(fates[item.index], mutation::to_string(local.fate))
            << item.mutant_id;
    }
}

// ------------------------------------------- distributed trace streaming

TEST(ServeDispatch, TwoWorkerSessionsMergeIntoOneCollisionFreeTrace) {
    // The tentpole acceptance shape in miniature: coordinator + two
    // in-process worker sessions, tracing and telemetry streaming
    // negotiated, everything merged into ONE coordinator-side trace.
    BuiltinCampaignConfig config;
    config.component = "sortable";
    std::string error;
    const auto host = BuiltinCampaign::open(config, &error);
    ASSERT_NE(host, nullptr) << error;

    DaemonHandle d1(builtin_session_factory());
    DaemonHandle d2(builtin_session_factory());

    const obs::Tracer tracer = obs::Tracer::make();
    std::vector<obs::JsonObject> events;
    DispatchOptions options;
    options.workers = {d1.endpoint(), d2.endpoint()};
    options.hello = make_hello(config, host->fingerprint());
    options.expected_fingerprint = host->fingerprint();
    options.obs.tracer = tracer;
    options.stream_telemetry = true;
    options.telemetry_interval_ms = 0;  // fates only, no periodic snapshots
    options.telemetry = [&](const obs::JsonObject& event) {
        events.push_back(event);
    };

    std::size_t merged = 0;
    Coordinator coordinator(std::move(options));
    const DispatchStats stats = coordinator.run(
        host->items(),
        [&](const campaign::WorkItem&, const obs::JsonObject&) { ++merged; });
    EXPECT_EQ(stats.workers_connected, 2u);
    EXPECT_EQ(merged, host->items().size());

    // The campaign-wide trace id was minted from the fingerprint.
    EXPECT_NE(tracer.trace_id(), 0u);

    // The merged trace: every span id unique across coordinator and both
    // worker sessions, and the causal chain closed — each worker
    // work-item span parents on a coordinator item-dispatch span, which
    // parents on the dispatch root.
    const auto all = tracer.events();
    std::map<std::uint64_t, const obs::TraceEvent*> by_id;
    for (const obs::TraceEvent& event : all) {
        EXPECT_EQ(by_id.count(event.span_id), 0u)
            << "duplicate span id " << obs::hex16(event.span_id);
        by_id[event.span_id] = &event;
    }

    std::uint64_t dispatch_root = 0;
    for (const obs::TraceEvent& event : all) {
        if (event.name == "dispatch") dispatch_root = event.span_id;
    }
    ASSERT_NE(dispatch_root, 0u);

    std::size_t item_spans = 0;
    std::size_t work_spans = 0;
    std::set<int> worker_actors;
    for (const obs::TraceEvent& event : all) {
        if (event.name == "item-dispatch") {
            ++item_spans;
            EXPECT_EQ(event.actor, 0);
            EXPECT_EQ(event.parent_id, dispatch_root);
        } else if (event.name == "work-item") {
            ++work_spans;
            worker_actors.insert(event.actor);
            const auto parent = by_id.find(event.parent_id);
            ASSERT_NE(parent, by_id.end())
                << "work-item parent not in the merged trace";
            EXPECT_EQ(parent->second->name, "item-dispatch");
        }
    }
    EXPECT_EQ(item_spans, host->items().size());
    EXPECT_EQ(work_spans, host->items().size());
    // Both worker sessions contributed, with distinct actor ordinals
    // (ordinal + 1), so the merged trace shows three Chrome pids.
    EXPECT_EQ(worker_actors, (std::set<int>{1, 2}));

    // The export is loadable trace JSON and round-trips every event.
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    std::istringstream is(os.str());
    const auto parsed = obs::parse_chrome_trace(is);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->size(), all.size());

    // Streamed telemetry arrived in-process: each item-finish twice (the
    // coordinator merge copy + the worker's streamed copy), plus the
    // session lifecycle events, plus a final forced metrics snapshot per
    // worker even at interval 0.
    std::map<std::string, std::size_t> kinds;
    for (const obs::JsonObject& event : events) {
        kinds[event.get_string("event").value_or("?")]++;
    }
    EXPECT_EQ(kinds["item-finish"], host->items().size());
    EXPECT_EQ(kinds["worker-session"], 2u);
    EXPECT_EQ(kinds["worker-session-end"], 2u);
    EXPECT_EQ(kinds["metrics-snapshot"], 2u);
}

TEST(ServeWorker, Minor1CoordinatorNegotiatesNoStreaming) {
    // A coordinator that never announces proto_minor (a minor-1 peer)
    // must get the legacy behavior: no Telemetry frames on the socket,
    // ack still carries the worker's minor for newer coordinators.
    DaemonHandle daemon(toy_factory("toy-fp"));
    const Fd fd = connect_to(daemon.endpoint());
    ASSERT_TRUE(
        wire::write_message(fd.get(), wire::MessageType::Hello,
                            obs::JsonObject()
                                .set("component", "toy")
                                .set("trace", std::string("00000000000000ff"))
                                .set("telemetry_interval_ms", std::uint64_t{0})
                                .to_line()));

    wire::Decoder decoder;
    auto next_message = [&]() {
        wire::Message message;
        for (;;) {
            const auto status = decoder.next(&message);
            if (status == wire::Decoder::Status::Ok) return message;
            EXPECT_EQ(status, wire::Decoder::Status::NeedMore);
            char chunk[4096];
            const ssize_t got = ::read(fd.get(), chunk, sizeof chunk);
            if (got <= 0) {
                ADD_FAILURE() << "connection closed mid-read";
                return message;
            }
            decoder.feed(chunk, static_cast<std::size_t>(got));
        }
    };

    const wire::Message ack = next_message();
    ASSERT_EQ(ack.type, wire::MessageType::HelloAck);
    const auto payload = obs::JsonObject::parse(ack.payload);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(payload->get_uint("proto_minor"),
              std::optional<std::uint64_t>(wire::kProtocolMinor));

    ASSERT_TRUE(wire::write_message(
        fd.get(), wire::MessageType::Work,
        obs::JsonObject().set("item", std::uint64_t{0}).set("mutant", "m").to_line()));
    const wire::Message result = next_message();
    // Streaming fields were present in the Hello but the peer is
    // minor 1, so the very next frame is the Result — no Telemetry
    // frame precedes it (a minor-1 decoder would reject type 9).
    EXPECT_EQ(result.type, wire::MessageType::Result);
    ASSERT_TRUE(wire::write_message(fd.get(), wire::MessageType::Shutdown, ""));
}

// --- Streamed-span codec ---------------------------------------------------

TEST(SpanCodec, RoundTripsEveryField) {
    obs::TraceEvent event;
    event.name = "CObList::AddHead";
    event.category = "method-call";
    event.ts_us = 123456789;
    event.dur_us = 42;
    event.tid = 3;
    event.actor = 2;
    event.span_id = 0xdeadbeefcafe0001ULL;
    event.parent_id = 0x0123456789abcdefULL;

    std::string line;
    append_span_line(line, event);
    ASSERT_TRUE(is_span_line(line));

    const auto fast = parse_span_line(line);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(fast->name, event.name);
    EXPECT_EQ(fast->category, event.category);
    EXPECT_EQ(fast->ts_us, event.ts_us);
    EXPECT_EQ(fast->dur_us, event.dur_us);
    EXPECT_EQ(fast->tid, event.tid);
    EXPECT_EQ(fast->actor, event.actor);
    EXPECT_EQ(fast->span_id, event.span_id);
    EXPECT_EQ(fast->parent_id, event.parent_id);
    EXPECT_EQ(fast->args.size(), 0u);

    // The canonical line is ordinary JSON: the generic path must agree
    // with the fast path field for field (the fallback contract).
    const auto body = obs::JsonObject::parse(line);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(body->get_string("kind").value_or(""), "span");
    const auto generic = obs::trace_event_from_json(*body);
    ASSERT_TRUE(generic.has_value());
    EXPECT_EQ(generic->name, fast->name);
    EXPECT_EQ(generic->span_id, fast->span_id);
    EXPECT_EQ(generic->parent_id, fast->parent_id);
}

TEST(SpanCodec, ArgsBearingSpanFallsBackToGenericParse) {
    // An args value is itself a JSON line, so its quotes arrive escaped
    // and the escape-free fast scanner must hand the line to the
    // generic parser — which recovers the args object exactly.
    obs::TraceEvent event;
    event.name = "s3.IndVarRepExt.m_pNodeFree";
    event.category = "mutant-evaluation";
    event.span_id = 0x3ULL;
    event.args.set("case", "s3.t1.c0").set("call", std::uint64_t{7});

    std::string line;
    append_span_line(line, event);
    ASSERT_TRUE(is_span_line(line));
    EXPECT_FALSE(parse_span_line(line).has_value());

    const auto body = obs::JsonObject::parse(line);
    ASSERT_TRUE(body.has_value());
    const auto generic = obs::trace_event_from_json(*body);
    ASSERT_TRUE(generic.has_value());
    EXPECT_EQ(generic->name, event.name);
    EXPECT_EQ(generic->args.to_line(), event.args.to_line());
}

TEST(SpanCodec, RootSpanOmitsParent) {
    obs::TraceEvent event;
    event.name = "items";
    event.category = "phase";
    event.span_id = 0x1ULL;

    std::string line;
    append_span_line(line, event);
    const auto fast = parse_span_line(line);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(fast->parent_id, 0u);
    EXPECT_EQ(fast->args.size(), 0u);
    EXPECT_EQ(line.find("parent"), std::string::npos);
    EXPECT_EQ(line.find("args"), std::string::npos);
}

TEST(SpanCodec, EscapedNameFallsBackToGenericParse) {
    obs::TraceEvent event;
    event.name = "weird \"quoted\" name\n";
    event.category = "method-call";
    event.span_id = 0x2ULL;

    std::string line;
    append_span_line(line, event);
    // The strict scanner refuses escapes; the generic path must still
    // recover the exact name (the write side escaped it correctly).
    EXPECT_FALSE(parse_span_line(line).has_value());
    const auto body = obs::JsonObject::parse(line);
    ASSERT_TRUE(body.has_value());
    const auto generic = obs::trace_event_from_json(*body);
    ASSERT_TRUE(generic.has_value());
    EXPECT_EQ(generic->name, event.name);
}

TEST(SpanCodec, RejectsNonCanonicalLines) {
    EXPECT_FALSE(is_span_line(R"({"kind":"event","data":"{}"})"));
    // Same JSON value, different field order: generic-path territory.
    EXPECT_FALSE(is_span_line(
        R"({"name":"x","cat":"phase","kind":"span","ts":0})"));
    EXPECT_FALSE(parse_span_line(R"({"kind":"span","name":"x"})").has_value());
    EXPECT_FALSE(parse_span_line("").has_value());
}

}  // namespace
}  // namespace stc::serve
