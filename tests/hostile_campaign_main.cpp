// CI isolation gate: run the Hostile component's mutation campaign in
// sandbox workers (STC_HOSTILE_FAULTS=1 makes the faults REAL — null
// derefs, busy loops, allocation bombs) and print one audit line per
// mutant:
//
//   <mutant-id> <fate> <reason> <sandbox-kind|->
//
// Exit status: 0 when the campaign completed with a clean baseline and
// every sandbox-terminated item was classified; 1 otherwise.  CI greps
// the lines for crash-signal:/timeout/resource-limit to prove the real
// faults were contained (see .github/workflows/ci.yml).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "stc/campaign/scheduler.h"
#include "hostile_component.h"

// Sanitizer runtimes intercept the real SIGSEGV and need far more
// address space than the RLIMIT_AS cap allows; the gate is meaningless
// under them, so it self-skips (the ASan CI job runs the full ctest
// suite, which includes this binary).
#if defined(__SANITIZE_ADDRESS__)
#define STC_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STC_UNDER_ASAN 1
#endif
#endif
#ifndef STC_UNDER_ASAN
#define STC_UNDER_ASAN 0
#endif

int main(int argc, char** argv) {
    using namespace stc;

    if (STC_UNDER_ASAN) {
        std::cerr << "hostile campaign: skipped under sanitizers\n";
        return 0;
    }

    campaign::CampaignOptions options;
    options.jobs = 2;
    options.isolate = true;
    // The deadline must leave the Gobble allocation bomb enough CPU to
    // actually reach RLIMIT_AS on a loaded single-core runner; 600ms is
    // too tight and misclassifies the bomb as a timeout.
    options.sandbox.timeout_ms = 2000;
    options.sandbox.rlimit_as_mb = 512;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::uint64_t {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return std::strtoull(argv[++i], nullptr, 10);
        };
        if (arg == "--jobs") {
            options.jobs = static_cast<std::size_t>(value());
        } else if (arg == "--timeout-ms") {
            options.sandbox.timeout_ms = value();
        } else if (arg == "--rlimit-as") {
            options.sandbox.rlimit_as_mb = value();
        } else if (arg == "--no-isolate") {
            options.isolate = false;
        } else if (arg == "--store") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --store\n";
                return 2;
            }
            options.store_path = argv[++i];
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }

    if (!testing::hostile_faults_enabled() && options.isolate) {
        std::cerr << "warning: STC_HOSTILE_FAULTS is not set; faults will "
                     "throw instead of crashing\n";
    }

    const tspec::ComponentSpec spec = testing::hostile_spec();
    reflect::Registry registry;
    registry.add(testing::hostile_binding());
    const driver::TestSuite suite = driver::DriverGenerator(spec).generate();
    const auto mutants =
        mutation::enumerate_mutants(testing::hostile_descriptors(), "Hostile");

    const campaign::CampaignScheduler scheduler(registry, options);
    const campaign::CampaignResult result = scheduler.run(suite, mutants);

    bool ok = result.run.baseline_clean &&
              result.run.outcomes.size() == mutants.size();
    for (const auto& outcome : result.run.outcomes) {
        std::cout << outcome.mutant->id() << ' '
                  << mutation::to_string(outcome.fate) << ' '
                  << oracle::to_string(outcome.reason) << ' '
                  << (outcome.sandbox.empty() ? "-" : outcome.sandbox) << "\n";
        // A sandbox termination must always have been folded into a
        // Killed/Crash classification — never left dangling.
        if (!outcome.sandbox.empty() &&
            outcome.fate != mutation::MutantFate::Killed) {
            ok = false;
        }
    }
    std::cerr << "hostile campaign: " << result.run.outcomes.size()
              << " mutant(s), " << result.run.killed() << " killed, "
              << result.stats.respawns << " worker respawn(s)\n";
    return ok ? 0 : 1;
}
