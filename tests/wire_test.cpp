// stc::wire framing tests: the versioned message codec every `concat
// serve` / `concat dispatch` socket speaks and the raw frame codec the
// sandbox pipes speak (docs/FORMATS.md §10).  The torn-input sweep is
// the load-bearing one — a frame truncated at EVERY byte offset must
// park the decoder in NeedMore, never crash, never produce a message —
// because that is exactly the byte stream a SIGKILLed peer leaves
// behind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stc/wire/frame.h"

namespace stc::wire {
namespace {

const MessageType kAllTypes[] = {
    MessageType::Hello, MessageType::HelloAck, MessageType::Work,
    MessageType::Result, MessageType::Ping,    MessageType::Pong,
    MessageType::Error, MessageType::Shutdown, MessageType::Telemetry,
};

// --------------------------------------------------------------- helpers

TEST(WireBytes, U32RoundTripIsLittleEndian) {
    unsigned char buffer[4];
    encode_u32le(0x11223344u, buffer);
    EXPECT_EQ(buffer[0], 0x44u);
    EXPECT_EQ(buffer[1], 0x33u);
    EXPECT_EQ(buffer[2], 0x22u);
    EXPECT_EQ(buffer[3], 0x11u);
    EXPECT_EQ(decode_u32le(buffer), 0x11223344u);

    for (const std::uint32_t value : {0u, 1u, 0xFFu, 0xFFFFFFFFu}) {
        encode_u32le(value, buffer);
        EXPECT_EQ(decode_u32le(buffer), value);
    }
}

TEST(WireBytes, EveryDeclaredTypeIsKnownAndNamed) {
    for (const MessageType type : kAllTypes) {
        EXPECT_TRUE(message_type_known(static_cast<std::uint8_t>(type)));
        EXPECT_STRNE(to_string(type), "");
    }
    EXPECT_FALSE(message_type_known(0));
    EXPECT_FALSE(message_type_known(10));
    EXPECT_FALSE(message_type_known(255));
}

// --------------------------------------------------- versioned messages

TEST(WireMessage, HeaderLayoutMatchesSpec) {
    const std::string bytes = encode_message(MessageType::Ping, "abc");
    ASSERT_EQ(bytes.size(), kMessageHeaderSize + 3);
    EXPECT_EQ(bytes.substr(0, 4), "STCW");
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[4]), kProtocolVersion);
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[5]),
              static_cast<std::uint8_t>(MessageType::Ping));
    const unsigned char* length =
        reinterpret_cast<const unsigned char*>(bytes.data()) + 6;
    EXPECT_EQ(decode_u32le(length), 3u);
    EXPECT_EQ(bytes.substr(kMessageHeaderSize), "abc");
}

TEST(WireMessage, RoundTripEveryTypeThroughDecoder) {
    for (const MessageType type : kAllTypes) {
        const std::string payload =
            std::string("payload-for-") + to_string(type);
        Decoder decoder;
        decoder.feed(encode_message(type, payload));
        Message message;
        ASSERT_EQ(decoder.next(&message), Decoder::Status::Ok)
            << to_string(type);
        EXPECT_EQ(message.type, type);
        EXPECT_EQ(message.payload, payload);
        EXPECT_EQ(decoder.next(&message), Decoder::Status::NeedMore);
        EXPECT_EQ(decoder.pending_bytes(), 0u);
    }
}

TEST(WireMessage, EmptyPayloadRoundTrips) {
    Decoder decoder;
    decoder.feed(encode_message(MessageType::Shutdown, ""));
    Message message;
    ASSERT_EQ(decoder.next(&message), Decoder::Status::Ok);
    EXPECT_EQ(message.type, MessageType::Shutdown);
    EXPECT_TRUE(message.payload.empty());
}

TEST(WireMessage, TruncationAtEveryByteOffsetIsNeedMore) {
    const std::string full =
        encode_message(MessageType::Work, "{\"item\":1,\"mutant\":\"m\"}");
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        Decoder decoder;
        decoder.feed(full.data(), cut);
        Message message;
        EXPECT_EQ(decoder.next(&message), Decoder::Status::NeedMore)
            << "cut at " << cut;
        // The remainder completes the frame — a torn prefix loses
        // nothing once the rest arrives.
        decoder.feed(full.data() + cut, full.size() - cut);
        ASSERT_EQ(decoder.next(&message), Decoder::Status::Ok)
            << "cut at " << cut;
        EXPECT_EQ(message.payload, "{\"item\":1,\"mutant\":\"m\"}");
    }
}

TEST(WireMessage, TelemetryFrameTruncationAtEveryByteOffsetIsNeedMore) {
    // The minor-2 streaming frame gets the same torn-input guarantee as
    // Work: a worker SIGKILLed mid-telemetry-push must leave the
    // coordinator's decoder parked in NeedMore, not crashed or confused.
    const std::string payload =
        "{\"kind\":\"span\",\"name\":\"work-item\",\"cat\":\"serve\","
        "\"ts\":12,\"dur\":34,\"tid\":0,\"actor\":1,"
        "\"span\":\"00000000000000ab\",\"parent\":\"00000000000000cd\"}";
    const std::string full = encode_message(MessageType::Telemetry, payload);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        Decoder decoder;
        decoder.feed(full.data(), cut);
        Message message;
        EXPECT_EQ(decoder.next(&message), Decoder::Status::NeedMore)
            << "cut at " << cut;
        decoder.feed(full.data() + cut, full.size() - cut);
        ASSERT_EQ(decoder.next(&message), Decoder::Status::Ok)
            << "cut at " << cut;
        EXPECT_EQ(message.type, MessageType::Telemetry);
        EXPECT_EQ(message.payload, payload);
    }
}

TEST(WireMessage, ByteAtATimeFeedDecodesAStreamOfMessages) {
    std::string stream;
    for (const MessageType type : kAllTypes) {
        stream += encode_message(type, to_string(type));
    }
    Decoder decoder;
    std::vector<Message> seen;
    for (const char byte : stream) {
        decoder.feed(&byte, 1);
        Message message;
        while (decoder.next(&message) == Decoder::Status::Ok) {
            seen.push_back(message);
        }
    }
    ASSERT_EQ(seen.size(), std::size(kAllTypes));
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].type, kAllTypes[i]);
        EXPECT_EQ(seen[i].payload, to_string(kAllTypes[i]));
    }
}

TEST(WireMessage, BadMagicIsRejectedAndPoisons) {
    std::string bytes = encode_message(MessageType::Ping, "x");
    bytes[0] = 'X';
    Decoder decoder;
    decoder.feed(bytes);
    Message message;
    EXPECT_EQ(decoder.next(&message), Decoder::Status::BadMagic);
    // Poisoned: more (valid) bytes do not resurrect the stream —
    // framing has no resync point.
    decoder.feed(encode_message(MessageType::Ping, "y"));
    EXPECT_EQ(decoder.next(&message), Decoder::Status::BadMagic);
}

TEST(WireMessage, VersionMismatchReportsPeerVersion) {
    std::string bytes = encode_message(MessageType::Hello, "{}");
    bytes[4] = static_cast<char>(kProtocolVersion + 1);
    Decoder decoder;
    decoder.feed(bytes);
    Message message;
    EXPECT_EQ(decoder.next(&message), Decoder::Status::BadVersion);
    EXPECT_EQ(decoder.peer_version(), kProtocolVersion + 1);
    EXPECT_EQ(decoder.next(&message), Decoder::Status::BadVersion);
}

TEST(WireMessage, UnknownTypeByteIsBadType) {
    std::string bytes = encode_message(MessageType::Hello, "{}");
    bytes[5] = static_cast<char>(0xEE);
    Decoder decoder;
    decoder.feed(bytes);
    Message message;
    EXPECT_EQ(decoder.next(&message), Decoder::Status::BadType);
}

TEST(WireMessage, HostileLengthPrefixIsOversizedNotAnAllocation) {
    std::string bytes = encode_message(MessageType::Work, "");
    unsigned char length[4];
    encode_u32le(kMaxFramePayload + 1, length);
    for (int i = 0; i < 4; ++i) bytes[6 + i] = static_cast<char>(length[i]);
    Decoder decoder;
    decoder.feed(bytes);
    Message message;
    EXPECT_EQ(decoder.next(&message), Decoder::Status::Oversized);
}

TEST(WireMessage, StatusNamesExist) {
    for (const Decoder::Status status :
         {Decoder::Status::NeedMore, Decoder::Status::Ok,
          Decoder::Status::BadMagic, Decoder::Status::BadVersion,
          Decoder::Status::BadType, Decoder::Status::Oversized}) {
        EXPECT_STRNE(to_string(status), "");
    }
}

// ------------------------------------------------------------ raw frames

TEST(WireRawFrame, IncrementalBufferReassemblesSplitFrames) {
    unsigned char length[4];
    encode_u32le(5, length);
    std::string bytes(reinterpret_cast<const char*>(length), 4);
    bytes += "hello";
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        RawFrameBuffer buffer;
        buffer.feed(bytes.data(), cut);
        EXPECT_FALSE(buffer.take_frame().has_value()) << "cut at " << cut;
        EXPECT_FALSE(buffer.oversized());
        buffer.feed(bytes.data() + cut, bytes.size() - cut);
        const auto frame = buffer.take_frame();
        ASSERT_TRUE(frame.has_value()) << "cut at " << cut;
        EXPECT_EQ(*frame, "hello");
        EXPECT_EQ(buffer.pending_bytes(), 0u);
    }
}

TEST(WireRawFrame, OversizedPrefixFlagsTheBufferUnusable) {
    unsigned char length[4];
    encode_u32le(kMaxFramePayload + 1, length);
    RawFrameBuffer buffer;
    buffer.feed(reinterpret_cast<const char*>(length), 4);
    EXPECT_FALSE(buffer.take_frame().has_value());
    EXPECT_TRUE(buffer.oversized());
}

}  // namespace
}  // namespace stc::wire
