// Fast-tier tests: the coverage-signature index, checkpoint
// memoization, and — the load-bearing contract — the differential
// harness proving that pruned campaigns produce byte-identical fates,
// reports and stored JSONL records to unpruned ones, at every jobs
// count and under --isolate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "stc/campaign/jsonl.h"
#include "stc/campaign/scheduler.h"
#include "stc/core/self_testable.h"
#include "stc/mfc/component.h"
#include "stc/mutation/coverage.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/prune.h"
#include "stc/mutation/report.h"
#include "stc/support/error.h"
#include "test_component.h"

namespace stc::mutation {
namespace {

/// Counter binding plus the behavioural-copy capability the memoization
/// half needs (the stock test binding registers none, which must keep
/// pruning working with memoization silently off).
reflect::ClassBinding counter_binding_with_cloner() {
    reflect::ClassBinding binding = stc::testing::counter_binding();
    binding.set_cloner([](const void* object) -> void* {
        return new stc::testing::Counter(
            *static_cast<const stc::testing::Counter*>(object));
    });
    return binding;
}

bool calls_inc(const driver::TestCase& tc) {
    return std::any_of(tc.calls.begin(), tc.calls.end(),
                       [](const driver::MethodCall& call) {
                           return call.method_name == "Inc";
                       });
}

class PruneTest : public ::testing::Test {
protected:
    PruneTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(counter_binding_with_cloner());
        suite_ = driver::DriverGenerator(spec_).generate();
        mutants_ = enumerate_mutants(stc::testing::counter_descriptors(),
                                     "Counter");
    }

    [[nodiscard]] const reflect::ClassBinding& binding() const {
        return registry_.at("Counter");
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestSuite suite_;
    std::vector<Mutant> mutants_;
};

// ------------------------------------------------------- coverage index

TEST_F(PruneTest, GoldenRunRecordsFirstHitPerSite) {
    const CoveredRun covered =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite_);
    ASSERT_EQ(covered.index.cases().size(), suite_.size());
    ASSERT_FALSE(mutants_.empty());
    const Mutant& inc_mutant = mutants_.front();  // every mutant is in Inc

    for (const driver::TestCase& tc : suite_.cases) {
        const auto* coverage = covered.index.find(tc.id);
        ASSERT_NE(coverage, nullptr) << tc.id;
        if (!calls_inc(tc)) continue;
        // CaseObserver convention: calls[0] is the constructor (index
        // 0 covers construction + entry state), so the first body call
        // that consults a site IS its position in `calls`.
        std::size_t first_inc = 0;
        for (std::size_t i = 1; i < tc.calls.size(); ++i) {
            if (tc.calls[i].method_name == "Inc") {
                first_inc = i;
                break;
            }
        }
        ASSERT_GT(first_inc, 0u) << tc.id;
        EXPECT_TRUE(covered.index.covers(tc.id, inc_mutant)) << tc.id;
        EXPECT_EQ(covered.index.first_hit(tc.id, inc_mutant), first_inc)
            << tc.id;
    }
}

TEST_F(PruneTest, CaseReachingNoSiteIsIndexedEmpty) {
    const CoveredRun covered =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite_);
    bool saw_siteless_case = false;
    for (const driver::TestCase& tc : suite_.cases) {
        if (calls_inc(tc)) continue;
        saw_siteless_case = true;
        const auto* coverage = covered.index.find(tc.id);
        ASSERT_NE(coverage, nullptr) << tc.id;
        EXPECT_TRUE(coverage->first_hit.empty()) << tc.id;
        for (const Mutant& m : mutants_) {
            EXPECT_FALSE(covered.index.covers(tc.id, m)) << tc.id;
            EXPECT_FALSE(covered.index.first_hit(tc.id, m).has_value());
        }
    }
    // The Counter TFM has Get-only transactions; if this stops holding
    // the test must move to a suite that still has an uncovering case.
    ASSERT_TRUE(saw_siteless_case);
}

TEST_F(PruneTest, IndexFingerprintTracksSuiteAndCoverage) {
    const CoveredRun a =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite_);
    const CoveredRun b =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite_);
    EXPECT_EQ(a.index.fingerprint(), b.index.fingerprint());
    EXPECT_EQ(a.index.pair_count(), b.index.pair_count());

    driver::TestSuite shorter = suite_;
    ASSERT_GT(shorter.cases.size(), 1u);
    shorter.cases.pop_back();
    const CoveredRun c =
        run_with_coverage(registry_, driver::RunnerOptions{}, shorter);
    EXPECT_NE(a.index.fingerprint(), c.index.fingerprint());
}

TEST_F(PruneTest, NestedCoverageScopeThrows) {
    CoverageIndex index;
    CoverageRecorder recorder(index);
    const CoverageScope outer(recorder);
    EXPECT_THROW(CoverageScope inner(recorder), ContractError);
}

// ------------------------------------------------ pruned single mutants

TEST_F(PruneTest, UnreachedMutantIsNotCoveredWithoutExecuting) {
    // Sub-suite of the cases that never call Inc: every mutant's site is
    // provably unreached, so the pruned evaluator must classify
    // NotCovered from the index alone, executing zero pairs.
    driver::TestSuite uncovering;
    uncovering.class_name = suite_.class_name;
    uncovering.seed = suite_.seed;
    for (const driver::TestCase& tc : suite_.cases) {
        if (!calls_inc(tc)) uncovering.cases.push_back(tc);
    }
    ASSERT_FALSE(uncovering.cases.empty());

    const driver::TestRunner runner(registry_, {});
    const CoveredRun covered =
        run_with_coverage(registry_, driver::RunnerOptions{}, uncovering);
    const auto golden = oracle::GoldenRecord::from(covered.result);
    const PrunePlan plan =
        build_prune_plan(runner, binding(), uncovering, covered.index,
                         nullptr, nullptr, {});
    const EngineOptions options;

    for (const Mutant& mutant : mutants_) {
        PruneStats stats;
        const MutantOutcome pruned = evaluate_mutant_pruned(
            mutant, runner, binding(), uncovering, golden, nullptr, nullptr,
            {}, plan, options, &stats);
        EXPECT_EQ(pruned.fate, MutantFate::NotCovered) << mutant.id();
        EXPECT_FALSE(pruned.hit_by_suite);
        EXPECT_EQ(stats.executed_pairs, 0u);
        EXPECT_EQ(stats.pruned_pairs, uncovering.cases.size());

        const MutantOutcome full = evaluate_mutant(
            mutant,
            [&] { return runner.run(uncovering); }, golden, {}, {}, options);
        EXPECT_EQ(full.fate, pruned.fate) << mutant.id();
        EXPECT_EQ(full.reason, pruned.reason) << mutant.id();
        EXPECT_EQ(full.hit_by_suite, pruned.hit_by_suite) << mutant.id();
    }
}

TEST_F(PruneTest, MemoizationResumesPastTheUninstrumentedPrefix) {
    // Hand-built case whose first site consult happens at body call 4:
    // the plan must checkpoint there, and the pruned evaluator must skip
    // the three un-mutated calls before it — fate-identically.
    auto call = [](const char* id, const char* name) {
        driver::MethodCall c;
        c.method_id = id;
        c.method_name = name;
        return c;
    };
    driver::TestCase tc;
    tc.id = "TCmemo";
    tc.transaction_text = "hand-built";
    driver::MethodCall ctor = call("m1", "Counter");
    ctor.is_constructor = true;
    tc.calls = {ctor,
                call("m7", "Get"),
                call("m6", "Reset"),
                call("m7", "Get"),
                call("m4", "Inc"),
                call("m7", "Get")};
    driver::TestSuite suite;
    suite.class_name = "Counter";
    suite.cases = {tc};

    const driver::TestRunner runner(registry_, {});
    const CoveredRun covered =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite);
    ASSERT_EQ(covered.index.first_hit(tc.id, mutants_.front()), 4u);
    const auto golden = oracle::GoldenRecord::from(covered.result);
    const PrunePlan plan = build_prune_plan(runner, binding(), suite,
                                            covered.index, nullptr, nullptr,
                                            {});
    ASSERT_EQ(plan.case_plans.size(), 1u);
    ASSERT_FALSE(plan.case_plans[0].checkpoints.empty());
    EXPECT_EQ(plan.case_plans[0].checkpoints.back().resume_call, 4u);

    const EngineOptions options;
    for (const Mutant& mutant : mutants_) {
        PruneStats stats;
        const MutantOutcome pruned = evaluate_mutant_pruned(
            mutant, runner, binding(), suite, golden, nullptr, nullptr, {},
            plan, options, &stats);
        EXPECT_EQ(stats.executed_pairs, 1u) << mutant.id();
        EXPECT_EQ(stats.memoized_pairs, 1u) << mutant.id();
        EXPECT_EQ(stats.memoized_calls, 3u) << mutant.id();

        const MutantOutcome full = evaluate_mutant(
            mutant, [&] { return runner.run(suite); }, golden, {}, {},
            options);
        EXPECT_EQ(full.fate, pruned.fate) << mutant.id();
        EXPECT_EQ(full.reason, pruned.reason) << mutant.id();
        EXPECT_EQ(full.hit_by_suite, pruned.hit_by_suite) << mutant.id();
    }
}

TEST_F(PruneTest, ManualOracleRejectsPrunedEvaluation) {
    const driver::TestRunner runner(registry_, {});
    const CoveredRun covered =
        run_with_coverage(registry_, driver::RunnerOptions{}, suite_);
    const auto golden = oracle::GoldenRecord::from(covered.result);
    const PrunePlan plan = build_prune_plan(runner, binding(), suite_,
                                            covered.index, nullptr, nullptr,
                                            {});
    EngineOptions options;
    options.manual_oracle = [](const std::string&, const std::string&) {
        return true;
    };
    EXPECT_THROW(
        (void)evaluate_mutant_pruned(mutants_.front(), runner, binding(),
                                     suite_, golden, nullptr, nullptr, {},
                                     plan, options),
        ContractError);
}

// --------------------------------------------- campaign-level contracts

using StoredFates =
    std::map<std::string, std::tuple<std::string, std::string, bool, bool>>;

/// fate/reason/hit/probe_kill per mutant id, parsed back out of a
/// result-store JSONL file (header and malformed lines skipped).
StoredFates read_store_fates(const std::string& path) {
    StoredFates fates;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto object = campaign::JsonObject::parse(line);
        if (!object) continue;
        const auto record = campaign::ItemRecord::from_json(*object);
        if (!record) continue;
        fates[record->mutant_id] = {record->fate, record->reason,
                                    record->hit_by_suite,
                                    record->killed_by_probe};
    }
    return fates;
}

void expect_same_outcomes(const MutationRun& a, const MutationRun& b) {
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].mutant, b.outcomes[i].mutant) << i;
        EXPECT_EQ(a.outcomes[i].fate, b.outcomes[i].fate) << i;
        EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
        EXPECT_EQ(a.outcomes[i].hit_by_suite, b.outcomes[i].hit_by_suite) << i;
        EXPECT_EQ(a.outcomes[i].killed_by_probe, b.outcomes[i].killed_by_probe)
            << i;
    }
}

std::string render(const campaign::CampaignResult& result,
                   const driver::TestSuite& suite) {
    std::ostringstream os;
    render_campaign_report(os, result.run, suite.class_name, suite.size(),
                           suite.seed);
    return os.str();
}

/// The differential harness: one generated Counter campaign per seed,
/// executed unpruned (the reference) and pruned at --jobs 1/2/4 and
/// under --isolate; fates, rendered reports, scores and stored JSONL
/// records must be byte-identical throughout.
class PruneDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruneDifferential, PrunedFatesReportsAndStoresMatchUnpruned) {
    const std::uint64_t seed = GetParam();
    const tspec::ComponentSpec spec = stc::testing::counter_spec();
    reflect::Registry registry;
    registry.add(counter_binding_with_cloner());

    driver::GeneratorOptions generator;
    generator.seed = seed;
    generator.cases_per_transaction = 2;
    const driver::TestSuite suite =
        driver::DriverGenerator(spec, generator).generate();
    driver::GeneratorOptions probe_options = generator;
    probe_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    probe_options.cases_per_transaction = 3;
    const driver::TestSuite probe =
        driver::DriverGenerator(spec, probe_options).generate();
    const auto mutants =
        enumerate_mutants(stc::testing::counter_descriptors(), "Counter");

    auto run_campaign = [&](bool prune, std::size_t jobs, bool isolate,
                            const std::string& store_path) {
        std::remove(store_path.c_str());  // fresh run, not a resume
        campaign::CampaignOptions options;
        options.seed = seed;
        options.jobs = jobs;
        options.prune = prune;
        options.isolate = isolate;
        options.store_path = store_path;
        const campaign::CampaignScheduler scheduler(registry, options);
        return scheduler.run(suite, mutants, &probe);
    };

    const std::string dir = ::testing::TempDir();
    const std::string tag = std::to_string(seed);
    const std::string baseline_store = dir + "prune_base_" + tag + ".jsonl";
    const campaign::CampaignResult baseline =
        run_campaign(false, 1, false, baseline_store);
    EXPECT_FALSE(baseline.stats.pruned);

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
        const std::string store =
            dir + "prune_j" + std::to_string(jobs) + "_" + tag + ".jsonl";
        const campaign::CampaignResult pruned =
            run_campaign(true, jobs, false, store);
        EXPECT_TRUE(pruned.stats.pruned);
        expect_same_outcomes(baseline.run, pruned.run);
        EXPECT_EQ(render(baseline, suite), render(pruned, suite));
        EXPECT_DOUBLE_EQ(baseline.run.score(), pruned.run.score());
        EXPECT_DOUBLE_EQ(baseline.run.covered_score(),
                         pruned.run.covered_score());
        EXPECT_EQ(read_store_fates(baseline_store), read_store_fates(store));
        // The tier must actually avoid work, not just agree.
        EXPECT_GT(pruned.stats.pruned_pairs, 0u);
        EXPECT_LT(pruned.stats.executed_pairs,
                  mutants.size() * (suite.size() + probe.size()));
    }

    const std::string isolate_store = dir + "prune_iso_" + tag + ".jsonl";
    const campaign::CampaignResult isolated =
        run_campaign(true, 1, true, isolate_store);
    EXPECT_TRUE(isolated.stats.pruned);
    expect_same_outcomes(baseline.run, isolated.run);
    EXPECT_EQ(render(baseline, suite), render(isolated, suite));
    EXPECT_EQ(read_store_fates(baseline_store),
              read_store_fates(isolate_store));
    EXPECT_GT(isolated.stats.pruned_pairs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneDifferential,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST_F(PruneTest, FingerprintSeparatesPrunedFromUnprunedStores) {
    const driver::TestSuite probe;  // unused: fingerprint only
    campaign::CampaignOptions pruned_options;
    pruned_options.prune = true;
    campaign::CampaignOptions unpruned_options;
    unpruned_options.prune = false;
    const campaign::CampaignScheduler pruned(registry_, pruned_options);
    const campaign::CampaignScheduler unpruned(registry_, unpruned_options);
    EXPECT_NE(pruned.fingerprint(suite_, mutants_, nullptr),
              unpruned.fingerprint(suite_, mutants_, nullptr));

    // A manual oracle disengages the tier, so the fingerprint must fall
    // back to the unpruned identity (same rule the scheduler applies
    // when deciding whether to prune at all).
    campaign::CampaignOptions manual_options;
    manual_options.prune = true;
    manual_options.engine.manual_oracle =
        [](const std::string&, const std::string&) { return true; };
    campaign::CampaignOptions manual_unpruned = manual_options;
    manual_unpruned.prune = false;
    const campaign::CampaignScheduler a(registry_, manual_options);
    const campaign::CampaignScheduler b(registry_, manual_unpruned);
    EXPECT_EQ(a.fingerprint(suite_, mutants_, nullptr),
              b.fingerprint(suite_, mutants_, nullptr));
}

TEST_F(PruneTest, PrunedStoreIsNotResumedUnpruned) {
    const std::string store =
        ::testing::TempDir() + "prune_invalidation.jsonl";
    std::remove(store.c_str());
    campaign::CampaignOptions options;
    options.prune = true;
    options.store_path = store;
    const campaign::CampaignScheduler pruned(registry_, options);
    const auto first = pruned.run(suite_, mutants_, nullptr);
    EXPECT_EQ(first.stats.resumed, 0u);
    EXPECT_EQ(first.stats.executed, mutants_.size());

    // Same tier, same store: everything resumes.
    const auto again = pruned.run(suite_, mutants_, nullptr);
    EXPECT_EQ(again.stats.resumed, mutants_.size());
    EXPECT_EQ(again.stats.executed, 0u);

    // Pruning off: different fingerprint, so the store is invalidated
    // and rebuilt from scratch — fates produced under a different
    // execution tier never resume (mirroring the --model rule).
    options.prune = false;
    const campaign::CampaignScheduler unpruned(registry_, options);
    const auto second = unpruned.run(suite_, mutants_, nullptr);
    EXPECT_EQ(second.stats.resumed, 0u);
    EXPECT_EQ(second.stats.executed, mutants_.size());

    // And back on: the unpruned store is equally foreign to the pruned
    // tier — invalidated again, every item re-executed.
    options.prune = true;
    const campaign::CampaignScheduler repruned(registry_, options);
    const auto third = repruned.run(suite_, mutants_, nullptr);
    EXPECT_EQ(third.stats.resumed, 0u);
    EXPECT_EQ(third.stats.executed, mutants_.size());
}

// The real component: CObList has pointer-valued arguments (checkpoint
// signatures must be identity-exact) and a mixed instrumented /
// uninstrumented method population — the closest in-tree stand-in for
// the paper's production component.
TEST(PruneCObList, PrunedCampaignMatchesUnprunedOnTheRealComponent) {
    mfc::ElementPool pool;
    core::SelfTestableComponent component(mfc::coblist_spec(),
                                          mfc::coblist_binding());
    const driver::CompletionRegistry completions = mfc::make_completions(pool);
    component.set_completions(completions);
    driver::GeneratorOptions generator;
    generator.seed = 7;
    const driver::TestSuite suite = component.generate_tests(generator);
    const auto mutants =
        enumerate_mutants(mfc::descriptors(), suite.class_name);
    ASSERT_FALSE(mutants.empty());

    auto run_campaign = [&](bool prune, std::size_t jobs) {
        campaign::CampaignOptions options;
        options.seed = generator.seed;
        options.prune = prune;
        options.jobs = jobs;
        const campaign::CampaignScheduler scheduler(component.registry(),
                                                    options);
        return scheduler.run(suite, mutants, nullptr);
    };

    const campaign::CampaignResult baseline = run_campaign(false, 2);
    const campaign::CampaignResult pruned = run_campaign(true, 2);
    expect_same_outcomes(baseline.run, pruned.run);
    EXPECT_EQ(render(baseline, suite), render(pruned, suite));
    EXPECT_TRUE(pruned.stats.pruned);
    // Strictly fewer executed pairs, and full accounting: every
    // (mutant, case) pair is either executed or pruned.
    const std::uint64_t total =
        static_cast<std::uint64_t>(mutants.size()) * suite.size();
    EXPECT_EQ(pruned.stats.executed_pairs + pruned.stats.pruned_pairs, total);
    EXPECT_LT(pruned.stats.executed_pairs, total);
    EXPECT_GT(pruned.stats.pruned_pairs, 0u);
}

}  // namespace
}  // namespace stc::mutation
