// Unit tests of the stc::fuzz subsystem — the coverage-guided fuzz
// loop, the delta-debugging shrinker, and the replayable regression
// corpus — exercised against the instrumented Counter component with
// its hand-countable mutant population (test_component.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/corpus.h"
#include "stc/fuzz/fuzzer.h"
#include "stc/fuzz/shrink.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"
#include "stc/support/error.h"
#include "test_component.h"

namespace stc::fuzz {
namespace {

std::string case_bytes(const driver::TestCase& tc) {
    driver::TestSuite wrapper;
    wrapper.class_name = "Counter";
    wrapper.cases = {tc};
    std::ostringstream out;
    driver::save_suite(out, wrapper);
    return out.str();
}

class FuzzTest : public ::testing::Test {
protected:
    FuzzTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(stc::testing::counter_binding());
    }

    /// A CaseRunner over the Counter binding; `mutant` (may be null)
    /// must outlive the returned closure.
    [[nodiscard]] CaseRunner runner_for(const mutation::Mutant* mutant) const {
        const driver::TestRunner& runner = runner_;
        const reflect::ClassBinding& binding = registry_.at("Counter");
        return [&runner, &binding, mutant](const driver::TestCase& tc) {
            if (mutant) {
                const mutation::MutantActivation active(*mutant);
                return runner.run_case(binding, tc);
            }
            return runner.run_case(binding, tc);
        };
    }

    [[nodiscard]] FuzzResult fuzz(const mutation::Mutant* mutant,
                                  std::uint64_t seed = 5,
                                  std::size_t iters = 80) const {
        FuzzOptions options;
        options.seed = seed;
        options.iterations = iters;
        if (mutant) options.mutant_id = mutant->id();
        Fuzzer fuzzer(spec_, options);
        return fuzzer.case_runner(runner_for(mutant)).run();
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestRunner runner_{registry_};
};

TEST_F(FuzzTest, PristineCounterYieldsNoFindings) {
    const FuzzResult result = fuzz(nullptr, 7, 120);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.stats.iterations, 120u);
    EXPECT_GE(result.stats.executions, result.stats.iterations);
    // Everything a valid transaction throws at a correct component
    // passes; the verdict histogram must say exactly that.
    ASSERT_EQ(result.stats.verdict_counts.size(), 1u);
    EXPECT_EQ(result.stats.verdict_counts.count("pass"), 1u);
    EXPECT_GT(result.stats.nodes_covered, 0u);
    EXPECT_GT(result.stats.edges_covered, 0u);
}

TEST_F(FuzzTest, FindsKillableMutantsAndShrinksTheirFailures) {
    const auto mutants =
        mutation::enumerate_mutants(stc::testing::Counter::inc_descriptor());
    const auto graph = spec_.build_tfm();

    std::size_t mutants_with_findings = 0;
    for (const auto& mutant : mutants) {
        const FuzzResult result = fuzz(&mutant);
        if (result.findings.empty()) continue;
        ++mutants_with_findings;
        for (const Finding& finding : result.findings) {
            // The shrinker's contract: no longer than the original, a
            // structurally valid transaction, and still failing with
            // the same verdict on replay.
            EXPECT_LE(finding.reproducer.calls.size(),
                      finding.original.calls.size());
            EXPECT_TRUE(graph.is_valid_transaction(finding.reproducer.transaction.path));
            const auto replay = runner_for(&mutant)(finding.reproducer);
            EXPECT_EQ(replay.verdict, finding.verdict) << mutant.id();
            EXPECT_NE(finding.verdict, driver::Verdict::Pass);
        }
    }
    // The Inc population (18 mutants) contains several that break the
    // postcondition or the class invariant; the fuzzer must catch some.
    EXPECT_GT(mutants_with_findings, 0u);
}

TEST_F(FuzzTest, FuzzRunsAreDeterministic) {
    const auto mutants =
        mutation::enumerate_mutants(stc::testing::Counter::inc_descriptor());
    ASSERT_FALSE(mutants.empty());
    const mutation::Mutant& mutant = mutants.front();

    const FuzzResult a = fuzz(&mutant, 13, 100);
    const FuzzResult b = fuzz(&mutant, 13, 100);
    EXPECT_EQ(a.stats.render(), b.stats.render());
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].key(), b.findings[i].key());
        EXPECT_EQ(a.findings[i].iteration, b.findings[i].iteration);
        EXPECT_EQ(case_bytes(a.findings[i].reproducer),
                  case_bytes(b.findings[i].reproducer));
    }

    // A different seed explores differently (coverage or findings move).
    const FuzzResult c = fuzz(&mutant, 14, 100);
    EXPECT_TRUE(a.stats.render() != c.stats.render() ||
                a.findings.size() != c.findings.size() ||
                (!a.findings.empty() &&
                 case_bytes(a.findings[0].reproducer) !=
                     case_bytes(c.findings[0].reproducer)) ||
                a.stats.interesting != c.stats.interesting);
}

TEST_F(FuzzTest, ShrinkerMinimizesUnderAnAlwaysTruePredicate) {
    driver::GeneratorOptions options;
    options.seed = 9;
    const auto suite = driver::DriverGenerator(spec_, options).generate();
    const driver::TestCase* longest = nullptr;
    for (const auto& tc : suite.cases) {
        if (!longest || tc.calls.size() > longest->calls.size()) longest = &tc;
    }
    ASSERT_NE(longest, nullptr);
    ASSERT_GE(longest->calls.size(), 3u);

    const auto graph = spec_.build_tfm();
    const Predicate always = [](const driver::TestCase&) { return true; };
    const ShrinkResult result = shrink_case(spec_, graph, *longest, always);

    // Under an unconstrained predicate everything interior is noise:
    // the minimum is the shortest birth->death transaction through the
    // original endpoints.
    EXPECT_LT(result.minimized.calls.size(), longest->calls.size());
    EXPECT_TRUE(graph.is_valid_transaction(result.minimized.transaction.path));
    EXPECT_GT(result.steps, 0u);
    EXPECT_FALSE(result.budget_exhausted);

    // Deterministic: shrinking the same case twice yields the same bytes.
    const ShrinkResult again = shrink_case(spec_, graph, *longest, always);
    EXPECT_EQ(case_bytes(result.minimized), case_bytes(again.minimized));
}

TEST_F(FuzzTest, ShrinkBudgetIsHonoured) {
    driver::GeneratorOptions options;
    options.seed = 9;
    const auto suite = driver::DriverGenerator(spec_, options).generate();
    const driver::TestCase* longest = nullptr;
    for (const auto& tc : suite.cases) {
        if (!longest || tc.calls.size() > longest->calls.size()) longest = &tc;
    }
    ASSERT_NE(longest, nullptr);

    ShrinkOptions tight;
    tight.max_steps = 1;
    const auto graph = spec_.build_tfm();
    const ShrinkResult result = shrink_case(
        spec_, graph, *longest, [](const driver::TestCase&) { return true; },
        tight);
    EXPECT_LE(result.steps, 1u);
    EXPECT_TRUE(result.budget_exhausted);
    // The result still satisfies the predicate (trivially here) and is
    // never longer than the input.
    EXPECT_LE(result.minimized.calls.size(), longest->calls.size());
}

TEST_F(FuzzTest, CorpusEntriesRoundTripByteIdentically) {
    driver::GeneratorOptions options;
    options.seed = 4;
    const auto suite = driver::DriverGenerator(spec_, options).generate();
    ASSERT_FALSE(suite.cases.empty());

    CorpusEntry entry;
    entry.suite = suite;
    entry.suite.cases = {suite.cases.front()};
    entry.verdict = driver::Verdict::AssertionViolation;
    entry.failed_method = "Inc";
    entry.mutant_id = "Counter::Inc@s0.BitNeg";
    entry.kill_reason = "assertion";

    std::ostringstream first;
    save_entry(first, entry);
    std::istringstream in(first.str());
    const CorpusEntry reloaded = load_entry(in);
    EXPECT_EQ(reloaded.verdict, entry.verdict);
    EXPECT_EQ(reloaded.failed_method, entry.failed_method);
    EXPECT_EQ(reloaded.mutant_id, entry.mutant_id);
    EXPECT_EQ(reloaded.kill_reason, entry.kill_reason);
    ASSERT_EQ(reloaded.suite.size(), 1u);

    std::ostringstream second;
    save_entry(second, reloaded);
    EXPECT_EQ(first.str(), second.str());

    // The canonical filename is a pure function of the content.
    const std::string name = entry_filename(entry);
    EXPECT_EQ(name, entry_filename(reloaded));
    EXPECT_EQ(name.find("Counter-assertion-violation-"), 0u);
    EXPECT_EQ(name.substr(name.size() - 6), ".suite");
}

TEST_F(FuzzTest, CorpusLoaderRejectsMalformedEntries) {
    std::istringstream bad_magic("concat-whatever 1\n");
    EXPECT_THROW((void)load_entry(bad_magic), Error);
    std::istringstream bad_verdict(
        "concat-corpus 1\nverdict not-a-verdict\n");
    EXPECT_THROW((void)load_entry(bad_verdict), Error);
    std::istringstream no_suite("concat-corpus 1\nverdict crash\n");
    EXPECT_THROW((void)load_entry(no_suite), Error);
}

TEST_F(FuzzTest, PersistedFindingsReplayFromDisk) {
    const auto mutants =
        mutation::enumerate_mutants(stc::testing::Counter::inc_descriptor());
    // Find one mutant the fuzzer can kill; the loop is deterministic.
    for (const auto& mutant : mutants) {
        const FuzzResult result = fuzz(&mutant);
        if (result.findings.empty()) continue;

        const std::string dir = ::testing::TempDir() + "stc_fuzz_corpus";
        std::filesystem::remove_all(dir);
        const Finding& finding = result.findings.front();
        const CaseRunner runner = runner_for(&mutant);
        const PersistOutcome outcome = persist_entry(
            dir, finding.to_corpus_entry("Counter"), nullptr, runner, 99);
        ASSERT_TRUE(outcome.reproducible);
        ASSERT_FALSE(outcome.path.empty());

        const auto listed = list_corpus(dir);
        ASSERT_EQ(listed.size(), 1u);
        EXPECT_EQ(listed.front(), outcome.path);

        // Reload from disk and replay: the recorded verdict holds.
        const CorpusEntry reloaded = load_entry_file(outcome.path);
        EXPECT_EQ(reloaded.suite.seed, 99u);
        const auto replay = runner(reloaded.reproducer());
        EXPECT_EQ(replay.verdict, reloaded.verdict);
        return;  // one killable mutant is enough
    }
    FAIL() << "no Counter mutant produced a finding";
}

TEST_F(FuzzTest, ListCorpusOnMissingDirectoryIsEmpty) {
    EXPECT_TRUE(list_corpus("/tmp/definitely/not/a/corpus/dir").empty());
}

}  // namespace
}  // namespace stc::fuzz
