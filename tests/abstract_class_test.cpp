// Abstract-class testing — §3.2, advantage (iii) of specification-based
// selection: "test selection is, to a certain extent, implementation
// language independent, which allows tests to be generated for abstract
// classes, for example, to be later incorporated to a subclass test
// suite."
//
// The abstract Shape's t-spec (producer artifact) generates a suite once;
// each concrete subclass registers its binding *under the abstract
// interface name* and runs the inherited suite unchanged.
#include <gtest/gtest.h>

#include <cmath>

#include "stc/core/self_testable.h"
#include "stc/driver/runner.h"
#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc {
namespace {

/// Abstract interface with a contract all subclasses must honor.
class Shape : public bit::BuiltInTest {
public:
    virtual void Scale(int percent) = 0;     // pre: 1..400
    [[nodiscard]] virtual double Area() const = 0;

    void InvariantTest() const override { STC_CLASS_INVARIANT(Area() >= 0.0); }
    void Reporter(std::ostream& os) const override {
        os << "Shape{area=" << Area() << "}";
    }
};

class Square final : public Shape {
public:
    explicit Square(int side) : side_(side) { STC_PRECONDITION(side >= 0); }

    void Scale(int percent) override {
        STC_PRECONDITION(percent >= 1 && percent <= 400);
        side_ = side_ * percent / 100;
    }
    [[nodiscard]] double Area() const override {
        return static_cast<double>(side_) * side_;
    }

private:
    int side_;
};

class Circle final : public Shape {
public:
    explicit Circle(int radius) : radius_(radius) { STC_PRECONDITION(radius >= 0); }

    void Scale(int percent) override {
        STC_PRECONDITION(percent >= 1 && percent <= 400);
        radius_ = radius_ * percent / 100;
    }
    [[nodiscard]] double Area() const override {
        return 3.14159265358979 * radius_ * radius_;
    }

private:
    int radius_;
};

/// The producer's t-spec for the ABSTRACT class (is_abstract = Yes).
tspec::ComponentSpec shape_spec() {
    tspec::SpecBuilder b("Shape");
    b.abstract();
    b.method("m1", "Shape", tspec::MethodCategory::Constructor)
        .param_range("size", 0, 50);
    b.method("m2", "~Shape", tspec::MethodCategory::Destructor);
    b.method("m3", "Scale", tspec::MethodCategory::New).param_range("percent", 1, 400);
    b.method("m4", "Area", tspec::MethodCategory::New, "double");
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m4"});
    b.node("n4", false, {"m2"});
    b.edge("n1", "n2").edge("n1", "n3");
    b.edge("n2", "n2").edge("n2", "n3");
    b.edge("n3", "n4");
    return b.build();
}

/// Each concrete subclass binds under the abstract name, so the
/// inherited suite applies verbatim.
template <typename Concrete>
reflect::ClassBinding bind_as_shape() {
    reflect::Binder<Concrete> b("Shape");
    b.template ctor<int>();
    b.method("Scale", &Concrete::Scale);
    b.method("Area", &Concrete::Area);
    return b.take();
}

TEST(AbstractClass, SpecIsMarkedAbstractAndValid) {
    const auto spec = shape_spec();
    EXPECT_TRUE(spec.is_abstract);
    EXPECT_TRUE(spec.validate().empty());
}

TEST(AbstractClass, OneGeneratedSuiteRunsAgainstEverySubclass) {
    const auto spec = shape_spec();
    const auto suite = driver::DriverGenerator(spec).generate();
    EXPECT_GT(suite.size(), 0u);

    // Square.
    {
        core::SelfTestableComponent component(spec, bind_as_shape<Square>());
        const auto report = component.self_test(suite);
        EXPECT_TRUE(report.all_passed()) << report.summary();
    }
    // Circle: the same test cases, not regenerated.
    {
        core::SelfTestableComponent component(spec, bind_as_shape<Circle>());
        const auto report = component.self_test(suite);
        EXPECT_TRUE(report.all_passed()) << report.summary();
    }
}

TEST(AbstractClass, ContractViolatingSubclassIsRejectedByTheInheritedSuite) {
    // A subclass that breaks the abstract contract (negative area after
    // scaling) fails the abstract class's own suite.
    class BrokenShape final : public Shape {
    public:
        explicit BrokenShape(int size) : size_(size) {}
        void Scale(int percent) override { size_ -= percent; }  // goes negative
        [[nodiscard]] double Area() const override { return size_; }

    private:
        int size_;
    };

    const auto spec = shape_spec();
    const auto suite = driver::DriverGenerator(spec).generate();
    core::SelfTestableComponent component(spec, bind_as_shape<BrokenShape>());
    const auto report = component.self_test(suite);
    EXPECT_FALSE(report.all_passed());
    EXPECT_GT(report.result.count(driver::Verdict::AssertionViolation), 0u);
}

TEST(AbstractClass, SubclassesDivergeOnlyInObservedValues) {
    // Same suite, different concrete areas: the reports differ, which is
    // exactly what a golden-record comparison across *implementations*
    // (not versions) would flag — hence the paper compares against the
    // same class's previous release, not across siblings.
    const auto spec = shape_spec();
    const auto suite = driver::DriverGenerator(spec).generate();

    reflect::Registry squares;
    squares.add(bind_as_shape<Square>());
    reflect::Registry circles;
    circles.add(bind_as_shape<Circle>());

    const auto square_run = driver::TestRunner(squares).run(suite);
    const auto circle_run = driver::TestRunner(circles).run(suite);
    bool any_difference = false;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        any_difference =
            any_difference || square_run.results[i].report != circle_run.results[i].report;
    }
    EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace stc
