// Cross-cutting property tests: randomized sweeps over generated specs,
// graphs, and suites, checking invariants that must hold for *every*
// instance — the complement of the per-module example-based tests.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "stc/campaign/result_store.h"
#include "stc/core/self_testable.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/shrink.h"
#include "stc/kill/kill.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/coverage.h"
#include "stc/mutation/prune.h"
#include "stc/support/rng.h"
#include "stc/tfm/coverage.h"
#include "stc/tspec/builder.h"
#include "stc/tspec/parser.h"
#include "test_component.h"

namespace stc {
namespace {

// ----------------------------------------------------- random spec factory

/// Builds a random but semantically valid ComponentSpec: layered TFM,
/// random method signatures over all generatable domain kinds.
tspec::ComponentSpec random_spec(std::uint64_t seed) {
    support::Pcg32 rng(seed);
    tspec::SpecBuilder b("Rnd" + std::to_string(seed));

    const int n_attrs = static_cast<int>(rng.uniform(0, 3));
    for (int i = 0; i < n_attrs; ++i) {
        b.attr_range("attr" + std::to_string(i), rng.uniform(-100, 0),
                     rng.uniform(1, 100));
    }

    b.method("m1", "Rnd", tspec::MethodCategory::Constructor);
    b.method("m2", "~Rnd", tspec::MethodCategory::Destructor);
    const int n_methods = static_cast<int>(rng.uniform(1, 6));
    std::vector<std::string> body_methods;
    for (int i = 0; i < n_methods; ++i) {
        const std::string id = "b" + std::to_string(i);
        b.method(id, "Do" + std::to_string(i), tspec::MethodCategory::New);
        switch (rng.index(4)) {
            case 0: b.param_range("x", -10, 10); break;
            case 1: b.param_string("s", 0, 8); break;
            case 2: b.param_int_set("k", {1, 2, 3}); break;
            default: break;  // no parameter
        }
        body_methods.push_back(id);
    }

    // Layered TFM: birth -> L1 -> [L2] -> death, with random extra edges
    // forward between layers (always acyclic: guaranteed sound).  The
    // edge set is deduplicated — a doubled link is a model defect the
    // TFM diagnostics rightly flag.
    b.node("n_birth", true, {"m1"});
    std::set<std::pair<std::string, std::string>> edges;
    auto edge_once = [&](const std::string& from, const std::string& to) {
        if (edges.insert({from, to}).second) b.edge(from, to);
    };
    std::vector<std::string> previous{"n_birth"};
    const int layers = static_cast<int>(rng.uniform(1, 3));
    int node_counter = 0;
    for (int l = 0; l < layers; ++l) {
        std::vector<std::string> current;
        const int width = static_cast<int>(rng.uniform(1, 3));
        for (int w = 0; w < width; ++w) {
            const std::string id = "n" + std::to_string(node_counter++);
            b.node(id, false,
                   {body_methods[rng.index(body_methods.size())]});
            current.push_back(id);
        }
        for (const auto& p : previous) {
            // every node connects to at least one next-layer node
            edge_once(p, current[rng.index(current.size())]);
        }
        for (const auto& c : current) {
            // and every next-layer node is reachable
            edge_once(previous[rng.index(previous.size())], c);
        }
        previous = current;
    }
    b.node("n_death", false, {"m2"});
    for (const auto& p : previous) edge_once(p, "n_death");
    return b.build();
}

class SpecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecProperty, RandomSpecsValidateAndRoundTrip) {
    const auto spec = random_spec(GetParam());
    EXPECT_TRUE(spec.validate().empty());

    // print -> parse -> print is a fixpoint.
    const std::string once = tspec::print_tspec(spec);
    const auto reparsed = tspec::parse_tspec(once);
    EXPECT_TRUE(reparsed.validate().empty());
    EXPECT_EQ(tspec::print_tspec(reparsed), once);
}

TEST_P(SpecProperty, GenerationRunsAreConsistent) {
    const auto spec = random_spec(GetParam());
    const auto graph = spec.build_tfm();
    EXPECT_TRUE(graph.diagnose().empty());

    driver::GeneratorOptions options;
    options.seed = GetParam() * 7 + 1;
    const auto suite = driver::DriverGenerator(spec, options).generate();
    EXPECT_EQ(suite.size(), suite.transactions_enumerated);

    // Suite ids are unique; every case starts with a constructor and every
    // argument obeys its declared domain.
    std::set<std::string> ids;
    for (const auto& tc : suite.cases) {
        EXPECT_TRUE(ids.insert(tc.id).second);
        EXPECT_TRUE(tc.calls.front().is_constructor);
        for (const auto& call : tc.calls) {
            const auto* method = spec.find_method(call.method_id);
            ASSERT_NE(method, nullptr);
            ASSERT_EQ(call.arguments.size(), method->parameters.size());
            for (std::size_t i = 0; i < call.arguments.size(); ++i) {
                const auto& slot = method->parameters[i];
                if (slot.domain) {
                    EXPECT_TRUE(slot.domain->contains(call.arguments[i]))
                        << call.render();
                }
            }
        }
    }

    // Transaction coverage subsumes node and link coverage (acyclic model).
    std::vector<tfm::Transaction> transactions;
    for (const auto& tc : suite.cases) transactions.push_back(tc.transaction);
    const auto coverage = tfm::measure_coverage(graph, transactions);
    EXPECT_DOUBLE_EQ(coverage.node_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(coverage.edge_ratio(), 1.0);
}

TEST_P(SpecProperty, SuitesSurviveSaveLoadByteIdentically) {
    const auto spec = random_spec(GetParam());
    const auto suite = driver::DriverGenerator(spec).generate();

    std::stringstream first;
    driver::save_suite(first, suite);
    const auto loaded = driver::load_suite(first);
    std::stringstream second;
    driver::save_suite(second, loaded);
    EXPECT_EQ(first.str(), second.str());
}

TEST_P(SpecProperty, ShrinkerPreservesPredicateValidityAndLength) {
    const auto spec = random_spec(GetParam());
    const auto graph = spec.build_tfm();
    driver::GeneratorOptions options;
    options.seed = GetParam() + 17;
    const auto suite = driver::DriverGenerator(spec, options).generate();

    const driver::TestCase* longest = nullptr;
    for (const auto& tc : suite.cases) {
        if (!longest || tc.calls.size() > longest->calls.size()) longest = &tc;
    }
    ASSERT_NE(longest, nullptr);

    // The synthetic "failure": the case still calls the method of its
    // middle call.  Execution-free, so the property holds for every
    // random spec, not just ones with a runnable binding.
    const std::string target =
        longest->calls[longest->calls.size() / 2].method_id;
    const auto still_calls_target = [&target](const driver::TestCase& tc) {
        for (const auto& call : tc.calls) {
            if (call.method_id == target) return true;
        }
        return false;
    };
    ASSERT_TRUE(still_calls_target(*longest));

    const auto result =
        fuzz::shrink_case(spec, graph, *longest, still_calls_target);
    // The shrinker's three invariants: the failure is preserved, the
    // output is a structurally valid transaction, and it never grows.
    EXPECT_TRUE(still_calls_target(result.minimized));
    EXPECT_TRUE(graph.is_valid_transaction(result.minimized.transaction.path));
    EXPECT_LE(result.minimized.calls.size(), longest->calls.size());

    // And it is a deterministic function of its input.
    const auto again =
        fuzz::shrink_case(spec, graph, *longest, still_calls_target);
    driver::TestSuite wrap_a = suite, wrap_b = suite;
    wrap_a.cases = {result.minimized};
    wrap_b.cases = {again.minimized};
    std::stringstream bytes_a, bytes_b;
    driver::save_suite(bytes_a, wrap_a);
    driver::save_suite(bytes_b, wrap_b);
    EXPECT_EQ(bytes_a.str(), bytes_b.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808,
                                           909, 1010, 1111, 1212));

// ------------------------------------------------------------- parser fuzz

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, GarbageNeverCrashesOnlyThrows) {
    support::Pcg32 rng(GetParam());
    // Character soup biased toward the t-spec alphabet to reach deep
    // parser states.
    const std::string alphabet =
        "Clas METHODnode dgePrmtr'\",()[]<>-_0123456789.\n //~";
    for (int round = 0; round < 200; ++round) {
        std::string input;
        const auto len = rng.index(120);
        for (std::size_t i = 0; i < len; ++i) {
            input += alphabet[rng.index(alphabet.size())];
        }
        try {
            (void)tspec::parse_tspec(input);
        } catch (const Error&) {
            // ParseError / SpecError are the only acceptable outcomes.
        }
    }
    SUCCEED();
}

TEST_P(ParserRobustness, TruncationsOfAValidSpecNeverCrash) {
    const std::string valid = tspec::print_tspec(random_spec(GetParam()));
    for (std::size_t cut = 0; cut < valid.size(); cut += 7) {
        try {
            (void)tspec::parse_tspec(valid.substr(0, cut));
        } catch (const Error&) {
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Values(7, 77, 777));

// --------------------------------------------------- mutation run algebra

class MutationAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationAlgebra, OutcomesPartitionAndScoreIsBounded) {
    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());
    driver::GeneratorOptions options;
    options.seed = GetParam();
    const auto suite =
        driver::DriverGenerator(stc::testing::counter_spec(), options).generate();
    const auto mutants =
        mutation::enumerate_mutants(stc::testing::counter_descriptors(), "Counter");

    driver::GeneratorOptions probe_options;
    probe_options.seed = GetParam() + 1;
    probe_options.cases_per_transaction = 2;
    const auto probe =
        driver::DriverGenerator(stc::testing::counter_spec(), probe_options)
            .generate();

    const mutation::MutationEngine engine(registry);
    const auto run = engine.run(suite, mutants, &probe);

    EXPECT_TRUE(run.baseline_clean);
    EXPECT_EQ(run.total(), mutants.size());
    EXPECT_GE(run.score(), 0.0);
    EXPECT_LE(run.score(), 1.0);

    std::size_t killed = 0;
    std::size_t alive = 0;
    std::size_t equivalent = 0;
    std::size_t not_covered = 0;
    for (const auto& o : run.outcomes) {
        switch (o.fate) {
            case mutation::MutantFate::Killed:
                ++killed;
                EXPECT_NE(o.reason, oracle::KillReason::None);
                EXPECT_TRUE(o.hit_by_suite);  // a kill implies execution
                break;
            case mutation::MutantFate::Alive: ++alive; break;
            case mutation::MutantFate::EquivalentPresumed: ++equivalent; break;
            case mutation::MutantFate::NotCovered:
                ++not_covered;
                EXPECT_FALSE(o.hit_by_suite);
                break;
        }
    }
    EXPECT_EQ(killed + alive + equivalent + not_covered, run.total());
    EXPECT_EQ(killed, run.killed());
    EXPECT_EQ(equivalent, run.equivalent());
}

TEST_P(MutationAlgebra, MoreTestCasesNeverKillFewerMutants) {
    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());
    const auto spec = stc::testing::counter_spec();
    const auto mutants =
        mutation::enumerate_mutants(stc::testing::counter_descriptors(), "Counter");

    driver::GeneratorOptions small_options;
    small_options.seed = GetParam();
    auto small = driver::DriverGenerator(spec, small_options).generate();
    auto large = small;
    driver::GeneratorOptions more;
    more.seed = GetParam() + 99;
    more.cases_per_transaction = 2;
    const auto extra = driver::DriverGenerator(spec, more).generate();
    for (auto tc : extra.cases) {
        tc.id = "X" + tc.id;  // keep ids unique in the merged suite
        large.cases.push_back(std::move(tc));
    }

    const mutation::MutationEngine engine(registry);
    const auto small_run = engine.run(small, mutants, nullptr);
    const auto large_run = engine.run(large, mutants, nullptr);
    EXPECT_GE(large_run.killed(), small_run.killed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationAlgebra, ::testing::Values(31, 41, 59));

// ----------------------------------------------- pruned-fate equivalence

class PruneEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruneEquivalence, PrunedEvaluationIsFateIdenticalPerMutant) {
    // The fast campaign tier (coverage-signature pruning + shared-prefix
    // memoization) must be invisible in every reported fate: for any
    // generated suite/probe pair and every mutant, evaluate_mutant_pruned
    // classifies exactly as the exhaustive evaluate_mutant — while
    // provably executing fewer (mutant, case) pairs.
    const std::uint64_t seed = GetParam();
    reflect::Registry registry;
    reflect::ClassBinding cloning = stc::testing::counter_binding();
    cloning.set_cloner([](const void* object) -> void* {
        return new stc::testing::Counter(
            *static_cast<const stc::testing::Counter*>(object));
    });
    registry.add(std::move(cloning));
    const reflect::ClassBinding& binding = registry.at("Counter");

    driver::GeneratorOptions gen;
    gen.seed = seed;
    gen.cases_per_transaction = 1 + static_cast<int>(seed % 3);
    const auto suite =
        driver::DriverGenerator(stc::testing::counter_spec(), gen).generate();
    driver::GeneratorOptions probe_gen;
    probe_gen.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    probe_gen.cases_per_transaction = 2;
    const auto probe =
        driver::DriverGenerator(stc::testing::counter_spec(), probe_gen)
            .generate();
    const auto mutants = mutation::enumerate_mutants(
        stc::testing::counter_descriptors(), "Counter");

    const mutation::EngineOptions options;
    driver::RunnerOptions probe_opts = options.runner;
    probe_opts.observe_each_call = true;
    const driver::TestRunner runner(registry, options.runner);
    const driver::TestRunner probe_runner(registry, probe_opts);

    // Unpruned reference leg.
    const auto golden = oracle::GoldenRecord::from(runner.run(suite));
    const auto probe_golden = oracle::GoldenRecord::from(probe_runner.run(probe));
    const mutation::MutationEngine::SuiteExecutor run_suite =
        [&runner, &suite] { return runner.run(suite); };
    const mutation::MutationEngine::SuiteExecutor run_probe =
        [&probe_runner, &probe] { return probe_runner.run(probe); };

    // Pruned leg: coverage index from the instrumented golden run, then
    // the shared-prefix checkpoint ladders.
    auto covered = mutation::run_with_coverage(registry, options.runner, suite);
    auto probe_covered = mutation::run_with_coverage(registry, probe_opts, probe);
    ASSERT_EQ(covered.result.results.size(), golden.size());
    const mutation::PrunePlan plan = mutation::build_prune_plan(
        runner, binding, suite, std::move(covered.index), &probe_runner, &probe,
        std::move(probe_covered.index));

    mutation::PruneStats stats;
    for (const auto& mutant : mutants) {
        const auto slow = mutation::evaluate_mutant(
            mutant, run_suite, golden, run_probe, probe_golden, options);
        const auto fast = mutation::evaluate_mutant_pruned(
            mutant, runner, binding, suite, golden, &probe_runner, &probe,
            probe_golden, plan, options, &stats);
        EXPECT_EQ(fast.fate, slow.fate) << mutant.id();
        EXPECT_EQ(fast.reason, slow.reason) << mutant.id();
        EXPECT_EQ(fast.hit_by_suite, slow.hit_by_suite) << mutant.id();
        EXPECT_EQ(fast.killed_by_probe, slow.killed_by_probe) << mutant.id();
        EXPECT_EQ(fast.model_only, slow.model_only) << mutant.id();
    }

    // The fast tier really pruned: strictly fewer executed (mutant, case)
    // pairs than the exhaustive mutants x (suite + probe) product, and
    // memoized pairs are a subset of executed ones.
    EXPECT_GT(stats.pruned_pairs, 0u);
    EXPECT_LT(stats.executed_pairs,
              mutants.size() * (suite.cases.size() + probe.cases.size()));
    EXPECT_LE(stats.memoized_pairs, stats.executed_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneEquivalence,
                         ::testing::Values(5, 23, 47, 91, 137, 4242));

// --------------------------------------------------------- runner algebra

class RunnerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunnerProperty, SuiteRunsAreOrderIndependentPerCase) {
    // Counter test cases are independent (fresh object per case): running
    // a reversed suite yields the same per-case verdicts and reports.
    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());
    driver::GeneratorOptions options;
    options.seed = GetParam();
    auto suite =
        driver::DriverGenerator(stc::testing::counter_spec(), options).generate();

    const driver::TestRunner runner(registry);
    const auto forward = runner.run(suite);

    std::reverse(suite.cases.begin(), suite.cases.end());
    const auto backward = runner.run(suite);

    ASSERT_EQ(forward.results.size(), backward.results.size());
    for (const auto& fr : forward.results) {
        const driver::TestResult* matching = nullptr;
        for (const auto& br : backward.results) {
            if (br.case_id == fr.case_id) {
                matching = &br;
                break;
            }
        }
        ASSERT_NE(matching, nullptr);
        EXPECT_EQ(matching->verdict, fr.verdict);
        EXPECT_EQ(matching->report, fr.report);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerProperty, ::testing::Values(3, 33, 333));

// ------------------------------------------------------- model conformance

class ModelConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelConformance, RandomTransactionsNeverDivergeUnmutated) {
    // The reference models claim to implement the components' specified
    // behaviour; on the unmutated build that claim must hold for every
    // generated transaction, across seeds and value policies — a
    // divergence here is a modelling bug, not a component bug.
    mfc::ElementPool pool;
    const auto completions = mfc::make_completions(pool);
    for (const char* class_name : {"CObList", "CSortableObList"}) {
        core::SelfTestableComponent component(
            std::string(class_name) == "CObList" ? mfc::coblist_spec()
                                                 : mfc::sortable_spec(),
            std::string(class_name) == "CObList" ? mfc::coblist_binding()
                                                 : mfc::sortable_binding());
        component.set_completions(completions);

        driver::GeneratorOptions gen;
        gen.seed = GetParam();
        gen.value_policy = GetParam() % 2 == 0 ? driver::ValuePolicy::Random
                                               : driver::ValuePolicy::Boundary;
        const auto suite = component.generate_tests(gen);

        driver::RunnerOptions options;
        options.model = model::binding_for(class_name);
        ASSERT_NE(options.model, nullptr);
        options.promote_divergence = true;
        const auto observed =
            driver::TestRunner(component.registry(), options).run(suite);
        for (const auto& r : observed.results) {
            EXPECT_EQ(r.verdict, driver::Verdict::Pass)
                << class_name << " " << r.case_id << ": " << r.message;
            EXPECT_TRUE(r.model_divergence.empty())
                << class_name << " " << r.case_id << ": " << r.model_divergence;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelConformance,
                         ::testing::Values(11, 22, 97, 1234, 98765));

// ---------------------------------------------- verified-killer contract

/// The differential contract every synthesized killer must honour, for
/// every search seed: a verified killer (a) passes on the unmutated
/// CUT — it is a legitimate test, not a crash reproducer — and
/// (b) fails with the target mutant active.  The kill pass shrinks
/// every killer before reporting it, so the checked test case is the
/// synthesized-then-shrunk one, proving ddmin preserves both legs.
class KillerContract : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KillerContract, VerifiedKillersPassCleanAndFailMutated) {
    mfc::ElementPool pool;
    core::SelfTestableComponent component(mfc::coblist_spec(),
                                          mfc::coblist_binding());
    driver::CompletionRegistry completions = mfc::make_completions(pool);
    component.set_completions(completions);
    const std::vector<mutation::Mutant> mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    const driver::ModelBinding* model = model::binding_for("CObList");
    ASSERT_NE(model, nullptr);

    // The two CObList survivors the kill pass verifiably kills through
    // the widened spec alphabet (EXPERIMENTS.md).
    std::vector<campaign::ItemRecord> records;
    for (const char* id :
         {"CObList::RemoveHead@s4.IndVarRepGlob.m_pNodeTail",
          "CObList::RemoveHead@s4.IndVarRepLoc.pOldNode"}) {
        campaign::ItemRecord r;
        r.key = std::string("k-") + id;
        r.mutant_id = id;
        r.fate = "alive";
        records.push_back(std::move(r));
    }

    kill::KillContext context;
    context.spec = &component.spec();
    context.registry = &component.registry();
    context.completions = &completions;
    context.mutants = &mutants;

    kill::KillOptions options;
    options.seed = GetParam();
    options.search.seed = GetParam();
    options.search.budget_states = 1024;
    options.search.runner.model = model;
    const kill::KillRun run =
        kill::kill_survivors(context, records, options);
    ASSERT_EQ(run.verified, records.size());

    driver::RunnerOptions ro;
    ro.model = model;
    const driver::TestRunner runner(component.registry(), ro);
    const reflect::ClassBinding& binding = component.registry().at("CObList");
    for (const kill::KillItem& item : run.items) {
        ASSERT_EQ(item.status, kill::SearchStatus::Verified)
            << item.mutant_id;
        // The reported killer is the shrunk one.
        ASSERT_FALSE(item.killer.calls.empty());
        EXPECT_LE(item.killer.calls.size(), item.candidate_calls);

        // (a) Clean leg: passes on the unmutated CUT.
        const driver::TestResult clean = runner.run_case(binding, item.killer);
        EXPECT_EQ(clean.verdict, driver::Verdict::Pass)
            << item.mutant_id << " seed " << GetParam() << ": "
            << clean.message;

        // (b) Mutated leg: fails with the target mutant active.
        const mutation::Mutant* target = nullptr;
        for (const mutation::Mutant& m : mutants) {
            if (m.id() == item.mutant_id) target = &m;
        }
        ASSERT_NE(target, nullptr) << item.mutant_id;
        driver::TestResult mutated;
        {
            const mutation::MutantActivation activation(*target);
            mutated = runner.run_case(binding, item.killer);
        }
        EXPECT_NE(mutated.verdict, driver::Verdict::Pass)
            << item.mutant_id << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillerContract,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stc
