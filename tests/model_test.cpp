// stc::model — the differential conformance oracle.  Covers the
// binding registry, the ListModel's prediction semantics (which must
// mirror the mfc binding wrappers exactly), live-state projection,
// lockstep conformance of the unmutated components, divergence on a
// seeded mutant, and the end-to-end differential classification that
// feeds the oracle-strength report.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "stc/core/self_testable.h"
#include "stc/driver/lockstep.h"
#include "stc/driver/runner.h"
#include "stc/mfc/coblist.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"
#include "stc/oracle/oracle.h"

namespace stc {
namespace {

// ----------------------------------------------------------------- registry

TEST(ModelRegistry, PaperComponentsAreModeled) {
    const driver::ModelBinding* coblist = model::binding_for("CObList");
    ASSERT_NE(coblist, nullptr);
    EXPECT_TRUE(coblist->valid());

    const driver::ModelBinding* sortable = model::binding_for("CSortableObList");
    ASSERT_NE(sortable, nullptr);
    EXPECT_TRUE(sortable->valid());

    EXPECT_EQ(model::binding_for("Counter"), nullptr);
    EXPECT_EQ(model::binding_for(""), nullptr);

    const auto classes = model::modeled_classes();
    EXPECT_TRUE(std::is_sorted(classes.begin(), classes.end()));
    ASSERT_EQ(classes.size(), 2u);
    EXPECT_EQ(classes[0], "CObList");
    EXPECT_EQ(classes[1], "CSortableObList");
}

// ------------------------------------------------------- model predictions

driver::MethodCall call(const std::string& name,
                        std::vector<domain::Value> args = {}) {
    driver::MethodCall c;
    c.method_name = name;
    c.arguments = std::move(args);
    return c;
}

driver::MethodCall add(const std::string& name, mfc::CObject& element) {
    return call(name, {domain::Value::make_pointer(&element, "CObject*")});
}

class ListModelFixture : public ::testing::Test {
protected:
    ListModelFixture()
        : model_(model::binding_for("CSortableObList")->factory()) {
        EXPECT_TRUE(model_->construct({}));
    }

    std::unique_ptr<driver::LockstepModel> model_;
    mfc::CInt three_{3}, seven_{7}, one_{1};
};

TEST_F(ListModelFixture, MirrorsWrapperRenderings) {
    // Empty-list probes render the wrapper markers, not errors.
    EXPECT_EQ(model_->apply(call("RemoveHead")).rendered_return, "<noop>");
    EXPECT_EQ(model_->apply(call("FindIndex", {domain::Value::make_int(5)}))
                  .rendered_return,
              "<none>");
    EXPECT_EQ(model_->apply(call("FindMax")).rendered_return, "<empty>");
    EXPECT_EQ(model_->apply(call("IsEmpty")).rendered_return, "1");

    const auto added = model_->apply(add("AddHead", three_));
    EXPECT_TRUE(added.modeled);
    EXPECT_TRUE(added.has_return);
    EXPECT_EQ(added.rendered_return, "<object>");
    EXPECT_EQ(model_->apply(add("AddTail", seven_)).rendered_return, "<object>");
    EXPECT_EQ(model_->apply(add("AddHead", one_)).rendered_return, "<object>");
    EXPECT_EQ(model_->abstract_state(),
              "count=3 [CInt(1), CInt(3), CInt(7)]");

    EXPECT_EQ(model_->apply(call("GetCount")).rendered_return, "3");
    // RemoveAt completes its index modulo the count (wrapper semantics)
    // and answers the new count.
    EXPECT_EQ(model_->apply(call("RemoveAt", {domain::Value::make_int(4)}))
                  .rendered_return,
              "2");
    EXPECT_EQ(model_->abstract_state(), "count=2 [CInt(1), CInt(7)]");
    EXPECT_EQ(model_->apply(call("RemoveHead")).rendered_return, "CInt(1)");
}

TEST_F(ListModelFixture, SortsAndExtremaFollowTheSpecifiedOrder) {
    (void)model_->apply(add("AddTail", seven_));
    (void)model_->apply(add("AddTail", one_));
    (void)model_->apply(add("AddTail", three_));
    EXPECT_EQ(model_->apply(call("FindMax")).rendered_return, "CInt(7)");
    EXPECT_EQ(model_->apply(call("FindMin")).rendered_return, "CInt(1)");

    const auto sorted = model_->apply(call("ShellSort"));
    EXPECT_TRUE(sorted.modeled);
    EXPECT_FALSE(sorted.has_return);
    EXPECT_EQ(model_->abstract_state(),
              "count=3 [CInt(1), CInt(3), CInt(7)]");
}

TEST_F(ListModelFixture, UnknownCallsDisengageInsteadOfDiverging) {
    EXPECT_FALSE(model_->apply(call("Serialize")).modeled);
    // Unmodeled argument shape on a known method: same contract.
    EXPECT_FALSE(model_->apply(call("AddHead")).modeled);
}

TEST(ListModelScope, BaseModelDoesNotPredictSortableMethods) {
    auto base = model::binding_for("CObList")->factory();
    ASSERT_TRUE(base->construct({}));
    EXPECT_FALSE(base->apply(call("FindMax")).modeled);
    EXPECT_FALSE(base->apply(call("Sort1")).modeled);
}

// ----------------------------------------------------------- live projection

TEST(LiveProjection, AgreesWithModelAbstraction) {
    const driver::ModelBinding* binding = model::binding_for("CObList");
    ASSERT_NE(binding, nullptr);

    mfc::CInt three{3}, seven{7};
    mfc::CObList live;
    (void)live.AddTail(&three);
    (void)live.AddTail(&seven);

    auto model = binding->factory();
    ASSERT_TRUE(model->construct({}));
    (void)model->apply(add("AddTail", three));
    (void)model->apply(add("AddTail", seven));

    EXPECT_EQ(binding->project(&live), "count=2 [CInt(3), CInt(7)]");
    EXPECT_EQ(binding->project(&live), model->abstract_state());
}

// --------------------------------------------------------------- lockstep

class LockstepFixture : public ::testing::Test {
protected:
    LockstepFixture()
        : component_(mfc::coblist_spec(), mfc::coblist_binding()) {
        component_.set_completions(mfc::make_completions(pool_));
    }

    driver::SuiteResult run_with_model(const driver::TestSuite& suite,
                                       bool promote = false) const {
        driver::RunnerOptions options;
        options.model = model::binding_for("CObList");
        options.promote_divergence = promote;
        return driver::TestRunner(component_.registry(), options).run(suite);
    }

    mfc::ElementPool pool_;
    core::SelfTestableComponent component_;
};

TEST_F(LockstepFixture, UnmutatedComponentNeverDiverges) {
    const auto suite = component_.generate_tests();
    const auto observed = run_with_model(suite, /*promote=*/true);
    for (const auto& r : observed.results) {
        EXPECT_EQ(r.verdict, driver::Verdict::Pass) << r.case_id;
        EXPECT_TRUE(r.model_divergence.empty())
            << r.case_id << ": " << r.model_divergence;
    }
}

TEST_F(LockstepFixture, ObservationIsASideChannel) {
    // Attaching the model must not change verdicts, reports, or logs —
    // byte-identical results aside from the divergence side channel.
    const auto suite = component_.generate_tests();
    const auto bare = driver::TestRunner(component_.registry()).run(suite);
    const auto modeled = run_with_model(suite);
    ASSERT_EQ(bare.results.size(), modeled.results.size());
    for (std::size_t i = 0; i < bare.results.size(); ++i) {
        EXPECT_EQ(bare.results[i].verdict, modeled.results[i].verdict);
        EXPECT_EQ(bare.results[i].report, modeled.results[i].report);
        EXPECT_EQ(bare.results[i].log, modeled.results[i].log);
    }
}

// The paper's assertion/golden oracle verifiably misses this mutant
// (EXPERIMENTS.md); only the reference model kills it.  Keep in sync
// with the oracle-strength CI gate.
constexpr const char* kModelOnlyMutant =
    "CObList::RemoveAt@s9.IndVarRepGlob.m_pNodeTail";

const mutation::Mutant* find_mutant(const std::vector<mutation::Mutant>& all,
                                    const std::string& id) {
    for (const auto& m : all) {
        if (m.id() == id) return &m;
    }
    return nullptr;
}

TEST_F(LockstepFixture, SeededMutantDiverges) {
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    const auto* mutant = find_mutant(mutants, kModelOnlyMutant);
    ASSERT_NE(mutant, nullptr);

    const auto suite = component_.generate_tests();
    const mutation::MutantActivation activation(*mutant);
    const auto observed = run_with_model(suite, /*promote=*/true);

    std::size_t diverged = 0;
    for (const auto& r : observed.results) {
        if (!r.model_divergence.empty()) {
            ++diverged;
            EXPECT_EQ(r.verdict, driver::Verdict::ModelDivergence) << r.case_id;
            EXPECT_FALSE(r.failed_method.empty());
        }
    }
    EXPECT_GT(diverged, 0u);
}

TEST_F(LockstepFixture, DifferentialClassificationIsModelOnly) {
    // End-to-end reproduction of the oracle-strength measurement: the
    // seeded mutant survives the assertion/golden oracle but is killed
    // by the model channel of the same single execution.
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    const auto* mutant = find_mutant(mutants, kModelOnlyMutant);
    ASSERT_NE(mutant, nullptr);

    const auto suite = component_.generate_tests();
    const auto golden = oracle::GoldenRecord::from(run_with_model(suite));
    ASSERT_TRUE(golden.all_passed());

    driver::SuiteResult mutated;
    {
        const mutation::MutantActivation activation(*mutant);
        mutated = run_with_model(suite);  // no promotion: campaign mode
    }

    const auto kill = oracle::classify_suite_differential(golden, mutated);
    EXPECT_EQ(kill.with_model, oracle::KillReason::ModelDivergence);
    EXPECT_EQ(kill.without_model, oracle::KillReason::None);
    EXPECT_TRUE(kill.model_only());
}

}  // namespace
}  // namespace stc
