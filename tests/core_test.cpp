#include <gtest/gtest.h>

#include "stc/core/self_testable.h"
#include "test_component.h"

namespace stc::core {
namespace {

class CoreTest : public ::testing::Test {
protected:
    CoreTest()
        : component_(stc::testing::counter_spec(), stc::testing::counter_binding()) {}

    SelfTestableComponent component_;
};

TEST_F(CoreTest, ExposesSpecAndRegistry) {
    EXPECT_EQ(component_.spec().class_name, "Counter");
    EXPECT_NE(component_.registry().find("Counter"), nullptr);
}

TEST_F(CoreTest, GenerateThenRunEqualsOneShot) {
    driver::GeneratorOptions options;
    options.seed = 5;
    const auto suite = component_.generate_tests(options);
    const auto staged = component_.self_test(suite);
    const auto oneshot = component_.self_test(options);
    EXPECT_EQ(staged.result.passed(), oneshot.result.passed());
    EXPECT_EQ(staged.suite.size(), oneshot.suite.size());
}

TEST_F(CoreTest, ReportSummaryAndAssertionAccounting) {
    const auto report = component_.self_test();
    EXPECT_TRUE(report.all_passed());
    EXPECT_GT(report.assertions_checked, 0u);
    EXPECT_EQ(report.assertions_violated, 0u);
    const auto summary = report.summary();
    EXPECT_NE(summary.find("self-test of Counter"), std::string::npos);
    EXPECT_NE(summary.find("assertions:"), std::string::npos);
}

TEST_F(CoreTest, IncrementalPlanDelegatesToPlanner) {
    // Counter's methods are all New (fresh class): everything retests.
    const auto suite = component_.generate_tests();
    const auto plan = component_.incremental_plan(suite);
    EXPECT_EQ(plan.new_cases(), suite.size());
    EXPECT_EQ(plan.reused_cases(), 0u);
}

TEST_F(CoreTest, BindingSpecNameMismatchThrows) {
    reflect::Binder<stc::testing::Counter> b("SomethingElse");
    b.ctor<>();
    EXPECT_THROW(SelfTestableComponent(stc::testing::counter_spec(), b.take()),
                 SpecError);
}

TEST_F(CoreTest, FailureCountsSurfaceInSummary) {
    // Remove the Inc binding so every Inc-containing case is a SetupError.
    reflect::Binder<stc::testing::Counter> b("Counter");
    b.ctor<>();
    b.ctor<int>();
    b.method("Dec", &stc::testing::Counter::Dec);
    b.method("Reset", &stc::testing::Counter::Reset);
    b.method("Get", &stc::testing::Counter::Get);
    SelfTestableComponent crippled(stc::testing::counter_spec(), b.take());
    const auto report = crippled.self_test();
    EXPECT_FALSE(report.all_passed());
    EXPECT_GT(report.result.count(driver::Verdict::SetupError), 0u);
    EXPECT_NE(report.summary().find("setup="), std::string::npos);
}

}  // namespace
}  // namespace stc::core
