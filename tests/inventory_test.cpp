// Composition reuse tests: Inventory composes the self-testable
// CSortableObList; the part's BIT keeps working inside the whole, and
// faults injected into the part surface through the whole's self-test.
#include <gtest/gtest.h>

#include "inventory_component.h"
#include "stc/core/self_testable.h"
#include "stc/mfc/component.h"
#include "stc/mutation/engine.h"

namespace stc::examples {
namespace {

TEST(Inventory, BasicLifecycle) {
    Inventory inventory;
    EXPECT_EQ(inventory.OnHand(), 0);
    EXPECT_EQ(inventory.Ship(), -1);  // defensive on empty
    EXPECT_EQ(inventory.CheapestSku(), -1);

    inventory.Receive(30);
    inventory.Receive(10);
    inventory.Receive(20);
    EXPECT_EQ(inventory.OnHand(), 3);
    EXPECT_EQ(inventory.CheapestSku(), 10);
    EXPECT_EQ(inventory.Ship(), 10);  // cheapest first
    EXPECT_EQ(inventory.Ship(), 20);
    EXPECT_EQ(inventory.OnHand(), 1);
    EXPECT_EQ(inventory.Received(), 3);
    EXPECT_EQ(inventory.Shipped(), 2);
}

TEST(Inventory, BitDelegatesToComposedPart) {
    bit::TestModeGuard test_mode;
    Inventory inventory;
    inventory.Receive(5);
    EXPECT_NO_THROW(inventory.InvariantTest());
    // The whole's report embeds the part's report.
    EXPECT_NE(inventory.report().find("CSortableObList count=1"), std::string::npos);
    EXPECT_NE(inventory.report().find("on_hand=1"), std::string::npos);
}

TEST(Inventory, SelfTestIsGreen) {
    core::SelfTestableComponent component(inventory_spec(), inventory_binding());
    const auto report = component.self_test();
    EXPECT_TRUE(report.all_passed()) << report.summary();
    EXPECT_GT(report.assertions_checked, 0u);
}

TEST(Inventory, FaultInTheComposedPartSurfacesInTheWholesSuite) {
    // Activate an interface mutant inside the *composed* CSortableObList
    // (Sort1's new-head site replaced by NULL): the Inventory suite —
    // which never mentions the list directly — must reveal it, because
    // the part's test resources (assertions, pool checks) travel with it
    // into the composition.
    const auto* sort1 = mfc::descriptors().find("CSortableObList", "Sort1");
    ASSERT_NE(sort1, nullptr);
    const mutation::Mutant m{
        sort1, 19, mutation::Operator::IndVarRepReq, "",
        mutation::required_constants(mutation::pointer_type("CNode")).front()};

    core::SelfTestableComponent component(inventory_spec(), inventory_binding());
    const auto suite = component.generate_tests();

    const auto healthy = component.self_test(suite);
    ASSERT_TRUE(healthy.all_passed());

    const mutation::MutantActivation activation(m);
    const auto mutated = component.self_test(suite);
    EXPECT_FALSE(mutated.all_passed())
        << "the composed part's fault must not stay hidden in the whole";
}

}  // namespace
}  // namespace stc::examples
