#include <gtest/gtest.h>

#include <sstream>

#include "stack_component.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/driver/template_suite.h"
#include "stc/support/error.h"
#include "test_component.h"

namespace stc::driver {
namespace {

// --------------------------------------------------------- template suites

TEST(TemplateSuites, InstantiatedNameFormatting) {
    EXPECT_EQ(instantiated_name("CStack", {}), "CStack");
    EXPECT_EQ(instantiated_name("CStack", {"int"}), "CStack<int>");
    EXPECT_EQ(instantiated_name("Map", {"int", "double"}), "Map<int, double>");
}

TEST(TemplateSuites, PlainSpecYieldsOneInstantiation) {
    const auto out = generate_template_suites(stc::testing::counter_spec());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].instantiated_class, "Counter");
    EXPECT_TRUE(out[0].type_arguments.empty());
}

TEST(TemplateSuites, OneParamExpandsPerType) {
    const auto spec = stc::examples::stack_spec();
    const auto out = generate_template_suites(spec);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].instantiated_class, "CTypedStack<int>");
    EXPECT_EQ(out[1].instantiated_class, "CTypedStack<double>");
    // Same seed: suites are structurally identical across instantiations.
    ASSERT_EQ(out[0].suite.size(), out[1].suite.size());
    for (std::size_t i = 0; i < out[0].suite.size(); ++i) {
        EXPECT_EQ(out[0].suite.cases[i].transaction_text,
                  out[1].suite.cases[i].transaction_text);
    }
}

TEST(TemplateSuites, CartesianProductForTwoParams) {
    tspec::SpecBuilder b("Pair");
    b.template_param("K", {"int", "double"});
    b.template_param("V", {"int", "double", "CInt"});
    b.method("m1", "Pair", tspec::MethodCategory::Constructor);
    b.method("m2", "~Pair", tspec::MethodCategory::Destructor);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m2"});
    b.edge("n1", "n2");
    const auto out = generate_template_suites(b.build());
    EXPECT_EQ(out.size(), 6u);  // 2 x 3
    for (const auto& inst : out) {
        EXPECT_EQ(inst.type_arguments.size(), 2u);
        EXPECT_EQ(inst.suite.class_name, inst.instantiated_class);
    }
}

TEST(TemplateSuites, EmptyTypeListRejected) {
    tspec::SpecBuilder b("Bad");
    b.template_param("T", {});
    b.method("m1", "Bad", tspec::MethodCategory::Constructor);
    b.node("n1", true, {"m1"});
    EXPECT_THROW((void)generate_template_suites(b.build()), SpecError);
}

TEST(TemplateSuites, BothStackInstantiationsRunGreen) {
    reflect::Registry registry;
    stc::examples::register_stack_instantiations(registry);
    const TestRunner runner(registry);
    for (const auto& inst :
         generate_template_suites(stc::examples::stack_spec())) {
        const auto result = runner.run(inst.suite);
        EXPECT_EQ(result.failed(), 0u) << inst.instantiated_class;
        EXPECT_GT(result.passed(), 0u);
    }
}

// ----------------------------------------------------------- suite save/load

class SuiteIoTest : public ::testing::Test {
protected:
    SuiteIoTest() : suite_(DriverGenerator(stc::testing::counter_spec()).generate()) {
        registry_.add(stc::testing::counter_binding());
    }

    TestSuite suite_;
    reflect::Registry registry_;
};

TEST_F(SuiteIoTest, RoundTripPreservesEverything) {
    std::stringstream buffer;
    save_suite(buffer, suite_);
    const TestSuite loaded = load_suite(buffer);

    EXPECT_EQ(loaded.class_name, suite_.class_name);
    EXPECT_EQ(loaded.seed, suite_.seed);
    EXPECT_EQ(loaded.model_nodes, suite_.model_nodes);
    EXPECT_EQ(loaded.model_links, suite_.model_links);
    EXPECT_EQ(loaded.transactions_enumerated, suite_.transactions_enumerated);
    ASSERT_EQ(loaded.size(), suite_.size());
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        const TestCase& a = suite_.cases[i];
        const TestCase& b = loaded.cases[i];
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.transaction.path, a.transaction.path);
        EXPECT_EQ(b.transaction_text, a.transaction_text);
        ASSERT_EQ(b.calls.size(), a.calls.size());
        for (std::size_t c = 0; c < a.calls.size(); ++c) {
            EXPECT_EQ(b.calls[c].method_id, a.calls[c].method_id);
            EXPECT_EQ(b.calls[c].method_name, a.calls[c].method_name);
            EXPECT_EQ(b.calls[c].is_constructor, a.calls[c].is_constructor);
            EXPECT_EQ(b.calls[c].is_destructor, a.calls[c].is_destructor);
            EXPECT_EQ(b.calls[c].arguments, a.calls[c].arguments);
        }
    }
}

TEST_F(SuiteIoTest, ReloadedSuiteRunsIdentically) {
    std::stringstream buffer;
    save_suite(buffer, suite_);
    const TestSuite loaded = load_suite(buffer);

    const TestRunner runner(registry_);
    const SuiteResult original = runner.run(suite_);
    const SuiteResult rerun = runner.run(loaded);
    ASSERT_EQ(rerun.results.size(), original.results.size());
    for (std::size_t i = 0; i < original.results.size(); ++i) {
        EXPECT_EQ(rerun.results[i].verdict, original.results[i].verdict);
        EXPECT_EQ(rerun.results[i].report, original.results[i].report);
    }
}

TEST_F(SuiteIoTest, SpecialCharactersSurviveEncoding) {
    TestSuite tricky;
    tricky.class_name = "X";
    TestCase tc;
    tc.id = "TC0";
    tc.transaction_text = "n1 -> n2";
    MethodCall call;
    call.method_id = "m1";
    call.method_name = "Say";
    call.is_constructor = true;
    call.arguments.push_back(domain::Value::make_string("a|b%c\nd"));
    call.arguments.push_back(domain::Value::make_real(0.1));
    call.arguments.push_back(domain::Value::make_int(-7));
    tc.calls.push_back(call);
    tricky.cases.push_back(tc);

    std::stringstream buffer;
    save_suite(buffer, tricky);
    const TestSuite loaded = load_suite(buffer);
    ASSERT_EQ(loaded.cases.size(), 1u);
    EXPECT_EQ(loaded.cases[0].calls[0].arguments[0].as_string(), "a|b%c\nd");
    EXPECT_DOUBLE_EQ(loaded.cases[0].calls[0].arguments[1].as_real(), 0.1);
    EXPECT_EQ(loaded.cases[0].calls[0].arguments[2].as_int(), -7);
}

TEST_F(SuiteIoTest, PointerArgumentsBecomePlaceholders) {
    TestSuite suite;
    suite.class_name = "X";
    TestCase tc;
    tc.id = "TC0";
    MethodCall call;
    call.method_id = "m1";
    call.method_name = "X";
    call.is_constructor = true;
    int live = 0;
    call.arguments.push_back(domain::Value::make_pointer(&live, "Provider"));
    tc.calls.push_back(call);
    suite.cases.push_back(tc);

    std::stringstream buffer;
    save_suite(buffer, suite);
    TestSuite loaded = load_suite(buffer);
    const auto& arg = loaded.cases[0].calls[0].arguments[0];
    EXPECT_EQ(arg.as_pointer(), nullptr);  // live pointer did not persist
    EXPECT_EQ(arg.as_object().type_name, "Provider");

    // Re-completion restores executability.
    CompletionRegistry completions;
    int replacement = 0;
    completions.provide("Provider", [&replacement](support::Pcg32&) {
        return domain::Value::make_pointer(&replacement, "Provider");
    });
    const std::size_t completed = recomplete_suite(loaded, completions, 1);
    EXPECT_EQ(completed, 1u);
    EXPECT_EQ(loaded.cases[0].calls[0].arguments[0].as_pointer(), &replacement);
    EXPECT_FALSE(loaded.cases[0].needs_completion);
}

TEST_F(SuiteIoTest, RecompleteLeavesUnprovidedClassesPending) {
    TestSuite suite;
    suite.class_name = "X";
    TestCase tc;
    tc.id = "TC0";
    MethodCall call;
    call.method_id = "m1";
    call.method_name = "X";
    call.is_constructor = true;
    call.arguments.push_back(domain::Value::make_pointer(nullptr, "Unknown"));
    tc.calls.push_back(call);
    tc.needs_completion = true;
    suite.cases.push_back(tc);

    const CompletionRegistry empty;
    EXPECT_EQ(recomplete_suite(suite, empty, 1), 0u);
    EXPECT_TRUE(suite.cases[0].needs_completion);
}

TEST_F(SuiteIoTest, MalformedInputRejected) {
    std::stringstream not_magic("something else\n");
    EXPECT_THROW((void)load_suite(not_magic), Error);

    std::stringstream bad_case("concat-suite 1\nclass X\ncase onlyone\n");
    EXPECT_THROW((void)load_suite(bad_case), Error);

    std::stringstream orphan_call("concat-suite 1\ncall m1|f|0|0\n");
    EXPECT_THROW((void)load_suite(orphan_call), Error);

    std::stringstream bad_value(
        "concat-suite 1\ncase TC0|t|0|0\ncall m1|f|1|0|Q:zz\nend\n");
    EXPECT_THROW((void)load_suite(bad_value), Error);
}

}  // namespace
}  // namespace stc::driver
