#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "test_component.h"

namespace stc::driver {
namespace {

using testing_fixture = stc::testing::Counter;

class DriverTest : public ::testing::Test {
protected:
    DriverTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(stc::testing::counter_binding());
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
};

// ---------------------------------------------------------------- generator

TEST_F(DriverTest, GeneratesOneCasePerTransaction) {
    DriverGenerator generator(spec_);
    const TestSuite suite = generator.generate();
    EXPECT_EQ(suite.class_name, "Counter");
    EXPECT_EQ(suite.size(), suite.transactions_enumerated);
    EXPECT_EQ(suite.model_nodes, 7u);
    EXPECT_GT(suite.size(), 0u);
}

TEST_F(DriverTest, EveryCaseStartsWithConstructorAndEndsWithDestructorNode) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    for (const auto& tc : suite.cases) {
        ASSERT_FALSE(tc.calls.empty());
        EXPECT_TRUE(tc.calls.front().is_constructor) << tc.transaction_text;
        EXPECT_TRUE(tc.calls.back().is_destructor) << tc.transaction_text;
    }
}

TEST_F(DriverTest, ArgumentsDrawnFromDeclaredDomains) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.calls) {
            if (call.method_name == "Counter" && call.arguments.size() == 1) {
                const auto step = call.arguments[0].as_int();
                EXPECT_GE(step, 1);
                EXPECT_LE(step, 10);
            }
        }
        EXPECT_FALSE(tc.needs_completion);
    }
}

TEST_F(DriverTest, GenerationIsDeterministicPerSeed) {
    GeneratorOptions options;
    options.seed = 77;
    const TestSuite a = DriverGenerator(spec_, options).generate();
    const TestSuite b = DriverGenerator(spec_, options).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.cases[i].calls.size(), b.cases[i].calls.size());
        for (std::size_t c = 0; c < a.cases[i].calls.size(); ++c) {
            EXPECT_EQ(a.cases[i].calls[c].arguments, b.cases[i].calls[c].arguments);
        }
    }

    GeneratorOptions other;
    other.seed = 78;
    const TestSuite c = DriverGenerator(spec_, other).generate();
    bool any_difference = false;
    for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
        for (std::size_t k = 0; k < a.cases[i].calls.size(); ++k) {
            if (a.cases[i].calls[k].arguments != c.cases[i].calls[k].arguments) {
                any_difference = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST_F(DriverTest, CasesPerTransactionMultiplies) {
    GeneratorOptions options;
    options.cases_per_transaction = 3;
    const TestSuite suite = DriverGenerator(spec_, options).generate();
    EXPECT_EQ(suite.size(), suite.transactions_enumerated * 3);
}

TEST_F(DriverTest, BoundaryPolicyUsesDomainEnds) {
    GeneratorOptions options;
    options.value_policy = ValuePolicy::Boundary;
    options.cases_per_transaction = 2;
    const TestSuite suite = DriverGenerator(spec_, options).generate();
    bool saw_lo = false;
    bool saw_hi = false;
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.calls) {
            if (call.method_name == "Counter" && call.arguments.size() == 1) {
                saw_lo = saw_lo || call.arguments[0].as_int() == 1;
                saw_hi = saw_hi || call.arguments[0].as_int() == 10;
            }
        }
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST_F(DriverTest, WeakerCriteriaShrinkTheSuite) {
    GeneratorOptions options;
    options.criterion = tfm::Criterion::AllNodes;
    const TestSuite nodes = DriverGenerator(spec_, options).generate();
    const TestSuite all = DriverGenerator(spec_).generate();
    EXPECT_LT(nodes.size(), all.size());
    EXPECT_GT(nodes.size(), 0u);
}

TEST_F(DriverTest, StructuredParamWithoutCompletionFlagsManualWork) {
    tspec::SpecBuilder b("Counter");
    b.method("m1", "Counter", tspec::MethodCategory::Constructor);
    b.method("m2", "~Counter", tspec::MethodCategory::Destructor);
    b.method("m3", "Attach", tspec::MethodCategory::New)
        .param_pointer("peer", "Counter");
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m2"});
    b.edge("n1", "n2").edge("n2", "n3");
    const auto spec = b.build();

    const TestSuite suite = DriverGenerator(spec).generate();
    ASSERT_EQ(suite.size(), 1u);
    EXPECT_TRUE(suite.cases[0].needs_completion);

    // With a completion registered the flag clears and the value is live.
    CompletionRegistry completions;
    int target = 0;
    completions.provide("Counter", [&target](support::Pcg32&) {
        return domain::Value::make_pointer(&target, "Counter");
    });
    const TestSuite completed =
        DriverGenerator(spec).completions(&completions).generate();
    EXPECT_FALSE(completed.cases[0].needs_completion);
}

TEST_F(DriverTest, RenderedCallsMatchFig6Style) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    bool saw_inc = false;
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.calls) {
            if (call.method_name == "Inc") {
                EXPECT_EQ(call.render(), "Inc()");
                saw_inc = true;
            }
        }
    }
    EXPECT_TRUE(saw_inc);
}

// ------------------------------------------------------------------ runner

TEST_F(DriverTest, HealthyComponentPassesWholeSuite) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    const SuiteResult result = TestRunner(registry_).run(suite);
    EXPECT_EQ(result.passed(), suite.size());
    EXPECT_EQ(result.failed(), 0u);
    for (const auto& r : result.results) {
        EXPECT_EQ(r.verdict, Verdict::Pass);
        EXPECT_NE(r.log.find("OK!"), std::string::npos);
        EXPECT_NE(r.report.find("Counter{"), std::string::npos);
    }
}

TEST_F(DriverTest, LogFollowsFig6Format) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    const SuiteResult result = TestRunner(registry_).run(suite);
    EXPECT_NE(result.log.find("TestCase TC0 OK!"), std::string::npos);
}

TEST_F(DriverTest, ReportsCaptureObservableState) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    const SuiteResult result = TestRunner(registry_).run(suite);
    // Get() returns ints: the observation log records them.
    bool saw_return = false;
    for (const auto& r : result.results) {
        saw_return = saw_return || r.report.find("Get -> ") != std::string::npos;
    }
    EXPECT_TRUE(saw_return);
}

/// A counter whose Inc() breaks the class invariant after 2 increments.
class BrokenCounter : public stc::testing::Counter {
public:
    void BadInc() {
        // bypass instrumentation: directly corrupt via many increments
        for (int i = 0; i < stc::testing::Counter::kMax + 5; ++i) Inc();
    }
};

TEST_F(DriverTest, AssertionViolationVerdictNamesTheMethod) {
    reflect::Binder<BrokenCounter> b("BrokenCounter");
    b.ctor<>();
    b.method("BadInc", &BrokenCounter::BadInc);
    reflect::Registry registry;
    registry.add(b.take());

    tspec::SpecBuilder sb("BrokenCounter");
    sb.method("m1", "BrokenCounter", tspec::MethodCategory::Constructor);
    sb.method("m2", "~BrokenCounter", tspec::MethodCategory::Destructor);
    sb.method("m3", "BadInc", tspec::MethodCategory::New);
    sb.node("n1", true, {"m1"});
    sb.node("n2", false, {"m3"});
    sb.node("n3", false, {"m2"});
    sb.edge("n1", "n2").edge("n2", "n3");

    const TestSuite suite = DriverGenerator(sb.build()).generate();
    const SuiteResult result = TestRunner(registry).run(suite);
    ASSERT_EQ(result.results.size(), 1u);
    const TestResult& r = result.results[0];
    EXPECT_EQ(r.verdict, Verdict::AssertionViolation);
    ASSERT_TRUE(r.assertion_kind.has_value());
    EXPECT_EQ(r.failed_method, "BadInc()");
    EXPECT_NE(r.log.find("Method called: BadInc()"), std::string::npos);
    EXPECT_EQ(result.count(Verdict::AssertionViolation), 1u);
}

/// Synthetic components raising each exception family.
class Exploder : public bit::BuiltInTest {
public:
    void Crash() { throw CrashSignal("simulated wild pointer"); }
    void Exception() { throw std::runtime_error("plain failure"); }
    void InvariantTest() const override {}
    void Reporter(std::ostream& os) const override { os << "Exploder"; }
};

TestSuite exploder_suite(const char* method) {
    tspec::SpecBuilder sb("Exploder");
    sb.method("m1", "Exploder", tspec::MethodCategory::Constructor);
    sb.method("m2", "~Exploder", tspec::MethodCategory::Destructor);
    sb.method("m3", method, tspec::MethodCategory::New);
    sb.node("n1", true, {"m1"});
    sb.node("n2", false, {"m3"});
    sb.node("n3", false, {"m2"});
    sb.edge("n1", "n2").edge("n2", "n3");
    return DriverGenerator(sb.build()).generate();
}

reflect::Registry exploder_registry() {
    reflect::Binder<Exploder> b("Exploder");
    b.ctor<>();
    b.method("Crash", &Exploder::Crash);
    b.method("Exception", &Exploder::Exception);
    reflect::Registry registry;
    registry.add(b.take());
    return registry;
}

TEST_F(DriverTest, CrashSignalBecomesCrashVerdict) {
    const auto registry = exploder_registry();
    const SuiteResult result = TestRunner(registry).run(exploder_suite("Crash"));
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_EQ(result.results[0].verdict, Verdict::Crash);
}

TEST_F(DriverTest, OtherExceptionsBecomeUncaughtException) {
    const auto registry = exploder_registry();
    const SuiteResult result = TestRunner(registry).run(exploder_suite("Exception"));
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_EQ(result.results[0].verdict, Verdict::UncaughtException);
    EXPECT_EQ(result.results[0].message, "plain failure");
}

TEST_F(DriverTest, MissingBindingIsSetupError) {
    const auto registry = exploder_registry();
    auto suite = exploder_suite("Crash");
    for (auto& tc : suite.cases) {
        for (auto& call : tc.calls) {
            if (call.method_name == "Crash") call.method_name = "Vanished";
        }
    }
    const SuiteResult result = TestRunner(registry).run(suite);
    EXPECT_EQ(result.results[0].verdict, Verdict::SetupError);
}

TEST_F(DriverTest, UnknownClassThrows) {
    TestSuite suite;
    suite.class_name = "NotRegistered";
    EXPECT_THROW((void)TestRunner(registry_).run(suite), ReflectError);
}

TEST_F(DriverTest, InvariantCheckingCanBeDisabled) {
    // With invariants off, the BrokenCounter-style overflow must surface
    // through the postcondition instead — prove the option has effect by
    // counting assertion checks.
    const TestSuite suite = DriverGenerator(spec_).generate();
    auto& stats = bit::AssertionStats::instance();

    stats.reset();
    (void)TestRunner(registry_).run(suite);
    const auto with_invariants = stats.total_checked();

    stats.reset();
    RunnerOptions no_inv;
    no_inv.check_invariants = false;
    (void)TestRunner(registry_, no_inv).run(suite);
    const auto without_invariants = stats.total_checked();

    EXPECT_LT(without_invariants, with_invariants);
    stats.reset();
}

TEST_F(DriverTest, ObserveEachCallProducesRicherReports) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    RunnerOptions verbose;
    verbose.observe_each_call = true;
    const SuiteResult observed = TestRunner(registry_, verbose).run(suite);
    const SuiteResult plain = TestRunner(registry_).run(suite);
    ASSERT_EQ(observed.results.size(), plain.results.size());
    std::size_t longer = 0;
    for (std::size_t i = 0; i < observed.results.size(); ++i) {
        longer += observed.results[i].report.size() > plain.results[i].report.size()
                      ? 1
                      : 0;
    }
    EXPECT_GT(longer, 0u);
}

TEST_F(DriverTest, LogFileMirrorsTheResultTxtBehaviour) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    RunnerOptions options;
    options.log_path = "/tmp/stc_runner_result.txt";
    std::remove(options.log_path.c_str());

    const SuiteResult result = TestRunner(registry_, options).run(suite);
    std::ifstream in(options.log_path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), result.log);
    EXPECT_NE(content.str().find("TestCase TC0 OK!"), std::string::npos);

    // Appending semantics, as in the paper's ios::app drivers.
    (void)TestRunner(registry_, options).run(suite);
    std::ifstream again(options.log_path);
    std::stringstream doubled;
    doubled << again.rdbuf();
    EXPECT_EQ(doubled.str().size(), 2 * content.str().size());
    std::remove(options.log_path.c_str());
}

TEST(VerdictText, RoundTripsExhaustively) {
    // Every verdict kind — including the two that early reporters tended
    // to drop, SetupError and ContractNotEnforced — survives the text
    // round-trip used by the corpus format and the telemetry stream.
    std::set<std::string> names;
    for (const Verdict v : kAllVerdicts) {
        const char* text = to_string(v);
        EXPECT_TRUE(names.insert(text).second) << text;  // names are distinct
        const auto back = verdict_from_string(text);
        ASSERT_TRUE(back.has_value()) << text;
        EXPECT_EQ(*back, v);
    }
    EXPECT_EQ(names.size(), std::size(kAllVerdicts));
    EXPECT_TRUE(names.count("setup-error") == 1);
    EXPECT_TRUE(names.count("contract-not-enforced") == 1);
    EXPECT_FALSE(verdict_from_string("no-such-verdict").has_value());
    EXPECT_FALSE(verdict_from_string("").has_value());
    EXPECT_FALSE(verdict_from_string("Pass").has_value());  // case-sensitive
}

TEST_F(DriverTest, RunsAreDeterministic) {
    const TestSuite suite = DriverGenerator(spec_).generate();
    const SuiteResult a = TestRunner(registry_).run(suite);
    const SuiteResult b = TestRunner(registry_).run(suite);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].verdict, b.results[i].verdict);
        EXPECT_EQ(a.results[i].report, b.results[i].report);
        EXPECT_EQ(a.results[i].log, b.results[i].log);
    }
}

}  // namespace
}  // namespace stc::driver
