#include <gtest/gtest.h>

#include "stc/core/self_testable.h"
#include "stc/history/incremental.h"
#include "stc/mfc/component.h"
#include "stc/mutation/engine.h"

namespace stc::mfc {
namespace {

// ------------------------------------------------------------------ specs

TEST(Specs, BothSpecsValidate) {
    EXPECT_TRUE(coblist_spec().validate().empty());
    EXPECT_TRUE(sortable_spec().validate().empty());
}

TEST(Specs, SortableModelMatchesThePaperSize) {
    // §4: "a test model composed of 16 nodes and 43 links".
    const auto graph = sortable_spec().build_tfm();
    EXPECT_EQ(graph.node_count(), 16u);
    EXPECT_EQ(graph.edge_count(), 43u);
    EXPECT_TRUE(graph.diagnose().empty());
}

TEST(Specs, CoblistTfmIsSound) {
    const auto graph = coblist_spec().build_tfm();
    EXPECT_TRUE(graph.diagnose().empty());
}

TEST(Specs, HierarchyConforms) {
    EXPECT_TRUE(history::validate_hierarchy(coblist_spec(), sortable_spec()).empty());
}

TEST(Specs, MethodCategoriesEncodeReuse) {
    const auto child = sortable_spec();
    EXPECT_EQ(child.find_method("m3")->category, tspec::MethodCategory::Inherited);
    EXPECT_EQ(child.find_method("m12")->category, tspec::MethodCategory::New);
    EXPECT_EQ(child.find_method("m1")->category, tspec::MethodCategory::Constructor);
    EXPECT_EQ(child.superclass, "CObList");
}

// ------------------------------------------------------------ element pool

TEST(ElementPool, OwnsComparableElements) {
    ElementPool pool;
    CObject* a = pool.make(3);
    CObject* b = pool.make(5);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_LT(a->Compare(*b), 0);
}

TEST(ElementPool, CompletionDrawsFromRange) {
    ElementPool pool;
    auto completion = pool.completion(10, 20);
    support::Pcg32 rng(1);
    for (int i = 0; i < 50; ++i) {
        const auto v = completion(rng);
        const auto* element = static_cast<CInt*>(v.as_object().ptr);
        ASSERT_NE(element, nullptr);
        EXPECT_GE(element->value(), 10);
        EXPECT_LE(element->value(), 20);
    }
    EXPECT_EQ(pool.size(), 50u);
}

// --------------------------------------------------------------- baselines

class ComponentFixture : public ::testing::Test {
protected:
    ComponentFixture()
        : base_(coblist_spec(), coblist_binding()),
          derived_(sortable_spec(), sortable_binding()) {
        base_.set_completions(make_completions(pool_));
        derived_.set_completions(make_completions(pool_));
    }

    ElementPool pool_;
    core::SelfTestableComponent base_;
    core::SelfTestableComponent derived_;
};

TEST_F(ComponentFixture, CoblistBaselineIsClean) {
    const auto report = base_.self_test();
    EXPECT_TRUE(report.all_passed()) << report.summary();
    EXPECT_GT(report.assertions_checked, 0u);
    EXPECT_EQ(report.assertions_violated, 0u);
}

TEST_F(ComponentFixture, SortableBaselineIsClean) {
    const auto report = derived_.self_test();
    EXPECT_TRUE(report.all_passed()) << report.summary();
}

TEST_F(ComponentFixture, SortableBaselineCleanUnderBoundaryPolicy) {
    driver::GeneratorOptions options;
    options.value_policy = driver::ValuePolicy::Boundary;
    options.cases_per_transaction = 2;
    const auto report = derived_.self_test(options);
    EXPECT_TRUE(report.all_passed()) << report.summary();
}

TEST_F(ComponentFixture, SortableBaselineCleanAcrossSeeds) {
    for (std::uint64_t seed : {1ULL, 99ULL, 123456789ULL}) {
        driver::GeneratorOptions options;
        options.seed = seed;
        const auto report = derived_.self_test(options);
        EXPECT_TRUE(report.all_passed()) << "seed " << seed;
    }
}

TEST_F(ComponentFixture, IncrementalPlanSeparatesInheritedPaths) {
    const auto full = derived_.generate_tests();
    const auto plan = derived_.incremental_plan(full);
    EXPECT_GT(plan.reused_cases(), 0u);
    EXPECT_GT(plan.new_cases(), 0u);
    EXPECT_EQ(plan.new_cases() + plan.reused_cases(), full.size());
    // Reused cases never touch the sort/find methods.
    for (const auto& tc : plan.reused) {
        for (const auto& call : tc.calls) {
            EXPECT_NE(call.method_name, "Sort1");
            EXPECT_NE(call.method_name, "FindMax");
        }
    }
}

TEST_F(ComponentFixture, SuiteReportsObserveListState) {
    const auto suite = base_.generate_tests();
    const auto report = base_.self_test(suite);
    bool saw_state = false;
    for (const auto& r : report.result.results) {
        saw_state = saw_state || r.report.find("CObList count=") != std::string::npos;
    }
    EXPECT_TRUE(saw_state);
}

// ---------------------------------------------------------------- mutation

TEST_F(ComponentFixture, DescriptorsCoverThePaperMethods) {
    const auto& registry = descriptors();
    EXPECT_NE(registry.find("CObList", "AddHead"), nullptr);
    EXPECT_NE(registry.find("CObList", "RemoveHead"), nullptr);
    EXPECT_NE(registry.find("CObList", "RemoveAt"), nullptr);
    EXPECT_NE(registry.find("CSortableObList", "Sort1"), nullptr);
    EXPECT_NE(registry.find("CSortableObList", "Sort2"), nullptr);
    EXPECT_NE(registry.find("CSortableObList", "ShellSort"), nullptr);
    EXPECT_NE(registry.find("CSortableObList", "FindMax"), nullptr);
    EXPECT_NE(registry.find("CSortableObList", "FindMin"), nullptr);
    EXPECT_EQ(registry.for_class("CObList").size(), 3u);
    EXPECT_EQ(registry.for_class("CSortableObList").size(), 5u);
}

TEST_F(ComponentFixture, MutantPopulationsAreInThePaperBallpark) {
    const auto sortable = mutation::enumerate_mutants(descriptors(), "CSortableObList");
    const auto base = mutation::enumerate_mutants(descriptors(), "CObList");
    // Paper: 700 and 159.  Shape check: same order of magnitude, derived
    // class much richer.
    EXPECT_GT(sortable.size(), 400u);
    EXPECT_LT(sortable.size(), 1200u);
    EXPECT_GT(base.size(), 60u);
    EXPECT_LT(base.size(), 300u);
    EXPECT_GT(sortable.size(), 3 * base.size());
}

TEST_F(ComponentFixture, SampledMutantsAreKilledByTheFullSuite) {
    // Running all 700+ mutants belongs to the bench; here sample a few
    // for a fast regression signal.
    reflect::Registry registry;
    register_mfc(registry);
    const auto suite = derived_.generate_tests();
    auto mutants = mutation::enumerate_mutants(descriptors(), "CSortableObList");
    std::vector<mutation::Mutant> sample;
    for (std::size_t i = 0; i < mutants.size(); i += 97) sample.push_back(mutants[i]);

    const mutation::MutationEngine engine(registry);
    const auto run = engine.run(suite, sample, nullptr);
    EXPECT_TRUE(run.baseline_clean);
    std::size_t killed = 0;
    for (const auto& o : run.outcomes) killed += o.fate == mutation::MutantFate::Killed;
    EXPECT_GT(killed, sample.size() / 2);
}

TEST_F(ComponentFixture, AdoptedParentSuiteRunsGreenOnTheSubclass) {
    // §3.4.2 reuse direction: the base class's full suite, adopted to the
    // subclass, runs unchanged against CSortableObList instances.
    const auto parent_suite = base_.generate_tests();
    const auto adopted =
        history::adopt_parent_suite(parent_suite, mfc::sortable_spec());
    ASSERT_EQ(adopted.size(), parent_suite.size());
    EXPECT_EQ(adopted.class_name, "CSortableObList");

    const auto report = derived_.self_test(adopted);
    EXPECT_TRUE(report.all_passed()) << report.summary();
}

TEST_F(ComponentFixture, MutatedSortIsCaughtByPostcondition) {
    // Directly activate one specific, well-understood mutant: Sort1's
    // scan-advance replaced by NULL makes the insertion scan misbehave.
    const auto* sort1 = descriptors().find("CSortableObList", "Sort1");
    ASSERT_NE(sort1, nullptr);
    const mutation::Mutant m{
        sort1, 13, mutation::Operator::IndVarRepReq, "",
        mutation::required_constants(mutation::pointer_type("CNode")).front()};

    bit::TestModeGuard test_mode;
    ElementPool pool;
    CSortableObList list;
    // Ascending input forces the insertion scan to advance (site 13).
    list.AddTail(pool.make(1));
    list.AddTail(pool.make(2));
    list.AddTail(pool.make(3));

    const mutation::MutantActivation activation(m);
    EXPECT_THROW(list.Sort1(), Error);  // fault or assertion, never silence
}

}  // namespace
}  // namespace stc::mfc
