// Tests for the set/reset capability (§3.3): predefined internal states
// declared in the t-spec (State records), applied after construction by
// the runner via the binding's state setter ("mid-life entry" testing).
#include <gtest/gtest.h>

#include <sstream>

#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/tspec/parser.h"
#include "test_component.h"

namespace stc::driver {
namespace {

/// Counter spec with two predefined states.  Both keep every TFM path
/// baseline-safe (max two Inc calls of step <= 10 from value 5 stays
/// well under the bound).
tspec::ComponentSpec stateful_counter_spec() {
    tspec::ComponentSpec spec = stc::testing::counter_spec();
    spec.states = {"zero", "low"};
    return spec;
}

reflect::ClassBinding stateful_counter_binding() {
    reflect::Binder<stc::testing::Counter> b("Counter");
    b.ctor<>();
    b.ctor<int>();
    b.method("Inc", &stc::testing::Counter::Inc);
    b.method("Dec", &stc::testing::Counter::Dec);
    b.method("Reset", &stc::testing::Counter::Reset);
    b.method("Get", &stc::testing::Counter::Get);
    b.state_setter([](stc::testing::Counter& counter, const std::string& state) {
        if (state == "zero") {
            counter.Reset();
        } else if (state == "low") {
            counter.Reset();
            for (int i = 0; i < 5; ++i) counter.Inc();
        } else {
            throw ReflectError("Counter has no predefined state '" + state + "'");
        }
    });
    return b.take();
}

// ------------------------------------------------------------------- spec

TEST(States, ParserAcceptsStateRecords) {
    const auto spec = tspec::parse_tspec(
        "Class ('X', No, <empty>, <empty>)\n"
        "State ('empty')\n"
        "State ('loaded')\n");
    EXPECT_EQ(spec.states, (std::vector<std::string>{"empty", "loaded"}));
}

TEST(States, PrinterRoundTripsStates) {
    auto spec = tspec::parse_tspec(
        "Class ('X', No, <empty>, <empty>)\n"
        "State ('loaded')\n");
    const auto reparsed = tspec::parse_tspec(tspec::print_tspec(spec));
    EXPECT_EQ(reparsed.states, spec.states);
}

TEST(States, BuilderAddsStates) {
    tspec::SpecBuilder b("X");
    b.state("empty").state("loaded");
    b.method("m1", "X", tspec::MethodCategory::Constructor);
    b.node("n1", true, {"m1"});
    EXPECT_EQ(b.build().states.size(), 2u);
}

// -------------------------------------------------------------- generator

TEST(States, GeneratorEmitsEntryVariantsOnDemand) {
    const auto spec = stateful_counter_spec();
    const auto plain = DriverGenerator(spec).generate();

    GeneratorOptions options;
    options.include_entry_states = true;
    const auto with_states = DriverGenerator(spec, options).generate();
    // One plain case + one per state, per transaction.
    EXPECT_EQ(with_states.size(), plain.size() * 3);

    std::size_t zero_variants = 0;
    std::size_t low_variants = 0;
    for (const auto& tc : with_states.cases) {
        zero_variants += tc.entry_state == "zero" ? 1 : 0;
        low_variants += tc.entry_state == "low" ? 1 : 0;
    }
    EXPECT_EQ(zero_variants, plain.size());
    EXPECT_EQ(low_variants, plain.size());
}

TEST(States, NoVariantsWithoutDeclaredStates) {
    GeneratorOptions options;
    options.include_entry_states = true;
    const auto suite =
        DriverGenerator(stc::testing::counter_spec(), options).generate();
    for (const auto& tc : suite.cases) EXPECT_TRUE(tc.entry_state.empty());
}

// ------------------------------------------------------------------ runner

TEST(States, RunnerAppliesEntryState) {
    const auto spec = stateful_counter_spec();
    GeneratorOptions options;
    options.include_entry_states = true;
    const auto suite = DriverGenerator(spec, options).generate();

    reflect::Registry registry;
    registry.add(stateful_counter_binding());
    const auto result = TestRunner(registry).run(suite);
    EXPECT_EQ(result.failed(), 0u);

    // A "low"-entry case observably starts from 5: its Get() return is 5
    // higher than the plain variant of the same transaction.
    const auto* plain = &result.results[0];
    const TestResult* low = nullptr;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (suite.cases[i].entry_state == "low" &&
            suite.cases[i].transaction_text == suite.cases[0].transaction_text) {
            low = &result.results[i];
            break;
        }
    }
    ASSERT_NE(low, nullptr);
    EXPECT_NE(low->report, plain->report);
}

TEST(States, MissingSetterIsSetupError) {
    const auto spec = stateful_counter_spec();
    GeneratorOptions options;
    options.include_entry_states = true;
    const auto suite = DriverGenerator(spec, options).generate();

    reflect::Registry registry;
    registry.add(stc::testing::counter_binding());  // no state setter
    const auto result = TestRunner(registry).run(suite);
    EXPECT_GT(result.count(Verdict::SetupError), 0u);
    // Plain cases still pass.
    EXPECT_GT(result.passed(), 0u);
}

TEST(States, UnknownStateNameIsSetupError) {
    auto spec = stateful_counter_spec();
    const auto suite = [&] {
        auto s = DriverGenerator(spec).generate();
        for (auto& tc : s.cases) tc.entry_state = "bogus";
        return s;
    }();

    reflect::Registry registry;
    registry.add(stateful_counter_binding());
    const auto result = TestRunner(registry).run(suite);
    EXPECT_EQ(result.count(Verdict::SetupError), suite.size());
    for (const auto& r : result.results) {
        EXPECT_NE(r.failed_method.find("<set-state:bogus>"), std::string::npos);
    }
}

// ---------------------------------------------------------------- suite io

TEST(States, EntryStateSurvivesSaveLoad) {
    const auto spec = stateful_counter_spec();
    GeneratorOptions options;
    options.include_entry_states = true;
    const auto suite = DriverGenerator(spec, options).generate();

    std::stringstream buffer;
    save_suite(buffer, suite);
    const auto loaded = load_suite(buffer);
    ASSERT_EQ(loaded.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(loaded.cases[i].entry_state, suite.cases[i].entry_state);
    }
}

// ----------------------------------------------------------------- binding

TEST(States, ApplyStateWithoutCapabilityThrows) {
    const auto binding = stc::testing::counter_binding();
    EXPECT_FALSE(binding.has_state_setter());
    void* counter = binding.construct({});
    EXPECT_THROW(binding.apply_state(counter, "zero"), ReflectError);
    binding.destroy(counter);
}

TEST(States, ApplyStateRunsTheSetter) {
    const auto binding = stateful_counter_binding();
    EXPECT_TRUE(binding.has_state_setter());
    void* counter = binding.construct({});
    binding.apply_state(counter, "low");
    EXPECT_EQ(binding.invoke(counter, "Get", {}).as_int(), 5);
    binding.apply_state(counter, "zero");
    EXPECT_EQ(binding.invoke(counter, "Get", {}).as_int(), 0);
    binding.destroy(counter);
}

}  // namespace
}  // namespace stc::driver
