// stc::kill tests: bounded product-state search for killers of campaign
// survivors.  The load-bearing contracts: a reachable divergent site is
// found within budget; an unreachable site is a fast, classified
// give-up (not a hang); budget exhaustion is deterministic; a verified
// killer really kills its mutant when replayed through the ordinary
// runner; and the whole pass — report, updated records, telemetry,
// corpus files — is byte-identical across repeated same-seed runs and
// across --jobs 1/4.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "stc/campaign/result_store.h"
#include "stc/core/self_testable.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/corpus.h"
#include "stc/kill/kill.h"
#include "stc/kill/search.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/descriptor.h"
#include "stc/mutation/engine.h"
#include "stc/obs/jsonl_sink.h"
#include "stc/support/error.h"

namespace stc {
namespace {

// The two CObList campaign survivors that are equivalent within the TFM
// language but killable through the widened spec alphabet (RemoveTail
// after RemoveHead needs three elements first) — the mutants the kill
// pass exists for — plus one that stays unkilled at any budget we can
// afford in a unit test.
constexpr const char* kKillableA =
    "CObList::RemoveHead@s4.IndVarRepGlob.m_pNodeTail";
constexpr const char* kKillableB = "CObList::RemoveHead@s4.IndVarRepLoc.pOldNode";
constexpr const char* kStubborn = "CObList::AddHead@s4.IndVarRepGlob.m_pNodeTail";

class KillSearchTest : public ::testing::Test {
protected:
    KillSearchTest()
        : component_(mfc::coblist_spec(), mfc::coblist_binding()),
          completions_(mfc::make_completions(pool_)) {
        component_.set_completions(completions_);
        mutants_ = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
        model_ = model::binding_for("CObList");
    }

    [[nodiscard]] const mutation::Mutant& mutant(const std::string& id) const {
        for (const mutation::Mutant& m : mutants_) {
            if (m.id() == id) return m;
        }
        throw Error("test names unknown mutant: " + id);
    }

    [[nodiscard]] kill::SearchOptions search_options() const {
        kill::SearchOptions options;
        options.runner.model = model_;
        return options;
    }

    [[nodiscard]] kill::ProductSearch make_search(
        const kill::SearchOptions& options) const {
        return {component_.spec(), component_.registry(), &completions_,
                options};
    }

    mfc::ElementPool pool_;
    core::SelfTestableComponent component_;
    driver::CompletionRegistry completions_;
    std::vector<mutation::Mutant> mutants_;
    const driver::ModelBinding* model_ = nullptr;
};

TEST_F(KillSearchTest, FindsKillerForReachableDivergentSite) {
    const kill::ProductSearch search = make_search(search_options());
    const kill::SearchOutcome outcome = search.find_killer(mutant(kKillableB));
    ASSERT_EQ(outcome.status, kill::SearchStatus::Verified);
    EXPECT_FALSE(outcome.killer.calls.empty());
    EXPECT_NE(outcome.reason, oracle::KillReason::None);
    // This survivor is equivalent within the TFM language; the killer
    // must come from the widened spec alphabet.
    EXPECT_TRUE(outcome.widened);
    EXPECT_LE(outcome.stats.states_expanded, search_options().budget_states);
    EXPECT_GT(outcome.stats.armed_states, 0u);
}

TEST_F(KillSearchTest, VerifiedKillerReplaysToARealKill) {
    const kill::ProductSearch search = make_search(search_options());
    const kill::SearchOutcome outcome = search.find_killer(mutant(kKillableB));
    ASSERT_EQ(outcome.status, kill::SearchStatus::Verified);

    driver::RunnerOptions ro;
    ro.model = model_;
    const driver::TestRunner runner(component_.registry(), ro);
    const reflect::ClassBinding& binding = component_.registry().at("CObList");

    // Clean leg: the killer is a passing test of the unmutated CUT.
    const driver::TestResult clean = runner.run_case(binding, outcome.killer);
    EXPECT_EQ(clean.verdict, driver::Verdict::Pass) << clean.message;

    // Mutated leg: with the target mutant active it must fail outright
    // (the search verified an assertion-class kill, not a silent diff).
    driver::TestResult mutated;
    {
        const mutation::MutantActivation activation(mutant(kKillableB));
        mutated = runner.run_case(binding, outcome.killer);
    }
    EXPECT_NE(mutated.verdict, driver::Verdict::Pass);
}

TEST_F(KillSearchTest, UnreachableSiteIsAFastClassifiedGiveUp) {
    // A mutant in a method the t-spec does not know: no transaction of
    // either phase can ever traverse its site, so the search must
    // return site-unreachable without consuming the budget (a hang or a
    // full-budget crawl here would make every equivalent mutant cost
    // the worst case).
    static const mutation::MethodDescriptor phantom = [] {
        mutation::MethodDescriptor::Builder b("CObList", "Phantom");
        b.local("x", mutation::int_type());
        b.site("x");
        return b.build();
    }();
    const std::vector<mutation::Mutant> ghosts =
        mutation::enumerate_mutants(phantom);
    ASSERT_FALSE(ghosts.empty());

    const kill::ProductSearch search = make_search(search_options());
    const kill::SearchOutcome outcome = search.find_killer(ghosts.front());
    EXPECT_EQ(outcome.status, kill::SearchStatus::SiteUnreachable);
    EXPECT_EQ(outcome.stats.states_expanded, 0u);
}

TEST_F(KillSearchTest, BudgetExhaustionIsDeterministic) {
    kill::SearchOptions options = search_options();
    options.budget_states = 64;  // far too small to decide anything
    const kill::ProductSearch search = make_search(options);

    const kill::SearchOutcome first = search.find_killer(mutant(kStubborn));
    const kill::SearchOutcome second = search.find_killer(mutant(kStubborn));
    EXPECT_EQ(first.status, kill::SearchStatus::BudgetExhausted);
    EXPECT_EQ(second.status, first.status);
    EXPECT_EQ(second.stats.states_expanded, first.stats.states_expanded);
    EXPECT_EQ(second.stats.candidates_executed, first.stats.candidates_executed);
    EXPECT_EQ(second.stats.armed_states, first.stats.armed_states);
    EXPECT_EQ(first.stats.states_expanded, options.budget_states);
}

TEST_F(KillSearchTest, SpecificationGraphCoversTheWholeAlphabet) {
    const tfm::Graph graph =
        kill::ProductSearch::specification_graph(component_.spec());
    EXPECT_TRUE(graph.diagnose().empty());
    // Every spec method appears in exactly one node, so the fuzz
    // shrinker's call/node alignment works on widened killers.
    std::size_t methods = 0;
    for (tfm::NodeIndex n = 0; n < graph.node_count(); ++n) {
        methods += graph.node(n).method_ids.size();
        EXPECT_EQ(graph.node(n).method_ids.size(), 1u);
    }
    EXPECT_EQ(methods, component_.spec().methods.size());
}

// ------------------------------------------------------------ kill pass

class KillRunTest : public KillSearchTest {
protected:
    /// A miniature result store: the two killable survivors, one
    /// stubborn survivor, one killed record and one equivalent record
    /// for the score bookkeeping.
    [[nodiscard]] static std::vector<campaign::ItemRecord> make_records() {
        auto record = [](const std::string& id, const std::string& fate) {
            campaign::ItemRecord r;
            r.key = "k-" + id;
            r.mutant_id = id;
            r.fate = fate;
            if (fate == "killed") r.reason = "crash";
            return r;
        };
        return {
            record("CObList::AddHead@s0.IndVarRepReq.NULL", "killed"),
            record(kKillableA, "alive"),
            record(kKillableB, "alive"),
            record(kStubborn, "alive"),
            record("CObList::RemoveAt@s2.IndVarRepGlob.m_pNodeHead",
                   "equivalent"),
        };
    }

    [[nodiscard]] kill::KillOptions kill_options(std::size_t jobs,
                                                 std::ostream& telemetry) const {
        kill::KillOptions options;
        options.jobs = jobs;
        options.search = search_options();
        options.search.budget_states = 1024;  // killers need < 300 states
        options.telemetry = obs::JsonlSink::to_stream(telemetry);
        return options;
    }

    [[nodiscard]] kill::KillContext context() const {
        kill::KillContext ctx;
        ctx.spec = &component_.spec();
        ctx.registry = &component_.registry();
        ctx.completions = &completions_;
        ctx.mutants = &mutants_;
        return ctx;
    }

    /// One full pass; returns (report, serialized records, telemetry).
    struct PassOutput {
        std::string report;
        std::string records;
        std::string telemetry;
        std::size_t verified = 0;
    };
    [[nodiscard]] PassOutput run_pass(std::size_t jobs) const {
        std::vector<campaign::ItemRecord> records = make_records();
        std::ostringstream telemetry;
        const kill::KillOptions options = kill_options(jobs, telemetry);
        const kill::KillRun run = kill::kill_survivors(context(), records, options);

        PassOutput out;
        std::ostringstream report;
        kill::render_kill_report(report, run, "CObList", options);
        out.report = report.str();
        std::ostringstream serialized;
        for (const campaign::ItemRecord& r : records) {
            serialized << r.to_json().to_line() << "\n";
        }
        out.records = serialized.str();
        out.telemetry = telemetry.str();
        out.verified = run.verified;
        return out;
    }
};

TEST_F(KillRunTest, RaisesTheScoreAndUpdatesRecordsInPlace) {
    std::vector<campaign::ItemRecord> records = make_records();
    std::ostringstream telemetry;
    const kill::KillOptions options = kill_options(1, telemetry);
    const kill::KillRun run = kill::kill_survivors(context(), records, options);

    EXPECT_EQ(run.survivors, 3u);
    EXPECT_EQ(run.verified, 2u);
    EXPECT_EQ(run.killed_before, 1u);
    EXPECT_EQ(run.killed_after, 3u);
    EXPECT_GT(run.score_after(), run.score_before());

    // The killable survivors' records were raised in place, flagged as
    // synthesized; the stubborn one and the bookkeeping rows are
    // untouched.
    EXPECT_EQ(records[1].fate, "killed");
    EXPECT_TRUE(records[1].synthesized);
    EXPECT_EQ(records[2].fate, "killed");
    EXPECT_TRUE(records[2].synthesized);
    EXPECT_EQ(records[3].fate, "alive");
    EXPECT_FALSE(records[3].synthesized);
    EXPECT_EQ(records[0].fate, "killed");
    EXPECT_FALSE(records[0].synthesized);
    EXPECT_EQ(records[4].fate, "equivalent");

    // Verified items carry a shrunk killer no longer than the candidate.
    for (const kill::KillItem& item : run.items) {
        if (item.status != kill::SearchStatus::Verified) continue;
        EXPECT_LE(item.killer.calls.size(), item.candidate_calls);
        EXPECT_FALSE(item.killer.calls.empty());
    }
}

TEST_F(KillRunTest, SameSeedPassesAreByteIdenticalAcrossJobs) {
    const PassOutput once = run_pass(1);
    const PassOutput again = run_pass(1);
    const PassOutput parallel = run_pass(4);

    ASSERT_EQ(once.verified, 2u);
    // Two same-seed runs: byte-identical report, records, telemetry.
    EXPECT_EQ(again.report, once.report);
    EXPECT_EQ(again.records, once.records);
    EXPECT_EQ(again.telemetry, once.telemetry);
    // --jobs only distributes survivors across threads.
    EXPECT_EQ(parallel.report, once.report);
    EXPECT_EQ(parallel.records, once.records);
    EXPECT_EQ(parallel.telemetry, once.telemetry);
}

TEST_F(KillRunTest, PersistedKillersReplayFromTheCorpus) {
    const std::string dir =
        "/tmp/stc_kill_corpus_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);

    std::vector<campaign::ItemRecord> records = make_records();
    std::ostringstream telemetry;
    kill::KillOptions options = kill_options(1, telemetry);
    options.corpus_dir = dir;
    const kill::KillRun run = kill::kill_survivors(context(), records, options);
    ASSERT_EQ(run.verified, 2u);

    std::size_t persisted = 0;
    for (const kill::KillItem& item : run.items) {
        if (item.status != kill::SearchStatus::Verified) continue;
        ASSERT_FALSE(item.corpus_file.empty()) << item.mutant_id;
        ++persisted;

        // The entry replays: load, recomplete, run with the mutant
        // active — the recorded verdict must reproduce.
        fuzz::CorpusEntry entry =
            fuzz::load_entry_file(dir + "/" + item.corpus_file);
        EXPECT_EQ(entry.mutant_id, item.mutant_id);
        (void)driver::recomplete_suite(entry.suite, completions_,
                                       entry.suite.seed);
        driver::RunnerOptions ro;
        ro.model = model_;
        ro.promote_divergence = true;
        const driver::TestRunner runner(component_.registry(), ro);
        const reflect::ClassBinding& binding =
            component_.registry().at("CObList");
        driver::TestResult replayed;
        {
            const mutation::MutantActivation activation(
                mutant(item.mutant_id));
            replayed = runner.run_case(binding, entry.reproducer());
        }
        EXPECT_EQ(replayed.verdict, entry.verdict) << item.mutant_id;
    }
    EXPECT_EQ(persisted, 2u);
    std::filesystem::remove_all(dir);
}

TEST_F(KillRunTest, UnknownSurvivorMutantIsAHardError) {
    std::vector<campaign::ItemRecord> records = make_records();
    records[1].mutant_id = "CObList::NoSuchMethod@s0.IndVarRepReq.NULL";
    std::ostringstream telemetry;
    const kill::KillOptions options = kill_options(1, telemetry);
    EXPECT_THROW(
        { (void)kill::kill_survivors(context(), records, options); }, Error);
}

}  // namespace
}  // namespace stc
