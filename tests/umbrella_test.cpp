// The umbrella header must pull in the complete public API and stay
// self-sufficient (every header compiles with only its own includes).
#include "stc/concat.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicApiIsReachableThroughOneInclude) {
    // One symbol per module proves the include set is complete.
    EXPECT_EQ(stc::support::trim("  x "), "x");
    EXPECT_EQ(stc::domain::int_range(0, 1)->kind(), stc::domain::ValueKind::Int);
    EXPECT_EQ(std::string(stc::tspec::to_string(stc::tspec::TypeTag::Range)),
              "range");
    EXPECT_EQ(std::string(stc::tfm::to_string(stc::tfm::Criterion::AllTransactions)),
              "all-transactions");
    EXPECT_FALSE(stc::bit::TestMode::enabled());
    EXPECT_EQ(std::string(stc::driver::to_string(stc::driver::Verdict::Pass)),
              "pass");
    EXPECT_EQ(std::string(stc::oracle::to_string(stc::oracle::KillReason::Crash)),
              "crash");
    EXPECT_EQ(std::string(stc::history::to_string(
                  stc::history::ReuseDecision::Retest)),
              "retest");
    EXPECT_EQ(std::string(stc::mutation::to_string(
                  stc::mutation::Operator::IndVarBitNeg)),
              "IndVarBitNeg");
    stc::reflect::Registry registry;
    EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
