#include <gtest/gtest.h>

#include <set>

#include "stc/support/error.h"
#include "stc/tfm/coverage.h"
#include "stc/tfm/graph.h"

namespace stc::tfm {
namespace {

/// Birth n0 -> {n1 | n2} -> death n3, plus a n1->n1 self loop.
Graph diamond_with_loop() {
    Graph g;
    g.add_node(Node{"n0", true, {"ctor"}});
    g.add_node(Node{"n1", false, {"a"}});
    g.add_node(Node{"n2", false, {"b"}});
    g.add_node(Node{"n3", false, {"dtor"}});
    g.add_edge("n0", "n1");
    g.add_edge("n0", "n2");
    g.add_edge("n1", "n1");
    g.add_edge("n1", "n3");
    g.add_edge("n2", "n3");
    return g;
}

// ------------------------------------------------------------------- graph

TEST(Graph, BasicAccessors) {
    const Graph g = diamond_with_loop();
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 5u);
    EXPECT_EQ(g.birth_nodes(), (std::vector<NodeIndex>{0}));
    EXPECT_EQ(g.death_nodes(), (std::vector<NodeIndex>{3}));
    EXPECT_EQ(g.out_degree(0), 2u);
    EXPECT_EQ(g.in_degree(3), 2u);
    EXPECT_EQ(g.find_node("n2"), std::optional<NodeIndex>{2});
    EXPECT_EQ(g.find_node("nope"), std::nullopt);
}

TEST(Graph, RejectsDuplicateAndDanglingIds) {
    Graph g;
    g.add_node(Node{"n0", true, {}});
    EXPECT_THROW(g.add_node(Node{"n0", false, {}}), SpecError);
    EXPECT_THROW(g.add_node(Node{"", false, {}}), SpecError);
    EXPECT_THROW(g.add_edge("n0", "missing"), SpecError);
    EXPECT_THROW(g.add_edge("missing", "n0"), SpecError);
}

TEST(Graph, ReachabilityClosures) {
    Graph g = diamond_with_loop();
    g.add_node(Node{"orphan", false, {"x"}});  // unreachable
    const auto forward = g.reachable_from_birth();
    EXPECT_TRUE(forward[0] && forward[1] && forward[2] && forward[3]);
    EXPECT_FALSE(forward[4]);
    const auto backward = g.can_reach_death();
    EXPECT_TRUE(backward[0] && backward[1] && backward[2]);
    // orphan has no outgoing edges: it IS a death node, trivially reaches one.
    EXPECT_TRUE(backward[4]);
}

// -------------------------------------------------------------- diagnostics

TEST(Diagnostics, CleanGraphHasNone) {
    EXPECT_TRUE(diamond_with_loop().diagnose().empty());
}

TEST(Diagnostics, DetectsNoBirth) {
    Graph g;
    g.add_node(Node{"n0", false, {}});
    const auto d = g.diagnose();
    bool found = false;
    for (const auto& x : d) found = found || x.kind == DiagnosticKind::NoBirthNode;
    EXPECT_TRUE(found);
}

TEST(Diagnostics, DetectsNoDeath) {
    Graph g;
    g.add_node(Node{"n0", true, {}});
    g.add_node(Node{"n1", false, {}});
    g.add_edge("n0", "n1");
    g.add_edge("n1", "n0");  // everything loops, nothing dies
    const auto d = g.diagnose();
    bool found = false;
    for (const auto& x : d) found = found || x.kind == DiagnosticKind::NoDeathNode;
    EXPECT_TRUE(found);
}

TEST(Diagnostics, DetectsUnreachableAndTrapNodes) {
    Graph g = diamond_with_loop();
    g.add_node(Node{"island", false, {"x"}});
    g.add_node(Node{"trap", false, {"y"}});
    g.add_edge("n0", "trap");
    g.add_edge("trap", "trap");  // can never reach death
    const auto d = g.diagnose();
    std::set<DiagnosticKind> kinds;
    for (const auto& x : d) kinds.insert(x.kind);
    EXPECT_TRUE(kinds.count(DiagnosticKind::UnreachableNode));
    EXPECT_TRUE(kinds.count(DiagnosticKind::DeadEndMismatch));
}

TEST(Diagnostics, DetectsDuplicateEdgeAndBirthSelfLoop) {
    Graph g;
    g.add_node(Node{"n0", true, {}});
    g.add_node(Node{"n1", false, {}});
    g.add_edge("n0", "n1");
    g.add_edge("n0", "n1");
    g.add_edge("n0", "n0");
    const auto d = g.diagnose();
    std::set<DiagnosticKind> kinds;
    for (const auto& x : d) kinds.insert(x.kind);
    EXPECT_TRUE(kinds.count(DiagnosticKind::DuplicateEdge));
    EXPECT_TRUE(kinds.count(DiagnosticKind::SelfLoopOnBirth));
}

// -------------------------------------------------------------- enumeration

TEST(Enumeration, SimplePathsWhenVisitsIsOne) {
    const Graph g = diamond_with_loop();
    EnumerationOptions options;
    options.max_node_visits = 1;
    const auto ts = g.enumerate_transactions(options);
    // n0->n1->n3 and n0->n2->n3 only (self-loop needs a second visit).
    ASSERT_EQ(ts.size(), 2u);
    EXPECT_EQ(g.describe(ts[0]), "n0 -> n1 -> n3");
    EXPECT_EQ(g.describe(ts[1]), "n0 -> n2 -> n3");
}

TEST(Enumeration, LoopUnrolledOncePerExtraVisit) {
    const Graph g = diamond_with_loop();
    EnumerationOptions options;
    options.max_node_visits = 2;
    const auto ts = g.enumerate_transactions(options);
    std::set<std::string> paths;
    for (const auto& t : ts) paths.insert(g.describe(t));
    EXPECT_TRUE(paths.count("n0 -> n1 -> n1 -> n3"));
    EXPECT_EQ(ts.size(), 3u);
}

TEST(Enumeration, EveryTransactionIsBirthToDeath) {
    const Graph g = diamond_with_loop();
    for (const auto& t : g.enumerate_transactions()) {
        ASSERT_FALSE(t.path.empty());
        EXPECT_TRUE(g.node(t.path.front()).is_birth);
        EXPECT_TRUE(g.is_death(t.path.back()));
        // consecutive nodes are connected
        for (std::size_t i = 0; i + 1 < t.path.size(); ++i) {
            const auto& succ = g.successors(t.path[i]);
            EXPECT_NE(std::find(succ.begin(), succ.end(), t.path[i + 1]), succ.end());
        }
    }
}

TEST(Enumeration, MaxTransactionsBoundsTheWalk) {
    const Graph g = diamond_with_loop();
    EnumerationOptions options;
    options.max_transactions = 1;
    EXPECT_EQ(g.enumerate_transactions(options).size(), 1u);
}

TEST(Enumeration, BirthEqualsDeathIsOneNodeTransaction) {
    Graph g;
    g.add_node(Node{"solo", true, {"ctor_dtor"}});
    const auto ts = g.enumerate_transactions();
    ASSERT_EQ(ts.size(), 1u);
    EXPECT_EQ(ts[0].path.size(), 1u);
}

TEST(Enumeration, DeterministicAcrossCalls) {
    const Graph g = diamond_with_loop();
    const auto a = g.enumerate_transactions();
    const auto b = g.enumerate_transactions();
    EXPECT_EQ(a, b);
}

TEST(Enumeration, MethodSequenceFlattensNodes) {
    const Graph g = diamond_with_loop();
    EnumerationOptions options;
    options.max_node_visits = 1;
    const auto ts = g.enumerate_transactions(options);
    EXPECT_EQ(g.method_sequence(ts[0]),
              (std::vector<std::string>{"ctor", "a", "dtor"}));
}

// --------------------------------------------------------------------- dot

TEST(Dot, MarksBirthDeathAndHighlight) {
    const Graph g = diamond_with_loop();
    const auto ts = g.enumerate_transactions();
    const std::string dot = g.to_dot(&ts.front());
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);   // birth
    EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // death
    EXPECT_NE(dot.find("color=red"), std::string::npos);      // highlight
}

// ---------------------------------------------------------------- coverage

TEST(Coverage, AllTransactionsCoverEverything) {
    const Graph g = diamond_with_loop();
    const auto ts = g.enumerate_transactions();
    const auto report = measure_coverage(g, ts);
    EXPECT_EQ(report.nodes_covered, g.node_count());
    EXPECT_DOUBLE_EQ(report.node_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(report.edge_ratio(), 1.0);
}

TEST(Coverage, PartialSetMeasuredCorrectly) {
    const Graph g = diamond_with_loop();
    EnumerationOptions options;
    options.max_node_visits = 1;
    auto ts = g.enumerate_transactions(options);
    ts.resize(1);  // only n0->n1->n3
    const auto report = measure_coverage(g, ts);
    EXPECT_EQ(report.nodes_covered, 3u);
    EXPECT_EQ(report.edges_covered, 2u);
    EXPECT_LT(report.edge_ratio(), 1.0);
}

TEST(Coverage, GreedyNodeSelectionIsSmallButComplete) {
    const Graph g = diamond_with_loop();
    const auto ts = g.enumerate_transactions();
    const auto selected = select_transactions(g, ts, Criterion::AllNodes);
    EXPECT_LT(selected.size(), ts.size());
    std::vector<Transaction> chosen;
    for (auto i : selected) chosen.push_back(ts[i]);
    EXPECT_DOUBLE_EQ(measure_coverage(g, chosen).node_ratio(), 1.0);
}

TEST(Coverage, GreedyEdgeSelectionCoversTraversedEdges) {
    const Graph g = diamond_with_loop();
    const auto ts = g.enumerate_transactions();  // visits=2 covers the loop
    const auto selected = select_transactions(g, ts, Criterion::AllEdges);
    std::vector<Transaction> chosen;
    for (auto i : selected) chosen.push_back(ts[i]);
    EXPECT_DOUBLE_EQ(measure_coverage(g, chosen).edge_ratio(), 1.0);
}

TEST(Coverage, AllTransactionsCriterionKeepsEverything) {
    const Graph g = diamond_with_loop();
    const auto ts = g.enumerate_transactions();
    const auto selected = select_transactions(g, ts, Criterion::AllTransactions);
    EXPECT_EQ(selected.size(), ts.size());
}

// ------------------------------------------------- property sweep (TEST_P)

struct GraphShape {
    std::size_t layers;
    std::size_t width;
};

class LayeredGraphProperty : public ::testing::TestWithParam<GraphShape> {};

TEST_P(LayeredGraphProperty, EnumerationMatchesClosedForm) {
    // A layered DAG: birth -> width^layers paths -> death.
    const auto [layers, width] = GetParam();
    Graph g;
    g.add_node(Node{"birth", true, {"ctor"}});
    std::vector<std::string> previous{"birth"};
    for (std::size_t l = 0; l < layers; ++l) {
        std::vector<std::string> current;
        for (std::size_t w = 0; w < width; ++w) {
            const std::string id = "L" + std::to_string(l) + "_" + std::to_string(w);
            g.add_node(Node{id, false, {"m"}});
            current.push_back(id);
        }
        for (const auto& p : previous) {
            for (const auto& c : current) g.add_edge(p, c);
        }
        previous = current;
    }
    g.add_node(Node{"death", false, {"dtor"}});
    for (const auto& p : previous) g.add_edge(p, "death");

    const auto ts = g.enumerate_transactions();
    std::size_t expected = 1;
    for (std::size_t l = 0; l < layers; ++l) expected *= width;
    EXPECT_EQ(ts.size(), expected);
    // Transaction coverage subsumes node and edge coverage on this DAG.
    const auto cov = measure_coverage(g, ts);
    EXPECT_DOUBLE_EQ(cov.node_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(cov.edge_ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayeredGraphProperty,
                         ::testing::Values(GraphShape{1, 1}, GraphShape{1, 5},
                                           GraphShape{2, 3}, GraphShape{3, 2},
                                           GraphShape{4, 2}, GraphShape{2, 7}));

}  // namespace
}  // namespace stc::tfm
