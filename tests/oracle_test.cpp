#include <gtest/gtest.h>

#include "stc/oracle/oracle.h"

namespace stc::oracle {
namespace {

using driver::TestResult;
using driver::Verdict;

driver::SuiteResult make_suite(std::vector<TestResult> results) {
    driver::SuiteResult out;
    out.results = std::move(results);
    return out;
}

TestResult passing(const std::string& id, const std::string& report) {
    TestResult r;
    r.case_id = id;
    r.verdict = Verdict::Pass;
    r.report = report;
    return r;
}

TestResult failing(const std::string& id, Verdict verdict) {
    TestResult r;
    r.case_id = id;
    r.verdict = verdict;
    r.message = "boom";
    return r;
}

// ------------------------------------------------------------ GoldenRecord

TEST(GoldenRecord, CapturesBaselineBehaviour) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "state-a"), passing("TC1", "state-b")}));
    EXPECT_EQ(golden.size(), 2u);
    EXPECT_TRUE(golden.all_passed());
    ASSERT_NE(golden.find("TC1"), nullptr);
    EXPECT_EQ(golden.find("TC1")->report, "state-b");
    EXPECT_EQ(golden.find("TC9"), nullptr);
}

TEST(GoldenRecord, AllPassedFalseWhenBaselineDirty) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "x"), failing("TC1", Verdict::Crash)}));
    EXPECT_FALSE(golden.all_passed());
}

// ---------------------------------------------------------------- classify

TEST(Classify, IdenticalBehaviourIsAlive) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", ""};
    EXPECT_EQ(classify(golden, passing("TC0", "same")), KillReason::None);
}

TEST(Classify, CrashKillsWithHighestPriority) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", ""};
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::Crash)), KillReason::Crash);
}

TEST(Classify, AssertionKillRequiresCleanBaseline) {
    const GoldenEntry clean{"TC0", Verdict::Pass, "same", ""};
    EXPECT_EQ(classify(clean, failing("TC0", Verdict::AssertionViolation)),
              KillReason::Assertion);
    // Paper §4 condition (ii): "given that this was not the case with the
    // original program".
    const GoldenEntry dirty{"TC0", Verdict::AssertionViolation, "", "boom"};
    OracleConfig no_output;
    no_output.use_output_diff = false;
    EXPECT_EQ(classify(dirty, failing("TC0", Verdict::AssertionViolation), no_output),
              KillReason::None);
}

TEST(Classify, OutputDifferenceKills) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "expected", ""};
    EXPECT_EQ(classify(golden, passing("TC0", "different")), KillReason::OutputDiff);
    // Verdict change also counts as an output difference.
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::UncaughtException)),
              KillReason::OutputDiff);
}

TEST(Classify, ChannelsCanBeDisabled) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "expected", ""};
    OracleConfig assertions_only;
    assertions_only.use_output_diff = false;
    EXPECT_EQ(classify(golden, passing("TC0", "different"), assertions_only),
              KillReason::None);

    OracleConfig output_only;
    output_only.use_assertions = false;
    // An assertion failure still differs in verdict -> output diff channel.
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::AssertionViolation),
                       output_only),
              KillReason::OutputDiff);

    OracleConfig nothing;
    nothing.use_crashes = false;
    nothing.use_assertions = false;
    nothing.use_output_diff = false;
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::Crash), nothing),
              KillReason::None);
}

TEST(Classify, ManualOracleComplementsAssertions) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "sorted: 1 2 3", ""};
    // The observed run passes and matches the golden output; only a
    // manually derived oracle can reject it (paper §3.3).
    const ManualPredicate reject_all = [](const std::string&, const std::string&) {
        return false;
    };
    OracleConfig config;
    config.use_output_diff = false;
    EXPECT_EQ(classify(golden, passing("TC0", "sorted: 1 2 3"), config, reject_all),
              KillReason::ManualOracle);
    const ManualPredicate accept_all = [](const std::string&, const std::string&) {
        return true;
    };
    EXPECT_EQ(classify(golden, passing("TC0", "sorted: 1 2 3"), config, accept_all),
              KillReason::None);
}

// ------------------------------------------------------------ whole suites

TEST(ClassifySuite, StrongestReasonWins) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "a"), passing("TC1", "b"), passing("TC2", "c")}));
    const auto observed = make_suite({
        passing("TC0", "a"),
        passing("TC1", "DIFFERENT"),
        failing("TC2", Verdict::AssertionViolation),
    });
    EXPECT_EQ(classify_suite(golden, observed), KillReason::Assertion);
}

TEST(ClassifySuite, AliveWhenEverythingMatches) {
    const auto golden =
        GoldenRecord::from(make_suite({passing("TC0", "a"), passing("TC1", "b")}));
    const auto observed = make_suite({passing("TC0", "a"), passing("TC1", "b")});
    EXPECT_EQ(classify_suite(golden, observed), KillReason::None);
}

TEST(ClassifySuite, UnknownCasesAreIgnored) {
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "a")}));
    const auto observed =
        make_suite({passing("TC0", "a"), failing("TC99", Verdict::Crash)});
    EXPECT_EQ(classify_suite(golden, observed), KillReason::None);
}

TEST(KillReasonNames, AreStable) {
    EXPECT_STREQ(to_string(KillReason::None), "alive");
    EXPECT_STREQ(to_string(KillReason::Crash), "crash");
    EXPECT_STREQ(to_string(KillReason::Assertion), "assertion");
    EXPECT_STREQ(to_string(KillReason::OutputDiff), "output-diff");
    EXPECT_STREQ(to_string(KillReason::ManualOracle), "manual-oracle");
}

}  // namespace
}  // namespace stc::oracle
