#include <gtest/gtest.h>

#include "stc/oracle/oracle.h"

namespace stc::oracle {
namespace {

using driver::TestResult;
using driver::Verdict;

driver::SuiteResult make_suite(std::vector<TestResult> results) {
    driver::SuiteResult out;
    out.results = std::move(results);
    return out;
}

TestResult passing(const std::string& id, const std::string& report) {
    TestResult r;
    r.case_id = id;
    r.verdict = Verdict::Pass;
    r.report = report;
    return r;
}

TestResult failing(const std::string& id, Verdict verdict) {
    TestResult r;
    r.case_id = id;
    r.verdict = verdict;
    r.message = "boom";
    return r;
}

TestResult diverging(const std::string& id, const std::string& report,
                     const std::string& divergence) {
    TestResult r = passing(id, report);
    r.model_divergence = divergence;
    return r;
}

// ------------------------------------------------------------ GoldenRecord

TEST(GoldenRecord, CapturesBaselineBehaviour) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "state-a"), passing("TC1", "state-b")}));
    EXPECT_EQ(golden.size(), 2u);
    EXPECT_TRUE(golden.all_passed());
    ASSERT_NE(golden.find("TC1"), nullptr);
    EXPECT_EQ(golden.find("TC1")->report, "state-b");
    EXPECT_EQ(golden.find("TC9"), nullptr);
}

TEST(GoldenRecord, AllPassedFalseWhenBaselineDirty) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "x"), failing("TC1", Verdict::Crash)}));
    EXPECT_FALSE(golden.all_passed());
}

// ---------------------------------------------------------------- classify

TEST(Classify, IdenticalBehaviourIsAlive) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", "", ""};
    EXPECT_EQ(classify(golden, passing("TC0", "same")), KillReason::None);
}

TEST(Classify, CrashKillsWithHighestPriority) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", "", ""};
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::Crash)), KillReason::Crash);
}

TEST(Classify, AssertionKillRequiresCleanBaseline) {
    const GoldenEntry clean{"TC0", Verdict::Pass, "same", "", ""};
    EXPECT_EQ(classify(clean, failing("TC0", Verdict::AssertionViolation)),
              KillReason::Assertion);
    // Paper §4 condition (ii): "given that this was not the case with the
    // original program".
    const GoldenEntry dirty{"TC0", Verdict::AssertionViolation, "", "boom", ""};
    OracleConfig no_output;
    no_output.use_output_diff = false;
    EXPECT_EQ(classify(dirty, failing("TC0", Verdict::AssertionViolation), no_output),
              KillReason::None);
}

TEST(Classify, OutputDifferenceKills) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "expected", "", ""};
    EXPECT_EQ(classify(golden, passing("TC0", "different")), KillReason::OutputDiff);
    // Verdict change also counts as an output difference.
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::UncaughtException)),
              KillReason::OutputDiff);
}

TEST(Classify, ChannelsCanBeDisabled) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "expected", "", ""};
    OracleConfig assertions_only;
    assertions_only.use_output_diff = false;
    EXPECT_EQ(classify(golden, passing("TC0", "different"), assertions_only),
              KillReason::None);

    OracleConfig output_only;
    output_only.use_assertions = false;
    // An assertion failure still differs in verdict -> output diff channel.
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::AssertionViolation),
                       output_only),
              KillReason::OutputDiff);

    OracleConfig nothing;
    nothing.use_crashes = false;
    nothing.use_assertions = false;
    nothing.use_output_diff = false;
    EXPECT_EQ(classify(golden, failing("TC0", Verdict::Crash), nothing),
              KillReason::None);
}

TEST(Classify, ManualOracleComplementsAssertions) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "sorted: 1 2 3", "", ""};
    // The observed run passes and matches the golden output; only a
    // manually derived oracle can reject it (paper §3.3).
    const ManualPredicate reject_all = [](const std::string&, const std::string&) {
        return false;
    };
    OracleConfig config;
    config.use_output_diff = false;
    EXPECT_EQ(classify(golden, passing("TC0", "sorted: 1 2 3"), config, reject_all),
              KillReason::ManualOracle);
    const ManualPredicate accept_all = [](const std::string&, const std::string&) {
        return true;
    };
    EXPECT_EQ(classify(golden, passing("TC0", "sorted: 1 2 3"), config, accept_all),
              KillReason::None);
}

// --------------------------------------------------- model channel / interplay

TEST(ClassifyModel, DivergenceKillsWhenGoldenConforms) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", "", ""};
    EXPECT_EQ(classify(golden, diverging("TC0", "same", "call#3 Find: state")),
              KillReason::ModelDivergence);
}

TEST(ClassifyModel, DivergenceRequiresCleanBaseline) {
    // Condition (ii) for the model channel: the baseline run already
    // diverged, so a diverging mutant run proves nothing.
    const GoldenEntry dirty{"TC0", Verdict::Pass, "same", "", "call#1 base"};
    EXPECT_EQ(classify(dirty, diverging("TC0", "same", "call#1 base")),
              KillReason::None);
}

TEST(ClassifyModel, ChannelCanBeDisabled) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", "", ""};
    OracleConfig no_model;
    no_model.use_model = false;
    EXPECT_EQ(classify(golden, diverging("TC0", "same", "call#3 Find: state"),
                       no_model),
              KillReason::None);
}

TEST(ClassifyModel, AssertionOutranksDivergence) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "same", "", ""};
    TestResult observed = failing("TC0", Verdict::AssertionViolation);
    observed.model_divergence = "call#2 GetCount: return";
    EXPECT_EQ(classify(golden, observed), KillReason::Assertion);
}

TEST(ClassifyModel, DivergenceOutranksOutputDiff) {
    const GoldenEntry golden{"TC0", Verdict::Pass, "expected", "", ""};
    EXPECT_EQ(classify(golden, diverging("TC0", "different", "call#1 AddHead")),
              KillReason::ModelDivergence);
}

// Satellite (d): golden/model interplay.  A run that diverges from the
// reference model but still matches the golden output, and vice versa,
// must be reported distinctly by the differential classification.

TEST(Interplay, DivergesFromModelButMatchesGolden) {
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "same")}));
    const auto observed =
        make_suite({diverging("TC0", "same", "call#4 RemoveAt: state")});
    const auto kill = classify_suite_differential(golden, observed);
    EXPECT_EQ(kill.with_model, KillReason::ModelDivergence);
    EXPECT_EQ(kill.without_model, KillReason::None);
    EXPECT_TRUE(kill.model_only());
}

TEST(Interplay, MatchesModelButDiffersFromGolden) {
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "same")}));
    const auto observed = make_suite({passing("TC0", "DIFFERENT")});
    const auto kill = classify_suite_differential(golden, observed);
    EXPECT_EQ(kill.with_model, KillReason::OutputDiff);
    EXPECT_EQ(kill.without_model, KillReason::OutputDiff);
    EXPECT_FALSE(kill.model_only());
}

TEST(Interplay, BothFindingsReportedDistinctly) {
    // Diverges from the model AND from the golden output: the combined
    // oracle reports the stronger model finding while the without-model
    // leg still records the output diff -- both visible, not conflated.
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "same")}));
    const auto observed =
        make_suite({diverging("TC0", "DIFFERENT", "call#1 AddHead: state")});
    const auto kill = classify_suite_differential(golden, observed);
    EXPECT_EQ(kill.with_model, KillReason::ModelDivergence);
    EXPECT_EQ(kill.without_model, KillReason::OutputDiff);
    EXPECT_FALSE(kill.model_only());
}

TEST(Interplay, CleanRunKillsNeitherLeg) {
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "same")}));
    const auto kill =
        classify_suite_differential(golden, make_suite({passing("TC0", "same")}));
    EXPECT_EQ(kill.with_model, KillReason::None);
    EXPECT_EQ(kill.without_model, KillReason::None);
    EXPECT_FALSE(kill.model_only());
}

// ------------------------------------------------------------ whole suites

TEST(ClassifySuite, StrongestReasonWins) {
    const auto golden = GoldenRecord::from(
        make_suite({passing("TC0", "a"), passing("TC1", "b"), passing("TC2", "c")}));
    const auto observed = make_suite({
        passing("TC0", "a"),
        passing("TC1", "DIFFERENT"),
        failing("TC2", Verdict::AssertionViolation),
    });
    EXPECT_EQ(classify_suite(golden, observed), KillReason::Assertion);
}

TEST(ClassifySuite, AliveWhenEverythingMatches) {
    const auto golden =
        GoldenRecord::from(make_suite({passing("TC0", "a"), passing("TC1", "b")}));
    const auto observed = make_suite({passing("TC0", "a"), passing("TC1", "b")});
    EXPECT_EQ(classify_suite(golden, observed), KillReason::None);
}

TEST(ClassifySuite, UnknownCasesAreIgnored) {
    const auto golden = GoldenRecord::from(make_suite({passing("TC0", "a")}));
    const auto observed =
        make_suite({passing("TC0", "a"), failing("TC99", Verdict::Crash)});
    EXPECT_EQ(classify_suite(golden, observed), KillReason::None);
}

TEST(KillReasonNames, AreStable) {
    EXPECT_STREQ(to_string(KillReason::None), "alive");
    EXPECT_STREQ(to_string(KillReason::Crash), "crash");
    EXPECT_STREQ(to_string(KillReason::Assertion), "assertion");
    EXPECT_STREQ(to_string(KillReason::ModelDivergence), "model-divergence");
    EXPECT_STREQ(to_string(KillReason::OutputDiff), "output-diff");
    EXPECT_STREQ(to_string(KillReason::ManualOracle), "manual-oracle");
}

}  // namespace
}  // namespace stc::oracle
