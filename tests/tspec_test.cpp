#include <gtest/gtest.h>

#include "stc/support/error.h"
#include "stc/tspec/builder.h"
#include "stc/tspec/model.h"
#include "stc/tspec/parser.h"

namespace stc::tspec {
namespace {

constexpr const char* kProductSpec = R"(
// Fig. 3 of the paper, lightly normalized
Class ('Product', No, <empty>, <empty>)
Attribute ('qty', range, 1, 99999)
Attribute ('name', string, 0, 30)
Attribute ('price', range, 0.01, 9999.99)
Attribute ('prov', pointer, 'Provider')
Method (m1, 'Product', <empty>, constructor, 0)
Method (m2, '~Product', <empty>, destructor, 0)
Method (m5, 'UpdateName', <empty>, new, 1)
Parameter (m5, 'n', string, ['p1', 'p2', 'p3'])
Method (m6, 'UpdateQty', <empty>, new, 1)
Parameter (m6, 'q', range, 1, 99999)
Node (n1, Yes, 1, [m1])
Node (n4, No, 1, [m5, m6])
Node (n7, No, 0, [m2])
Edge (n1, n4)
Edge (n4, n7)
)";

// ------------------------------------------------------------------ parser

TEST(Parser, ParsesTheFig3Format) {
    const ComponentSpec spec = parse_tspec(kProductSpec);
    EXPECT_EQ(spec.class_name, "Product");
    EXPECT_FALSE(spec.is_abstract);
    EXPECT_EQ(spec.superclass, "");
    ASSERT_EQ(spec.attributes.size(), 4u);
    EXPECT_EQ(spec.attributes[0].name, "qty");
    EXPECT_EQ(spec.attributes[0].type, TypeTag::Range);
    EXPECT_EQ(spec.attributes[3].type, TypeTag::Pointer);
    EXPECT_EQ(spec.attributes[3].class_name, "Provider");
    ASSERT_EQ(spec.methods.size(), 4u);
    EXPECT_EQ(spec.nodes.size(), 3u);
    EXPECT_EQ(spec.edges.size(), 2u);
    EXPECT_TRUE(spec.validate().empty());
}

TEST(Parser, RangeTypePicksIntOrRealDomain) {
    const ComponentSpec spec = parse_tspec(kProductSpec);
    const TypedSlot* qty = spec.find_attribute("qty");
    ASSERT_NE(qty, nullptr);
    EXPECT_NE(dynamic_cast<const domain::IntRangeDomain*>(qty->domain.get()), nullptr);
    const TypedSlot* price = spec.find_attribute("price");
    ASSERT_NE(price, nullptr);
    EXPECT_NE(dynamic_cast<const domain::RealRangeDomain*>(price->domain.get()),
              nullptr);
}

TEST(Parser, StringParameterWithValueSetBecomesSetDomain) {
    const ComponentSpec spec = parse_tspec(kProductSpec);
    const MethodSpec* m5 = spec.find_method("m5");
    ASSERT_NE(m5, nullptr);
    ASSERT_EQ(m5->parameters.size(), 1u);
    const auto* set =
        dynamic_cast<const domain::SetDomain*>(m5->parameters[0].domain.get());
    ASSERT_NE(set, nullptr);
    EXPECT_EQ(set->values().size(), 3u);
}

TEST(Parser, CommentsAndBothQuoteStylesAccepted) {
    const auto spec = parse_tspec(
        "// header comment\n"
        "Class (\"X\", No, <empty>, <empty>) // trailing comment\n"
        "Method (m1, 'X', <empty>, constructor, 0)\n");
    EXPECT_EQ(spec.class_name, "X");
}

TEST(Parser, AbstractClassAndSuperclass) {
    const auto spec = parse_tspec(
        "Class ('Shape', Yes, 'Drawable', ['shape.cpp', 'shape.h'])\n");
    EXPECT_TRUE(spec.is_abstract);
    EXPECT_EQ(spec.superclass, "Drawable");
    EXPECT_EQ(spec.source_files.size(), 2u);
}

TEST(Parser, TemplateParamRecord) {
    const auto spec = parse_tspec(
        "Class ('Stack', No, <empty>, <empty>)\n"
        "TemplateParam ('ClassType', ['int', 'CInt'])\n");
    ASSERT_EQ(spec.template_bindings.count("ClassType"), 1u);
    EXPECT_EQ(spec.template_bindings.at("ClassType"),
              (std::vector<std::string>{"int", "CInt"}));
}

TEST(Parser, NegativeAndRealNumbers) {
    const auto spec = parse_tspec(
        "Class ('X', No, <empty>, <empty>)\n"
        "Attribute ('t', range, -40, -10)\n"
        "Attribute ('r', range, -1.5, 2.5e2)\n");
    const auto* t =
        dynamic_cast<const domain::IntRangeDomain*>(spec.attributes[0].domain.get());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->lo(), -40);
    const auto* r =
        dynamic_cast<const domain::RealRangeDomain*>(spec.attributes[1].domain.get());
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->hi(), 250.0);
}

// ------------------------------------------------------------ parse errors

TEST(ParserErrors, SyntaxErrorsCarryLocation) {
    try {
        (void)parse_tspec("Class ('X' No, <empty>, <empty>)");
        FAIL();
    } catch (const ParseError& e) {
        EXPECT_GE(e.line(), 1);
    }
}

TEST(ParserErrors, UnterminatedString) {
    EXPECT_THROW((void)parse_tspec("Class ('X, No, <empty>, <empty>)"), ParseError);
}

TEST(ParserErrors, MalformedEmptyMarker) {
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empt>, <empty>)"), ParseError);
}

TEST(ParserErrors, RecordLevelProblemsAreSpecErrors) {
    // parameter for unknown method
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empty>, <empty>)\n"
                                   "Parameter (m9, 'q', range, 1, 2)\n"),
                 SpecError);
    // declared parameter count mismatch
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empty>, <empty>)\n"
                                   "Method (m1, 'f', <empty>, new, 2)\n"
                                   "Parameter (m1, 'q', range, 1, 2)\n"),
                 SpecError);
    // duplicate method id
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empty>, <empty>)\n"
                                   "Method (m1, 'f', <empty>, new, 0)\n"
                                   "Method (m1, 'g', <empty>, new, 0)\n"),
                 SpecError);
    // unknown record kind
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empty>, <empty>)\n"
                                   "Banana (m1)\n"),
                 SpecError);
    // no Class record at all
    EXPECT_THROW((void)parse_tspec("Method (m1, 'f', <empty>, new, 0)\n"), SpecError);
    // two Class records
    EXPECT_THROW((void)parse_tspec("Class ('X', No, <empty>, <empty>)\n"
                                   "Class ('Y', No, <empty>, <empty>)\n"),
                 SpecError);
}

// -------------------------------------------------------------- round trip

TEST(Printer, RoundTripPreservesTheModel) {
    const ComponentSpec original = parse_tspec(kProductSpec);
    const std::string printed = print_tspec(original);
    const ComponentSpec reparsed = parse_tspec(printed);

    EXPECT_EQ(reparsed.class_name, original.class_name);
    EXPECT_EQ(reparsed.attributes.size(), original.attributes.size());
    ASSERT_EQ(reparsed.methods.size(), original.methods.size());
    for (std::size_t i = 0; i < original.methods.size(); ++i) {
        EXPECT_EQ(reparsed.methods[i].id, original.methods[i].id);
        EXPECT_EQ(reparsed.methods[i].name, original.methods[i].name);
        EXPECT_EQ(reparsed.methods[i].category, original.methods[i].category);
        EXPECT_EQ(reparsed.methods[i].parameters.size(),
                  original.methods[i].parameters.size());
    }
    ASSERT_EQ(reparsed.nodes.size(), original.nodes.size());
    for (std::size_t i = 0; i < original.nodes.size(); ++i) {
        EXPECT_EQ(reparsed.nodes[i].id, original.nodes[i].id);
        EXPECT_EQ(reparsed.nodes[i].is_start, original.nodes[i].is_start);
        EXPECT_EQ(reparsed.nodes[i].method_ids, original.nodes[i].method_ids);
    }
    EXPECT_EQ(reparsed.edges.size(), original.edges.size());
    // Idempotence: printing again yields the same text.
    EXPECT_EQ(print_tspec(reparsed), printed);
}

// ------------------------------------------------------------- validation

TEST(Validation, DetectsDanglingReferences) {
    SpecBuilder b("X");
    b.method("m1", "X", MethodCategory::Constructor);
    b.node("n1", true, {"m1", "mZ"});  // mZ unknown
    b.edge("n1", "nZ");                // nZ unknown
    const auto spec = b.build_unchecked();
    const auto problems = spec.validate();
    EXPECT_GE(problems.size(), 2u);
    EXPECT_THROW(spec.ensure_valid(), SpecError);
}

TEST(Validation, DetectsOutDegreeMismatch) {
    ComponentSpec spec;
    spec.class_name = "X";
    spec.methods.push_back({"m1", "X", "", MethodCategory::Constructor, {}});
    spec.nodes.push_back({"n1", true, 3, {"m1"}});  // declares 3, has 0
    const auto problems = spec.validate();
    ASSERT_FALSE(problems.empty());
    bool found = false;
    for (const auto& p : problems) {
        found = found || p.message.find("out-degree") != std::string::npos;
    }
    EXPECT_TRUE(found);
}

TEST(Validation, StartNodeMustContainConstructor) {
    SpecBuilder b("X");
    b.method("m1", "X", MethodCategory::Constructor);
    b.method("m2", "f", MethodCategory::New);
    b.node("n1", true, {"m2"});  // start without constructor
    const auto problems = b.build_unchecked().validate();
    bool found = false;
    for (const auto& p : problems) {
        found = found || p.message.find("constructor") != std::string::npos;
    }
    EXPECT_TRUE(found);
}

TEST(Validation, StructuredParameterNeedsClassName) {
    ComponentSpec spec;
    spec.class_name = "X";
    MethodSpec m{"m1", "f", "", MethodCategory::New, {}};
    m.parameters.push_back(TypedSlot{"p", TypeTag::Pointer, nullptr, ""});
    spec.methods.push_back(m);
    const auto problems = spec.validate();
    EXPECT_FALSE(problems.empty());
}

TEST(Validation, MissingDomainOnPlainParameter) {
    ComponentSpec spec;
    spec.class_name = "X";
    MethodSpec m{"m1", "f", "", MethodCategory::New, {}};
    m.parameters.push_back(TypedSlot{"p", TypeTag::Range, nullptr, ""});
    spec.methods.push_back(m);
    EXPECT_FALSE(spec.validate().empty());
}

// ---------------------------------------------------------------- builder

TEST(Builder, ComputesOutDegreesAndValidates) {
    SpecBuilder b("C");
    b.method("m1", "C", MethodCategory::Constructor);
    b.method("m2", "~C", MethodCategory::Destructor);
    b.method("m3", "f", MethodCategory::New).param_range("x", 0, 9);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});
    b.node("n3", false, {"m2"});
    b.edge("n1", "n2").edge("n2", "n2").edge("n2", "n3");
    const ComponentSpec spec = b.build();
    EXPECT_EQ(spec.find_node("n1")->declared_out_degree, 1);
    EXPECT_EQ(spec.find_node("n2")->declared_out_degree, 2);
    EXPECT_EQ(spec.find_node("n3")->declared_out_degree, 0);
}

TEST(Builder, ParamBeforeMethodThrows) {
    SpecBuilder b("C");
    EXPECT_THROW(b.param_range("x", 0, 1), SpecError);
}

TEST(Builder, BuildsTfmGraph) {
    SpecBuilder b("C");
    b.method("m1", "C", MethodCategory::Constructor);
    b.method("m2", "~C", MethodCategory::Destructor);
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m2"});
    b.edge("n1", "n2");
    const auto graph = b.build().build_tfm();
    EXPECT_EQ(graph.node_count(), 2u);
    EXPECT_EQ(graph.edge_count(), 1u);
    EXPECT_EQ(graph.birth_nodes().size(), 1u);
    EXPECT_EQ(graph.death_nodes().size(), 1u);
}

// --------------------------------------------------------------- helpers

TEST(ModelHelpers, EnumParsersAcceptCaseInsensitive) {
    EXPECT_EQ(parse_type_tag("Range"), TypeTag::Range);
    EXPECT_EQ(parse_type_tag("STRING"), TypeTag::String);
    EXPECT_EQ(parse_type_tag("banana"), std::nullopt);
    EXPECT_EQ(parse_method_category("Constructor"), MethodCategory::Constructor);
    EXPECT_EQ(parse_method_category("redefined"), MethodCategory::Redefined);
    EXPECT_EQ(parse_method_category("other"), std::nullopt);
}

TEST(ModelHelpers, SignatureRendering) {
    MethodSpec m{"m2", "UpdateProv", "", MethodCategory::New, {}};
    m.parameters.push_back(TypedSlot{"prv", TypeTag::Pointer, nullptr, "Provider"});
    EXPECT_EQ(m.signature(), "UpdateProv(pointer:Provider prv)");
}

}  // namespace
}  // namespace stc::tspec
