#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "stc/support/contracts.h"
#include "stc/support/error.h"
#include "stc/support/indent_writer.h"
#include "stc/support/rng.h"
#include "stc/support/strings.h"
#include "stc/support/table.h"

namespace stc::support {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(Strings, SplitKeepsEmptyFields) {
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, JoinIsInverseOfSplit) {
    const std::vector<std::string> parts{"m1", "m2", "m3"};
    EXPECT_EQ(join(parts, ","), "m1,m2,m3");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
    EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, CaseAndAffixHelpers) {
    EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
    EXPECT_TRUE(starts_with("IndVarRepLoc", "IndVar"));
    EXPECT_FALSE(starts_with("Ind", "IndVar"));
    EXPECT_TRUE(ends_with("coblist.cpp", ".cpp"));
    EXPECT_FALSE(ends_with(".cpp", "coblist.cpp"));
}

TEST(Strings, ReplaceAllHandlesOverlapsAndGrowth) {
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "x", "xx"), "xx");
    EXPECT_EQ(replace_all("none", "zz", "y"), "none");
}

TEST(Strings, CppStringLiteralEscapes) {
    EXPECT_EQ(cpp_string_literal("plain"), "\"plain\"");
    EXPECT_EQ(cpp_string_literal("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(cpp_string_literal("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(cpp_string_literal("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(cpp_string_literal(std::string("a\x01") + "b"), "\"a\\x01b\"");
}

TEST(Strings, PercentMatchesPaperFormatting) {
    EXPECT_EQ(percent(0.957), "95.7%");
    EXPECT_EQ(percent(1.0), "100.0%");
    EXPECT_EQ(percent(0.0), "0.0%");
    EXPECT_EQ(percent(0.635), "63.5%");
}

// ------------------------------------------------------------------- rng

TEST(Pcg32, DeterministicForSameSeed) {
    Pcg32 a(42);
    Pcg32 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiverge) {
    Pcg32 a(1);
    Pcg32 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Pcg32, UniformStaysInClosedRange) {
    Pcg32 rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values of a small range appear
}

TEST(Pcg32, UniformSingletonRange) {
    Pcg32 rng(7);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Pcg32, UniformRealInHalfOpenRange) {
    Pcg32 rng(11);
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.uniform_real(1.0, 2.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LT(v, 2.0);
    }
}

TEST(Pcg32, IndexCoversAllSlots) {
    Pcg32 rng(3);
    std::set<std::size_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, IndexZeroSizeContract) {
    // index(0) is a contract violation: asserted in debug builds; in
    // release it returns 0 WITHOUT advancing the stream instead of
    // executing a modulo-by-zero (the SIGFPE class behind
    // `rng.index(size - 1)` on a one-element container).
#ifdef NDEBUG
    Pcg32 a(9), b(9);
    EXPECT_EQ(a.index(0), 0u);
    // The degenerate draw did not advance the stream: both generators
    // stay in lockstep.
    for (int i = 0; i < 32; ++i) EXPECT_EQ(a.index(7), b.index(7));
#else
    EXPECT_DEATH({ Pcg32(9).index(0); }, "non-empty range");
#endif
}

TEST(Pcg32, IndexSequencesAreUnchangedForPositiveSizes) {
    // The zero-size guard must not perturb seeded sequences — golden
    // corpora and campaign fingerprints depend on these draws.
    Pcg32 rng(1234);
    std::vector<std::size_t> draws;
    for (int i = 0; i < 8; ++i) draws.push_back(rng.index(100));
    Pcg32 again(1234);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(again.index(100), draws[i]) << i;
}

// -------------------------------------------------------------- contracts

TEST(Contracts, ExpectsThrowsContractError) {
    EXPECT_THROW(STC_EXPECTS(false), ContractError);
    EXPECT_NO_THROW(STC_EXPECTS(true));
}

TEST(Contracts, EnsuresMessageNamesExpression) {
    try {
        STC_ENSURES(1 == 2);
        FAIL() << "should have thrown";
    } catch (const ContractError& e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    }
}

// ------------------------------------------------------------------ table

TEST(TextTable, RendersAlignedColumnsWithFooter) {
    TextTable t({"Method", "Total"});
    t.add_row({"Sort1", "280"});
    t.add_row({"FindMax", "93"});
    t.add_footer({"Score", "95.7%"});
    std::ostringstream os;
    t.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| Sort1   |"), std::string::npos);
    EXPECT_NE(out.find("|   280 |"), std::string::npos);
    EXPECT_NE(out.find("95.7%"), std::string::npos);
    // Footer separated from body: 4 horizontal rules (top, after header,
    // before footer, bottom).
    std::size_t rules = 0;
    std::istringstream lines(out);
    for (std::string line; std::getline(lines, line);) {
        rules += (!line.empty() && line.front() == '+') ? 1 : 0;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(TextTable, RejectsArityMismatch) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractError);
    EXPECT_THROW(t.add_footer({"x", "y", "z"}), ContractError);
}

TEST(CsvWriter, EscapesSpecialCells) {
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

// ----------------------------------------------------------- indent writer

TEST(IndentWriter, TracksNesting) {
    IndentWriter w;
    w.open("int main() {");
    w.line("return 0;");
    w.close("}");
    EXPECT_EQ(w.str(), "int main() {\n    return 0;\n}\n");
}

TEST(IndentWriter, BlankLinesCarryNoTrailingSpaces) {
    IndentWriter w;
    w.open("{");
    w.line();
    w.close("}");
    EXPECT_EQ(w.str(), "{\n\n}\n");
}

TEST(IndentWriter, CloseNeverUnderflows) {
    IndentWriter w;
    w.close("}");
    w.close("}");
    EXPECT_EQ(w.level(), 0);
}

// ------------------------------------------------------------------ errors

TEST(Errors, HierarchyIsCatchableAsError) {
    EXPECT_THROW(throw SpecError("bad"), Error);
    EXPECT_THROW(throw ParseError("bad", 3, 7), Error);
    EXPECT_THROW(throw ReflectError("bad"), Error);
    EXPECT_THROW(throw CrashSignal("bad"), Error);
}

TEST(Errors, ParseErrorCarriesLocation) {
    const ParseError e("unexpected", 3, 7);
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 7);
    EXPECT_NE(std::string(e.what()).find("3:7"), std::string::npos);
}

}  // namespace
}  // namespace stc::support
