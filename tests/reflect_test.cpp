#include <gtest/gtest.h>

#include <string>

#include "stc/reflect/binder.h"
#include "stc/reflect/class_binding.h"

namespace stc::reflect {
namespace {

using domain::Value;

/// Exercises every argument/return conversion the binder supports.
class Gadget {
public:
    Gadget() = default;
    Gadget(int a, const char* name) : total_(a), name_(name) {}

    void add(int x) { total_ += x; }
    int total() const { return total_; }
    double scale(double f) const { return total_ * f; }
    bool positive() const noexcept { return total_ > 0; }
    std::string tag(const std::string& prefix) { return prefix + name_; }
    const char* cname() const { return name_.c_str(); }
    void rename(char* n) { name_ = n; }
    Gadget* self() { return this; }
    void attach(Gadget* other) { peer_ = other; }
    Gadget* peer() const noexcept { return peer_; }
    long mix(int a, double b, const std::string& c) {
        return a + static_cast<long>(b) + static_cast<long>(c.size());
    }

private:
    int total_ = 0;
    std::string name_ = "g";
    Gadget* peer_ = nullptr;
};

ClassBinding gadget_binding() {
    Binder<Gadget> b("Gadget");
    b.ctor<>();
    b.ctor<int, const char*>();
    b.method("add", &Gadget::add);
    b.method("total", &Gadget::total);
    b.method("scale", &Gadget::scale);
    b.method("positive", &Gadget::positive);
    b.method("tag", &Gadget::tag);
    b.method("cname", &Gadget::cname);
    b.method("rename", &Gadget::rename);
    b.method("self", &Gadget::self);
    b.method("attach", &Gadget::attach);
    b.method("peer", &Gadget::peer);
    b.method("mix", &Gadget::mix);
    return b.take();
}

class ReflectTest : public ::testing::Test {
protected:
    ReflectTest() : binding_(gadget_binding()) {}

    ~ReflectTest() override {
        if (object_ != nullptr) binding_.destroy(object_);
    }

    void* make(const Args& args = {}) {
        object_ = binding_.construct(args);
        return object_;
    }

    ClassBinding binding_;
    void* object_ = nullptr;
};

TEST_F(ReflectTest, ConstructorsSelectedByArity) {
    EXPECT_TRUE(binding_.has_constructor(0));
    EXPECT_TRUE(binding_.has_constructor(2));
    EXPECT_FALSE(binding_.has_constructor(1));

    void* a = make({Value::make_int(5), Value::make_string("x")});
    EXPECT_EQ(binding_.invoke(a, "total", {}).as_int(), 5);
}

TEST_F(ReflectTest, UnknownConstructorArityThrows) {
    EXPECT_THROW((void)binding_.construct({Value::make_int(1)}), ReflectError);
}

TEST_F(ReflectTest, IntArgumentAndIntReturn) {
    void* g = make();
    binding_.invoke(g, "add", {Value::make_int(4)});
    binding_.invoke(g, "add", {Value::make_int(-1)});
    EXPECT_EQ(binding_.invoke(g, "total", {}).as_int(), 3);
}

TEST_F(ReflectTest, RealArgumentAndRealReturn) {
    void* g = make();
    binding_.invoke(g, "add", {Value::make_int(10)});
    const Value v = binding_.invoke(g, "scale", {Value::make_real(0.5)});
    EXPECT_DOUBLE_EQ(v.as_real(), 5.0);
    // Int coerces into a floating-point parameter.
    EXPECT_DOUBLE_EQ(binding_.invoke(g, "scale", {Value::make_int(2)}).as_real(), 20.0);
}

TEST_F(ReflectTest, BoolReturnBecomesInt) {
    void* g = make();
    EXPECT_EQ(binding_.invoke(g, "positive", {}).as_int(), 0);
    binding_.invoke(g, "add", {Value::make_int(1)});
    EXPECT_EQ(binding_.invoke(g, "positive", {}).as_int(), 1);
}

TEST_F(ReflectTest, StringFlavors) {
    void* g = make({Value::make_int(0), Value::make_string("core")});
    EXPECT_EQ(binding_.invoke(g, "tag", {Value::make_string("pre-")}).as_string(),
              "pre-core");
    EXPECT_EQ(binding_.invoke(g, "cname", {}).as_string(), "core");
    // char* parameter backed by stable holder storage.
    binding_.invoke(g, "rename", {Value::make_string("renamed")});
    EXPECT_EQ(binding_.invoke(g, "cname", {}).as_string(), "renamed");
}

TEST_F(ReflectTest, PointerArgumentAndReturn) {
    void* g = make();
    const Value self = binding_.invoke(g, "self", {});
    EXPECT_EQ(self.as_pointer(), g);

    Gadget other;
    binding_.invoke(g, "attach", {Value::make_pointer(&other, "Gadget")});
    EXPECT_EQ(binding_.invoke(g, "peer", {}).as_pointer(), &other);
}

TEST_F(ReflectTest, MixedArityThreeCall) {
    void* g = make();
    const Value v = binding_.invoke(
        g, "mix",
        {Value::make_int(1), Value::make_real(2.9), Value::make_string("abc")});
    EXPECT_EQ(v.as_int(), 1 + 2 + 3);
}

TEST_F(ReflectTest, VoidReturnIsEmptyValue) {
    void* g = make();
    EXPECT_TRUE(binding_.invoke(g, "add", {Value::make_int(1)}).is_empty());
}

TEST_F(ReflectTest, UnknownMethodOrWrongArityThrows) {
    void* g = make();
    EXPECT_THROW((void)binding_.invoke(g, "nope", {}), ReflectError);
    EXPECT_THROW((void)binding_.invoke(g, "add", {}), ReflectError);  // arity 1
}

TEST_F(ReflectTest, ArgumentKindMismatchSurfacesAsError) {
    void* g = make();
    EXPECT_THROW((void)binding_.invoke(g, "add", {Value::make_string("x")}), Error);
}

TEST_F(ReflectTest, MethodsIntrospection) {
    const auto methods = binding_.methods();
    EXPECT_EQ(methods.size(), 11u);
    const std::pair<std::string, std::size_t> expected{"add", 1};
    EXPECT_NE(std::find(methods.begin(), methods.end(), expected), methods.end());
}

TEST(BinderCustom, HandWrittenInvoker) {
    Binder<Gadget> b("Gadget");
    b.ctor<>();
    b.custom("double_add", 1, [](Gadget& g, const Args& args) {
        g.add(static_cast<int>(args.at(0).as_int()) * 2);
        return Value::make_int(g.total());
    });
    const ClassBinding binding = b.take();
    void* g = binding.construct({});
    EXPECT_EQ(binding.invoke(g, "double_add", {Value::make_int(3)}).as_int(), 6);
    binding.destroy(g);
}

TEST(BinderBit, NonBitClassHasNullBitView) {
    const ClassBinding binding = gadget_binding();
    void* g = binding.construct({});
    EXPECT_EQ(binding.as_bit(g), nullptr);
    binding.destroy(g);
}

TEST(Registry, AddFindAndReplace) {
    Registry registry;
    registry.add(gadget_binding());
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_NE(registry.find("Gadget"), nullptr);
    EXPECT_EQ(registry.find("Missing"), nullptr);
    EXPECT_THROW((void)registry.at("Missing"), ReflectError);
    EXPECT_EQ(registry.at("Gadget").name(), "Gadget");

    // Re-registration replaces (latest binding wins).
    Binder<Gadget> b2("Gadget");
    b2.ctor<>();
    registry.add(b2.take());
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_FALSE(registry.at("Gadget").has_constructor(2));
}

TEST(ClassBindingErrors, MissingDestructor) {
    ClassBinding raw("X");
    int dummy = 0;
    EXPECT_THROW(raw.destroy(&dummy), ReflectError);
}

}  // namespace
}  // namespace stc::reflect
