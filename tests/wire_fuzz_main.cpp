// Fuzz driver for the wire frame decoder (stc::wire::Decoder and
// RawFrameBuffer): random well-formed message streams are truncated,
// bit-flipped, spliced with garbage, and fed in random chunk sizes.
//
// Invariants checked on every iteration — the decode layer's whole
// contract with the daemon and the coordinator:
//   - feeding arbitrary bytes never crashes or over-allocates;
//   - an uncorrupted stream decodes to exactly the messages encoded;
//   - a truncated stream yields a prefix of them, then NeedMore;
//   - after any error status the decoder stays poisoned on it;
//   - pending_bytes never exceeds what was fed.
//
// `wire_fuzz --smoke` is the CI entry (ctest): a seconds-scale budget.
// `wire_fuzz --iters N [--seed S]` is the long-haul form.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "stc/support/rng.h"
#include "stc/wire/frame.h"

namespace {

using stc::support::Pcg32;
using namespace stc::wire;

const MessageType kAllTypes[] = {
    MessageType::Hello, MessageType::HelloAck, MessageType::Work,
    MessageType::Result, MessageType::Ping,    MessageType::Pong,
    MessageType::Error, MessageType::Shutdown,
};

int g_failures = 0;

void check(bool ok, const std::string& what, std::uint64_t iteration) {
    if (ok) return;
    std::cerr << "wire_fuzz: FAILED at iteration " << iteration << ": " << what
              << "\n";
    ++g_failures;
}

std::string random_payload(Pcg32& rng) {
    const std::size_t n = rng.index(64);
    std::string payload;
    payload.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        payload.push_back(static_cast<char>(rng.index(256)));
    }
    return payload;
}

/// Feed `bytes` to `decoder` in random chunks, draining after each
/// chunk.  Returns the decoded messages and the final non-Ok status.
Decoder::Status feed_chunked(Pcg32& rng, const std::string& bytes,
                             std::vector<Message>* out) {
    Decoder decoder;
    std::size_t fed = 0;
    Decoder::Status last = Decoder::Status::NeedMore;
    while (fed < bytes.size()) {
        const std::size_t chunk =
            1 + rng.index(std::min<std::size_t>(bytes.size() - fed, 17));
        decoder.feed(bytes.data() + fed, chunk);
        fed += chunk;
        Message message;
        while ((last = decoder.next(&message)) == Decoder::Status::Ok) {
            out->push_back(message);
        }
        if (last != Decoder::Status::NeedMore) {
            // Terminal: poisoning must hold even after more bytes.
            decoder.feed(bytes.data(), std::min<std::size_t>(bytes.size(), 8));
            Message again;
            if (decoder.next(&again) != last) {
                return Decoder::Status::Ok;  // sentinel for "poison broke"
            }
            return last;
        }
    }
    return last;
}

void one_iteration(Pcg32& rng, std::uint64_t iteration) {
    // A stream of 1-4 well-formed messages.
    const std::size_t count = 1 + rng.index(4);
    std::vector<Message> expected;
    std::string stream;
    for (std::size_t i = 0; i < count; ++i) {
        Message m;
        m.type = kAllTypes[rng.index(std::size(kAllTypes))];
        m.payload = random_payload(rng);
        expected.push_back(m);
        stream += encode_message(m.type, m.payload);
    }

    switch (rng.index(4)) {
        case 0: {  // pristine: exact round-trip
            std::vector<Message> got;
            const auto status = feed_chunked(rng, stream, &got);
            check(status == Decoder::Status::NeedMore,
                  "pristine stream hit an error status", iteration);
            check(got.size() == expected.size(),
                  "pristine stream lost messages", iteration);
            for (std::size_t i = 0; i < got.size() && i < expected.size();
                 ++i) {
                check(got[i].type == expected[i].type &&
                          got[i].payload == expected[i].payload,
                      "pristine stream corrupted a message", iteration);
            }
            break;
        }
        case 1: {  // truncation: a prefix of the messages, then NeedMore
            const std::size_t cut = rng.index(stream.size());
            std::vector<Message> got;
            const auto status =
                feed_chunked(rng, stream.substr(0, cut), &got);
            check(status == Decoder::Status::NeedMore,
                  "truncated stream hit an error status", iteration);
            check(got.size() <= expected.size(),
                  "truncated stream invented messages", iteration);
            for (std::size_t i = 0; i < got.size(); ++i) {
                check(got[i].payload == expected[i].payload,
                      "truncated stream corrupted a decoded prefix",
                      iteration);
            }
            break;
        }
        case 2: {  // single-byte corruption somewhere in the stream
            std::string bad = stream;
            const std::size_t at = rng.index(bad.size());
            bad[at] = static_cast<char>(bad[at] ^
                                        (1u << rng.index(8)));
            std::vector<Message> got;
            const auto status = feed_chunked(rng, bad, &got);
            // Any status is legal (the flip may land in a payload), but
            // poisoning must hold — feed_chunked returns the Ok
            // sentinel when it observed a poison violation.
            check(status != Decoder::Status::Ok,
                  "decoder produced Ok from terminal state after corruption",
                  iteration);
            check(got.size() <= expected.size(),
                  "corrupted stream invented messages", iteration);
            break;
        }
        default: {  // pure garbage prefix: must error, never crash
            std::string garbage = random_payload(rng);
            garbage += stream;
            std::vector<Message> got;
            const auto status = feed_chunked(rng, garbage, &got);
            check(status != Decoder::Status::Ok,
                  "decoder produced Ok from terminal state on garbage",
                  iteration);
            break;
        }
    }

    // Raw-frame buffer under the same chunked random bytes: must never
    // crash, and oversized() is the only escape hatch.
    RawFrameBuffer raw;
    const std::string& bytes = stream;
    std::size_t fed = 0;
    while (fed < bytes.size()) {
        const std::size_t chunk =
            1 + rng.index(std::min<std::size_t>(bytes.size() - fed, 13));
        raw.feed(bytes.data() + fed, chunk);
        fed += chunk;
        while (raw.take_frame().has_value()) {
        }
        if (raw.oversized()) break;
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t iterations = 20000;
    std::uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            iterations = 2000;
        } else if (arg == "--iters" && i + 1 < argc) {
            iterations = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::cerr << "usage: wire_fuzz [--smoke] [--iters N] [--seed S]\n";
            return 2;
        }
    }

    Pcg32 rng(seed);
    for (std::uint64_t i = 0; i < iterations; ++i) {
        one_iteration(rng, i);
        if (g_failures > 10) break;  // enough signal; stop the spew
    }

    if (g_failures != 0) {
        std::cerr << "wire_fuzz: " << g_failures << " invariant failure(s)\n";
        return 1;
    }
    std::cout << "wire_fuzz: " << iterations << " iteration(s), seed " << seed
              << ", all invariants held\n";
    return 0;
}
