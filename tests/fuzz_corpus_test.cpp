// Regression replay of the checked-in corpus (corpus/*.suite at the
// repo root): every minimized reproducer the fuzzer or the campaign
// shrinker ever persisted must keep replaying to its recorded verdict —
// through the real runner and, when the entry names a mutant, with that
// mutant active.  A verdict drift here means either the component or
// the replay machinery changed behaviour; both are regressions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stc/core/self_testable.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/corpus.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"
#include "test_paths.h"

namespace stc {
namespace {

TEST(FuzzCorpus, CheckedInEntriesReplayToTheirRecordedVerdicts) {
    const auto paths =
        fuzz::list_corpus(std::string(STC_SOURCE_DIR) + "/corpus");
    // The repo ships reproducers for the paper components; an empty list
    // means the corpus went missing and this test silently tested nothing.
    ASSERT_FALSE(paths.empty());

    mfc::ElementPool pool;
    core::SelfTestableComponent coblist(mfc::coblist_spec(),
                                        mfc::coblist_binding());
    core::SelfTestableComponent sortable(mfc::sortable_spec(),
                                         mfc::sortable_binding());
    const driver::CompletionRegistry completions = mfc::make_completions(pool);
    coblist.set_completions(completions);
    sortable.set_completions(completions);

    for (const std::string& path : paths) {
        SCOPED_TRACE(path);
        fuzz::CorpusEntry entry = fuzz::load_entry_file(path);
        const core::SelfTestableComponent& component =
            entry.suite.class_name == sortable.spec().class_name ? sortable
                                                                 : coblist;
        ASSERT_EQ(entry.suite.class_name, component.spec().class_name);

        // Pointer arguments persist as placeholders; rebuild them from
        // the entry's recorded seed, exactly like any frozen suite.
        (void)driver::recomplete_suite(entry.suite, completions,
                                       entry.suite.seed);

        std::vector<mutation::Mutant> mutants;
        const mutation::Mutant* active = nullptr;
        if (!entry.mutant_id.empty()) {
            mutants = mutation::enumerate_mutants(mfc::descriptors(),
                                                  entry.suite.class_name);
            for (const auto& m : mutants) {
                if (m.id() == entry.mutant_id) {
                    active = &m;
                    break;
                }
            }
            ASSERT_NE(active, nullptr)
                << "corpus entry names unknown mutant " << entry.mutant_id;
        }

        // Model-divergence reproducers only reach their recorded verdict
        // when the replaying runner carries the same reference model the
        // fuzzer ran with (and promotes clean-run divergence, as the
        // fuzzer does).
        driver::RunnerOptions runner_options;
        if (entry.verdict == driver::Verdict::ModelDivergence) {
            const driver::ModelBinding* model =
                model::binding_for(entry.suite.class_name);
            ASSERT_NE(model, nullptr)
                << "model-divergence entry for unmodeled class "
                << entry.suite.class_name;
            runner_options.model = model;
            runner_options.promote_divergence = true;
        }
        const driver::TestRunner runner(component.registry(), runner_options);
        const reflect::ClassBinding& binding =
            component.registry().at(entry.suite.class_name);
        driver::TestResult result;
        if (active != nullptr) {
            const mutation::MutantActivation activation(*active);
            result = runner.run_case(binding, entry.reproducer());
        } else {
            result = runner.run_case(binding, entry.reproducer());
        }
        EXPECT_EQ(result.verdict, entry.verdict)
            << "replayed as " << driver::to_string(result.verdict)
            << ", recorded " << driver::to_string(entry.verdict) << ": "
            << result.message;
    }
}

}  // namespace
}  // namespace stc
