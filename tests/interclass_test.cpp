#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "stc/codegen/driver_codegen.h"
#include "test_paths.h"

#include "stc/interclass/system_driver.h"
#include "stc/interclass/system_io.h"
#include "stc/interclass/system_spec.h"
#include "stc/mutation/engine.h"
#include "stc/oracle/oracle.h"
#include "stc/reflect/binder.h"
#include "stc/support/error.h"
#include "wallet_component.h"

namespace stc::interclass {
namespace {

using examples::ledger_spec;
using examples::register_wallet_classes;
using examples::wallet_spec;
using examples::wallet_system_spec;

// ------------------------------------------------------------- system spec

TEST(SystemSpec, WalletSystemValidates) {
    const auto system = wallet_system_spec();
    EXPECT_TRUE(system.validate().empty());
    EXPECT_EQ(system.roles.size(), 2u);
    EXPECT_NE(system.find_role("wallet"), nullptr);
    EXPECT_NE(system.find_role("audit"), nullptr);
    EXPECT_EQ(system.find_role("ghost"), nullptr);
    EXPECT_NE(system.spec_of("Wallet"), nullptr);
    EXPECT_EQ(system.role_providing("Ledger"), "audit");
    EXPECT_EQ(system.role_providing("Unknown"), "");
}

TEST(SystemSpec, BuildTfmEncodesRoleMethods) {
    const auto graph = wallet_system_spec().build_tfm();
    EXPECT_EQ(graph.node_count(), 6u);
    EXPECT_EQ(graph.edge_count(), 9u);
    const auto n5 = graph.find_node("s5");
    ASSERT_TRUE(n5.has_value());
    EXPECT_EQ(graph.node(*n5).method_ids,
              (std::vector<std::string>{"wallet.m6", "audit.m3"}));
}

TEST(SystemSpec, ValidationDetectsProblems) {
    // Unknown role in a node call.
    {
        SystemSpecBuilder b("Bad");
        b.class_spec(wallet_spec());
        b.role("wallet", "Wallet", "m1");
        b.node("s1", true, {{"ghost", "m4"}});
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Missing class spec for a role.
    {
        SystemSpecBuilder b("Bad");
        b.role("wallet", "Wallet", "m1");
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Constructor id is not a constructor.
    {
        SystemSpecBuilder b("Bad");
        b.class_spec(wallet_spec());
        b.role("wallet", "Wallet", "m4");  // Deposit
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // Node calls must not name constructors/destructors.
    {
        SystemSpecBuilder b("Bad");
        b.class_spec(wallet_spec());
        b.role("wallet", "Wallet", "m1");
        b.node("s1", true, {{"wallet", "m2"}});  // destructor
        EXPECT_THROW((void)b.build(), SpecError);
    }
    // No start node.
    {
        SystemSpecBuilder b("Bad");
        b.class_spec(wallet_spec());
        b.role("wallet", "Wallet", "m1");
        b.node("s1", false, {{"wallet", "m4"}});
        EXPECT_THROW((void)b.build(), SpecError);
    }
}

// ------------------------------------------------------------- generation

class SystemGen : public ::testing::Test {
protected:
    SystemGen() : system_(wallet_system_spec()) {
        register_wallet_classes(registry_);
    }

    SystemSpec system_;
    reflect::Registry registry_;
};

TEST_F(SystemGen, GeneratesOneCasePerTransaction) {
    const auto suite = SystemDriverGenerator(system_).generate();
    EXPECT_EQ(suite.component_name, "AuditedWallet");
    EXPECT_EQ(suite.size(), suite.transactions_enumerated);
    EXPECT_GT(suite.size(), 0u);
}

TEST_F(SystemGen, SetupConstructsEveryRoleInOrder) {
    const auto suite = SystemDriverGenerator(system_).generate();
    for (const auto& tc : suite.cases) {
        ASSERT_EQ(tc.setup.size(), 2u);
        EXPECT_EQ(tc.setup[0].role, "wallet");
        EXPECT_EQ(tc.setup[1].role, "audit");
        EXPECT_FALSE(tc.needs_completion);
    }
}

TEST_F(SystemGen, RoleReferenceBoundForInterclassParameters) {
    const auto suite = SystemDriverGenerator(system_).generate();
    bool saw_attach = false;
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.body) {
            if (call.method_name != "Attach") continue;
            saw_attach = true;
            ASSERT_EQ(call.arguments.size(), 1u);
            EXPECT_TRUE(call.arguments[0].is_role_ref());
            EXPECT_EQ(call.arguments[0].role_ref, "audit");
            EXPECT_EQ(call.render(), "wallet.Attach(@audit)");
        }
    }
    EXPECT_TRUE(saw_attach);
}

TEST_F(SystemGen, ValueArgumentsDrawnFromDomains) {
    const auto suite = SystemDriverGenerator(system_).generate();
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.body) {
            if (call.method_name == "Deposit" || call.method_name == "Withdraw") {
                ASSERT_EQ(call.arguments.size(), 1u);
                const auto amount = call.arguments[0].value.as_int();
                EXPECT_GE(amount, 1);
                EXPECT_LE(amount, 100);
            }
        }
    }
}

TEST_F(SystemGen, DeterministicPerSeed) {
    SystemGeneratorOptions options;
    options.seed = 11;
    const auto a = SystemDriverGenerator(system_, options).generate();
    const auto b = SystemDriverGenerator(system_, options).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.cases[i].body.size(), b.cases[i].body.size());
        for (std::size_t c = 0; c < a.cases[i].body.size(); ++c) {
            EXPECT_EQ(a.cases[i].body[c].render(), b.cases[i].body[c].render());
        }
    }
}

// --------------------------------------------------------------- execution

TEST_F(SystemGen, HealthySystemRunsGreen) {
    const auto suite = SystemDriverGenerator(system_).generate();
    const SystemRunner runner(registry_);
    const auto result = runner.run(system_, suite);
    EXPECT_EQ(result.failed(), 0u);
    EXPECT_EQ(result.passed(), suite.size());
    // Reports contain both roles' state.
    for (const auto& r : result.results) {
        EXPECT_NE(r.report.find("Wallet{"), std::string::npos);
        EXPECT_NE(r.report.find("Ledger{"), std::string::npos);
    }
}

TEST_F(SystemGen, CrossClassConsistencyHoldsOnAuditedPaths) {
    const auto suite = SystemDriverGenerator(system_).generate();
    const SystemRunner runner(registry_);
    const auto result = runner.run(system_, suite);
    std::size_t audited = 0;
    for (const auto& r : result.results) {
        if (r.report.find("audited=yes") == std::string::npos) continue;
        ++audited;
        const auto balance =
            std::stoi(r.report.substr(r.report.find("balance=") + 8));
        const auto total = std::stoi(r.report.substr(r.report.find("total=") + 6));
        EXPECT_EQ(balance, total) << r.report;
    }
    EXPECT_GT(audited, 0u);
}

TEST_F(SystemGen, FaultyCollaborationIsCaught) {
    // A mis-wired Deposit that books twice: each class's own invariant
    // still holds, but the golden-output oracle sees the divergence
    // (balance drifts from the expected value and from the ledger total).
    reflect::Registry broken;
    {
        reflect::Binder<examples::Wallet> b("Wallet");
        b.ctor<>();
        b.method("Attach", &examples::Wallet::Attach);
        b.custom("Deposit", 1, [](examples::Wallet& w, const reflect::Args& args) {
            const int amount = static_cast<int>(args.at(0).as_int());
            w.Deposit(amount);
            w.Deposit(amount);  // faulty double-deposit
            return domain::Value{};
        });
        b.method("Withdraw", &examples::Wallet::Withdraw);
        b.method("Balance", &examples::Wallet::Balance);
        broken.add(b.take());
    }
    {
        reflect::Binder<examples::Ledger> b("Ledger");
        b.ctor<>();
        b.method("Count", &examples::Ledger::Count);
        b.method("Total", &examples::Ledger::Total);
        broken.add(b.take());
    }

    const auto suite = SystemDriverGenerator(system_).generate();
    const auto golden = oracle::GoldenRecord::from(
        SystemRunner(registry_).run(system_, suite));
    const auto observed = SystemRunner(broken).run(system_, suite);
    EXPECT_NE(oracle::classify_suite(golden, observed), oracle::KillReason::None);
}

TEST_F(SystemGen, MutationEngineRunsOverSystemSuites) {
    // The §6 argument, as a regression check: the ledger write-through
    // mutants of Wallet::Deposit are killed by the system suite (which
    // observes the Ledger role) but not by an intraclass Wallet suite.
    const auto mutants =
        mutation::enumerate_mutants(examples::wallet_descriptors(), "Wallet");
    ASSERT_FALSE(mutants.empty());

    // Intraclass suite: ledger completed but unobserved.
    examples::LedgerPool ledgers;
    const auto completions = ledgers.completions();
    driver::DriverGenerator intraclass_gen(examples::wallet_intraclass_spec());
    intraclass_gen.completions(&completions);
    const auto intraclass_suite = intraclass_gen.generate();
    const driver::TestRunner runner(registry_);

    const auto system_suite = SystemDriverGenerator(system_).generate();
    const SystemRunner system_runner(registry_);

    const mutation::MutationEngine engine(registry_);
    const auto intra = engine.run_with(
        [&] { return runner.run(intraclass_suite); }, mutants);
    const auto inter = engine.run_with(
        [&] { return system_runner.run(system_, system_suite); }, mutants);

    ASSERT_TRUE(intra.baseline_clean);
    ASSERT_TRUE(inter.baseline_clean);
    EXPECT_GT(inter.score(), intra.score());

    // The canonical interaction fault: Deposit's ledger pointer replaced
    // by NULL (write-through silently dropped).
    const auto is_writethrough_null = [](const mutation::Mutant& m) {
        return m.method->method_name() == "Deposit" && m.site_index == 2 &&
               m.op == mutation::Operator::IndVarRepReq;
    };
    for (std::size_t i = 0; i < mutants.size(); ++i) {
        if (!is_writethrough_null(mutants[i])) continue;
        EXPECT_NE(intra.outcomes[i].fate, mutation::MutantFate::Killed)
            << "intraclass suite cannot observe the dropped write-through";
        EXPECT_EQ(inter.outcomes[i].fate, mutation::MutantFate::Killed)
            << "interclass suite observes the Ledger role";
    }
}

TEST_F(SystemGen, SystemSuiteSurvivesSaveLoadAndRerunsIdentically) {
    const auto suite = SystemDriverGenerator(system_).generate();

    std::stringstream buffer;
    save_system_suite(buffer, suite);
    const auto loaded = load_system_suite(buffer);

    EXPECT_EQ(loaded.component_name, suite.component_name);
    EXPECT_EQ(loaded.seed, suite.seed);
    ASSERT_EQ(loaded.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite.cases[i];
        const auto& b = loaded.cases[i];
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.transaction_text, a.transaction_text);
        ASSERT_EQ(b.setup.size(), a.setup.size());
        ASSERT_EQ(b.body.size(), a.body.size());
        for (std::size_t c = 0; c < a.body.size(); ++c) {
            EXPECT_EQ(b.body[c].render(), a.body[c].render());
            EXPECT_EQ(b.body[c].method_id, a.body[c].method_id);
        }
    }

    // Role references rebind to live objects on replay: identical run.
    const SystemRunner runner(registry_);
    const auto original = runner.run(system_, suite);
    const auto replay = runner.run(system_, loaded);
    ASSERT_EQ(replay.results.size(), original.results.size());
    for (std::size_t i = 0; i < original.results.size(); ++i) {
        EXPECT_EQ(replay.results[i].verdict, original.results[i].verdict);
        EXPECT_EQ(replay.results[i].report, original.results[i].report);
    }

    // Round trip is byte-stable.
    std::stringstream second;
    save_system_suite(second, loaded);
    EXPECT_EQ(second.str(), buffer.str());
}

TEST_F(SystemGen, SystemSuiteIoRejectsMalformedInput) {
    std::stringstream bad_magic("nope\n");
    EXPECT_THROW((void)load_system_suite(bad_magic), Error);
    std::stringstream orphan("concat-system-suite 1\ncallx wallet|m4|Deposit|I:1\n");
    EXPECT_THROW((void)load_system_suite(orphan), Error);
    std::stringstream short_call(
        "concat-system-suite 1\ncase STC0|t|0|0\nsetup wallet|m1\nend\n");
    EXPECT_THROW((void)load_system_suite(short_call), Error);
}

TEST_F(SystemGen, MissingBindingIsSetupError) {
    reflect::Registry incomplete;
    {
        reflect::Binder<examples::Wallet> b("Wallet");
        b.ctor<>();
        incomplete.add(b.take());
    }
    const auto suite = SystemDriverGenerator(system_).generate();
    const SystemRunner runner(incomplete);
    const auto result = runner.run(system_, suite);
    EXPECT_GT(result.count(driver::Verdict::SetupError), 0u);
}

TEST_F(SystemGen, SystemCodegenEmitsRunnableShape) {
    SystemGeneratorOptions options;
    options.enumeration.max_node_visits = 1;
    const auto suite = SystemDriverGenerator(system_, options).generate();

    codegen::CodegenOptions cg;
    cg.includes = {"wallet.h"};
    cg.usings = {"stc::examples"};
    cg.log_file = "system_result.txt";
    const codegen::SystemDriverCodegen generator(system_, cg);
    const std::string src = generator.suite_source(suite);

    // Roles as stack objects, role refs as addresses, invariants around
    // calls, Fig. 6-style logging.
    EXPECT_NE(src.find("Wallet wallet_obj;"), std::string::npos);
    EXPECT_NE(src.find("Ledger audit_obj;"), std::string::npos);
    EXPECT_NE(src.find("wallet_obj.Attach(&audit_obj)"), std::string::npos);
    EXPECT_NE(src.find("wallet_obj.InvariantTest();"), std::string::npos);
    EXPECT_NE(src.find("audit_obj.InvariantTest();"), std::string::npos);
    EXPECT_NE(src.find("catch (const std::exception& er)"), std::string::npos);
    EXPECT_NE(src.find("int main() {"), std::string::npos);
    EXPECT_NE(src.find("(void)wallet_obj.Withdraw("), std::string::npos);
}

TEST_F(SystemGen, GeneratedSystemDriverCompilesAndRuns) {
    if (std::system("c++ --version > /dev/null 2>&1") != 0) {
        GTEST_SKIP() << "no c++ compiler on PATH";
    }
    SystemGeneratorOptions options;
    options.enumeration.max_node_visits = 1;
    const auto suite = SystemDriverGenerator(system_, options).generate();

    codegen::CodegenOptions cg;
    cg.includes = {"wallet.h"};
    cg.usings = {"stc::examples"};
    cg.log_file = "system_result.txt";
    const codegen::SystemDriverCodegen generator(system_, cg);

    const std::string root(STC_SOURCE_DIR);
    {
        std::ofstream out("/tmp/stc_system_driver.cpp");
        out << generator.suite_source(suite);
    }
    const std::string compile =
        "c++ -std=c++20 -I " + root + "/examples/wallet -I " + root +
        "/src/bit/include -I " + root + "/src/support/include -I " + root +
        "/src/mutation/include -I " + root + "/src/domain/include -I " + root +
        "/src/driver/include -I " + root + "/src/tspec/include -I " + root +
        "/src/tfm/include -I " + root + "/src/reflect/include "
        "/tmp/stc_system_driver.cpp " +
        root + "/examples/wallet/wallet.cpp " + root + "/src/bit/bit.cpp " + root +
        "/src/mutation/controller.cpp " + root + "/src/mutation/frame.cpp " + root +
        "/src/mutation/descriptor.cpp " + root + "/src/mutation/mutant.cpp " + root +
        "/src/support/strings.cpp "
        "-o /tmp/stc_system_driver > /tmp/stc_system_cc.log 2>&1";
    ASSERT_EQ(std::system(compile.c_str()), 0)
        << "generated system driver failed to compile";
    ASSERT_EQ(std::system(
                  "cd /tmp && rm -f system_result.txt && ./stc_system_driver"),
              0);
    std::ifstream log("/tmp/system_result.txt");
    ASSERT_TRUE(log.good());
    std::stringstream content;
    content << log.rdbuf();
    EXPECT_NE(content.str().find("OK!"), std::string::npos);
    EXPECT_NE(content.str().find("Wallet{"), std::string::npos);
}

}  // namespace
}  // namespace stc::interclass
