// Campaign subsystem tests: deterministic seeding, the JSONL layer,
// the work-stealing pool, and the scheduler's three contracts —
// serial/parallel determinism, resumability without re-execution, and
// well-formed telemetry.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "stc/campaign/jsonl.h"
#include "stc/campaign/result_store.h"
#include "stc/campaign/scheduler.h"
#include "stc/campaign/seed.h"
#include "stc/campaign/telemetry.h"
#include "stc/campaign/thread_pool.h"
#include "test_component.h"

namespace stc::campaign {
namespace {

// ---------------------------------------------------------------- seeding

TEST(Seed, DerivationIsStableAndOrderSensitive) {
    const auto a = derive_item_seed(1, "CObList::AddHead@s0.IndVarBitNeg", "TC0");
    EXPECT_EQ(a, derive_item_seed(1, "CObList::AddHead@s0.IndVarBitNeg", "TC0"));
    EXPECT_NE(a, derive_item_seed(2, "CObList::AddHead@s0.IndVarBitNeg", "TC0"));
    EXPECT_NE(a, derive_item_seed(1, "CObList::AddHead@s0.IndVarBitNeg", "TC1"));
    // Swapping mutant and transaction ids must not collide.
    EXPECT_NE(derive_item_seed(1, "x", "y"), derive_item_seed(1, "y", "x"));
}

TEST(Seed, AdjacentItemsGetUnrelatedSeeds) {
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(derive_item_seed(7, "mutant" + std::to_string(i), "suite"));
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Seed, HexIsFixedWidth) {
    EXPECT_EQ(to_hex(0), "0000000000000000");
    EXPECT_EQ(to_hex(0xdeadbeefULL), "00000000deadbeef");
}

// ------------------------------------------------------------------ jsonl

TEST(Jsonl, RoundTripsEveryValueKind) {
    JsonObject o;
    o.set("s", std::string("hello"))
        .set("neg", static_cast<std::int64_t>(-42))
        .set("big", static_cast<std::uint64_t>(18446744073709551615ULL))
        .set("pi", 3.25)
        .set("yes", true)
        .set("no", false);
    const auto parsed = JsonObject::parse(o.to_line());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->get_string("s"), "hello");
    EXPECT_EQ(parsed->get_int("neg"), -42);
    EXPECT_EQ(parsed->get_uint("big"), 18446744073709551615ULL);
    EXPECT_EQ(parsed->get_double("pi"), 3.25);
    EXPECT_EQ(parsed->get_bool("yes"), true);
    EXPECT_EQ(parsed->get_bool("no"), false);
    // Re-rendering the parsed object reproduces the line exactly.
    EXPECT_EQ(parsed->to_line(), o.to_line());
}

TEST(Jsonl, EscapesHostileStrings) {
    JsonObject o;
    const std::string hostile = "a\"b\\c\nd\te\x01f";
    o.set("k", hostile);
    const std::string line = o.to_line();
    EXPECT_EQ(line.find('\n'), std::string::npos);  // stays one line
    const auto parsed = JsonObject::parse(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->get_string("k"), hostile);
}

TEST(Jsonl, RejectsMalformedLines) {
    EXPECT_FALSE(JsonObject::parse("").has_value());
    EXPECT_FALSE(JsonObject::parse("{\"a\":1").has_value());
    EXPECT_FALSE(JsonObject::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(JsonObject::parse("{\"a\":\"unterminated}").has_value());
    EXPECT_FALSE(JsonObject::parse("{\"a\":1} trailing").has_value());
    EXPECT_FALSE(JsonObject::parse("[1,2]").has_value());
}

TEST(Jsonl, ToleratesNullByDroppingTheField) {
    const auto parsed = JsonObject::parse("{\"a\":null,\"b\":2}");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->has("a"));
    EXPECT_EQ(parsed->get_uint("b"), 2u);
}

TEST(Jsonl, ItemRecordRoundTrips) {
    ItemRecord r;
    r.key = "00ff00ff00ff00ff";
    r.mutant_id = "Counter::Inc@s0.IndVarBitNeg";
    r.item_index = 17;
    r.fate = "killed";
    r.reason = "assertion";
    r.hit_by_suite = true;
    r.killed_by_probe = false;
    r.item_seed = 123456789;
    r.wall_ms = 1.5;
    const auto back = ItemRecord::from_json(r.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, r.key);
    EXPECT_EQ(back->mutant_id, r.mutant_id);
    EXPECT_EQ(back->item_index, 17u);
    EXPECT_EQ(back->fate, "killed");
    EXPECT_EQ(back->reason, "assertion");
    EXPECT_TRUE(back->hit_by_suite);
    EXPECT_FALSE(back->killed_by_probe);
    EXPECT_EQ(back->item_seed, 123456789u);
    EXPECT_DOUBLE_EQ(back->wall_ms, 1.5);
}

TEST(Jsonl, ItemRecordRejectsMissingFields) {
    JsonObject o;
    o.set("key", "abc").set("fate", "killed");
    EXPECT_FALSE(ItemRecord::from_json(o).has_value());
}

// ----------------------------------------------------- store torn tails

TEST(ResultStoreTornTail, TruncationAtEveryByteOffsetNeverFusesRecords) {
    const std::string path = "/tmp/stc_store_torn_tail.jsonl";
    const std::string fingerprint = "feedfacefeedface";

    // Build a reference store, then remember its records and bytes.
    std::remove(path.c_str());
    std::vector<ItemRecord> originals;
    {
        ResultStore store(path, fingerprint);
        for (int i = 0; i < 6; ++i) {
            ItemRecord r;
            r.key = "key" + std::to_string(i);
            r.mutant_id = "Hostile::Segv@s0.IndVarRepReq.ONE";
            r.item_index = static_cast<std::size_t>(i);
            r.fate = "killed";
            r.reason = "crash";
            r.hit_by_suite = true;
            r.killed_by_probe = (i % 2) == 0;
            r.item_seed = 1000u + static_cast<std::uint64_t>(i);
            r.wall_ms = 0.25 * i;
            if (i % 2) r.sandbox = "crash-signal:11";
            store.append(r);
            originals.push_back(r);
        }
    }
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 100u);

    // Chop the file at every byte offset — every possible place a
    // SIGKILL could land mid-append — and reopen.  The invariants:
    // recovery never throws, every surviving record is byte-faithful
    // to an original (a torn line never fuses into a plausible fake),
    // and after recovery the store appends and reloads cleanly.
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        {
            std::ofstream out(path, std::ios::trunc | std::ios::binary);
            out.write(bytes.data(), static_cast<std::streamsize>(cut));
        }
        ResultStore store(path, fingerprint);
        EXPECT_LE(store.loaded(), originals.size());
        std::size_t found = 0;
        for (const ItemRecord& original : originals) {
            const ItemRecord* r = store.find(original.key);
            if (r == nullptr) continue;
            ++found;
            EXPECT_EQ(r->mutant_id, original.mutant_id);
            EXPECT_EQ(r->item_index, original.item_index);
            EXPECT_EQ(r->fate, original.fate);
            EXPECT_EQ(r->reason, original.reason);
            EXPECT_EQ(r->hit_by_suite, original.hit_by_suite);
            EXPECT_EQ(r->killed_by_probe, original.killed_by_probe);
            EXPECT_EQ(r->item_seed, original.item_seed);
            EXPECT_DOUBLE_EQ(r->wall_ms, original.wall_ms);
            EXPECT_EQ(r->sandbox, original.sandbox);
        }
        EXPECT_EQ(found, store.loaded());
        EXPECT_LE(store.dropped(), 1u);  // at most the one torn line

        // The recovered store must be appendable and then reload with
        // nothing further dropped: the rewrite really fixed the file.
        ItemRecord extra;
        extra.key = "extra";
        extra.mutant_id = "M";
        extra.item_index = 99;
        extra.fate = "alive";
        extra.reason = "none";
        extra.hit_by_suite = false;
        store.append(extra);

        ResultStore reopened(path, fingerprint);
        EXPECT_EQ(reopened.dropped(), 0u);
        EXPECT_EQ(reopened.loaded(), store.loaded() + 1);
        ASSERT_NE(reopened.find("extra"), nullptr);
        EXPECT_EQ(reopened.find("extra")->fate, "alive");
    }
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
    const std::size_t n = 100;
    std::vector<std::atomic<int>> executed(n);
    WorkStealingPool pool(4);
    std::vector<WorkStealingPool::Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
        tasks.push_back([&executed, i](const WorkerContext&) {
            executed[i].fetch_add(1);
        });
    }
    pool.run(std::move(tasks));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(executed[i].load(), 1) << i;
}

TEST(ThreadPool, StealsFromUnbalancedShards) {
    // Worker 0's shard gets all the slow tasks (round-robin deal with 2
    // workers: even indices).  Worker 1 finishes early and must steal.
    WorkStealingPool pool(2);
    std::vector<WorkStealingPool::Task> tasks;
    std::atomic<int> done{0};
    for (std::size_t i = 0; i < 16; ++i) {
        const bool slow = i % 2 == 0;
        tasks.push_back([&done, slow](const WorkerContext&) {
            if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    }
    pool.run(std::move(tasks));
    EXPECT_EQ(done.load(), 16);
    // Stealing is timing-dependent on a 1-core host, so the steal count
    // itself is not asserted — only completion.
}

TEST(ThreadPool, SingleWorkerRunsInlineInOrder) {
    WorkStealingPool pool(1);
    std::vector<std::size_t> order;
    std::vector<WorkStealingPool::Task> tasks;
    for (std::size_t i = 0; i < 10; ++i) {
        tasks.push_back([&order, i](const WorkerContext&) { order.push_back(i); });
    }
    EXPECT_EQ(pool.run(std::move(tasks)), 0u);  // no steals in serial mode
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ZeroWorkersSelectsHardware) {
    EXPECT_EQ(WorkStealingPool(0).workers(),
              WorkStealingPool::hardware_workers());
    EXPECT_GE(WorkStealingPool::hardware_workers(), 1u);
}

// -------------------------------------------------------------- scheduler

class CampaignTest : public ::testing::Test {
protected:
    CampaignTest() : spec_(stc::testing::counter_spec()) {
        registry_.add(stc::testing::counter_binding());
        suite_ = driver::DriverGenerator(spec_).generate();
        driver::GeneratorOptions probe_options;
        probe_options.seed = 999;
        probe_options.cases_per_transaction = 3;
        probe_ = driver::DriverGenerator(spec_, probe_options).generate();
        mutants_ =
            mutation::enumerate_mutants(stc::testing::counter_descriptors(),
                                        "Counter");
    }

    static void expect_same_outcomes(const mutation::MutationRun& a,
                                     const mutation::MutationRun& b) {
        ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
        for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
            EXPECT_EQ(a.outcomes[i].mutant, b.outcomes[i].mutant) << i;
            EXPECT_EQ(a.outcomes[i].fate, b.outcomes[i].fate) << i;
            EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
            EXPECT_EQ(a.outcomes[i].hit_by_suite, b.outcomes[i].hit_by_suite) << i;
            EXPECT_EQ(a.outcomes[i].killed_by_probe, b.outcomes[i].killed_by_probe)
                << i;
        }
    }

    [[nodiscard]] CampaignResult run_campaign(CampaignOptions options,
                                              bool with_probe = true) const {
        const CampaignScheduler scheduler(registry_, std::move(options));
        return scheduler.run(suite_, mutants_, with_probe ? &probe_ : nullptr);
    }

    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    driver::TestSuite suite_;
    driver::TestSuite probe_;
    std::vector<mutation::Mutant> mutants_;
};

TEST_F(CampaignTest, ParallelFatesMatchTheSerialEngine) {
    // The ground truth: the untouched serial engine.
    const mutation::MutationEngine engine(registry_);
    const mutation::MutationRun serial = engine.run(suite_, mutants_, &probe_);

    CampaignOptions serial_options;
    serial_options.jobs = 1;
    const CampaignResult one = run_campaign(serial_options);

    CampaignOptions parallel_options;
    parallel_options.jobs = 4;
    const CampaignResult four = run_campaign(parallel_options);

    EXPECT_TRUE(one.run.baseline_clean);
    expect_same_outcomes(serial, one.run);
    expect_same_outcomes(serial, four.run);
    EXPECT_EQ(one.fingerprint, four.fingerprint);
    EXPECT_EQ(four.stats.workers, 4u);
    EXPECT_EQ(four.stats.executed, mutants_.size());
    EXPECT_DOUBLE_EQ(one.run.score(), four.run.score());
}

TEST_F(CampaignTest, FingerprintTracksEveryCampaignInput) {
    const CampaignScheduler base(registry_, {});
    const std::string fp = base.fingerprint(suite_, mutants_, nullptr);
    EXPECT_EQ(fp, base.fingerprint(suite_, mutants_, nullptr));  // stable

    CampaignOptions reseeded;
    reseeded.seed = 42;
    EXPECT_NE(fp, CampaignScheduler(registry_, reseeded)
                      .fingerprint(suite_, mutants_, nullptr));

    auto fewer = mutants_;
    fewer.pop_back();
    EXPECT_NE(fp, base.fingerprint(suite_, fewer, nullptr));

    EXPECT_NE(fp, base.fingerprint(suite_, mutants_, &probe_));

    CampaignOptions weaker;
    weaker.engine.oracle.use_output_diff = false;
    EXPECT_NE(fp, CampaignScheduler(registry_, weaker)
                      .fingerprint(suite_, mutants_, nullptr));
}

TEST_F(CampaignTest, SharedLogPathIsRejected) {
    CampaignOptions options;
    options.engine.runner.log_path = "/tmp/stc_campaign_shared.log";
    EXPECT_THROW(CampaignScheduler(registry_, options), ContractError);
}

TEST_F(CampaignTest, ResumeSkipsEveryFinishedItem) {
    const std::string store = "/tmp/stc_campaign_resume.jsonl";
    std::remove(store.c_str());

    CampaignOptions options;
    options.jobs = 2;
    options.store_path = store;
    const CampaignResult first = run_campaign(options);
    EXPECT_EQ(first.stats.executed, mutants_.size());
    EXPECT_EQ(first.stats.resumed, 0u);

    // Restart: identical campaign, nothing re-executes, same report.
    const CampaignResult second = run_campaign(options);
    EXPECT_EQ(second.stats.executed, 0u);
    EXPECT_EQ(second.stats.resumed, mutants_.size());
    expect_same_outcomes(first.run, second.run);
    EXPECT_EQ(first.run.killed(), second.run.killed());
}

TEST_F(CampaignTest, InterruptedStoreResumesTheUnfinishedTail) {
    const std::string store = "/tmp/stc_campaign_interrupt.jsonl";
    std::remove(store.c_str());

    CampaignOptions options;
    options.jobs = 2;
    options.store_path = store;
    const CampaignResult full = run_campaign(options);

    // Simulate a mid-campaign kill: keep the header and the first 5
    // records, end with a torn half-written line.
    std::vector<std::string> lines;
    {
        std::ifstream in(store);
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 6u);
    {
        std::ofstream out(store, std::ios::trunc);
        for (std::size_t i = 0; i < 6; ++i) out << lines[i] << '\n';
        out << "{\"key\":\"torn";  // the write the kill interrupted
    }

    const CampaignResult resumed = run_campaign(options);
    EXPECT_EQ(resumed.stats.resumed, 5u);
    EXPECT_EQ(resumed.stats.executed, mutants_.size() - 5u);
    expect_same_outcomes(full.run, resumed.run);
}

TEST_F(CampaignTest, StoreFromADifferentCampaignIsDiscarded) {
    const std::string store = "/tmp/stc_campaign_stale.jsonl";
    std::remove(store.c_str());

    CampaignOptions options;
    options.store_path = store;
    (void)run_campaign(options);

    // Same store file, different campaign seed: nothing may resume.
    CampaignOptions reseeded = options;
    reseeded.seed = 99;
    const CampaignResult fresh = run_campaign(reseeded);
    EXPECT_EQ(fresh.stats.resumed, 0u);
    EXPECT_EQ(fresh.stats.executed, mutants_.size());
}

TEST_F(CampaignTest, TelemetryStreamIsWellFormedJsonl) {
    const std::string trace = "/tmp/stc_campaign_trace.jsonl";
    std::remove(trace.c_str());

    CampaignOptions options;
    options.jobs = 2;
    options.telemetry_path = trace;
    const CampaignResult result = run_campaign(options);

    std::ifstream in(trace);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t starts = 0, finishes = 0, campaign_events = 0;
    std::uint64_t expected_seq = 0;
    std::optional<JsonObject> last;
    while (std::getline(in, line)) {
        const auto parsed = JsonObject::parse(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        ASSERT_TRUE(parsed->get_string("event").has_value()) << line;
        EXPECT_EQ(parsed->get_uint("seq"), expected_seq++) << line;
        const std::string event = *parsed->get_string("event");
        if (event == "item-start") {
            ++starts;
            EXPECT_TRUE(parsed->has("worker")) << line;
            EXPECT_TRUE(parsed->has("queue")) << line;
        } else if (event == "item-finish") {
            ++finishes;
            EXPECT_TRUE(parsed->get_string("fate").has_value()) << line;
            EXPECT_TRUE(parsed->get_string("reason").has_value()) << line;
            EXPECT_TRUE(parsed->has("wall_ms")) << line;
            EXPECT_TRUE(parsed->has("item_seed")) << line;
        } else if (event == "campaign-start" || event == "campaign-end") {
            ++campaign_events;
        }
        last = parsed;
    }
    EXPECT_EQ(starts, mutants_.size());
    EXPECT_EQ(finishes, mutants_.size());
    EXPECT_EQ(campaign_events, 2u);

    // The final event is the summary, and it agrees with the run.
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->get_string("event"), "campaign-end");
    EXPECT_EQ(last->get_uint("killed"), result.run.killed());
    EXPECT_EQ(last->get_uint("items"), mutants_.size());
    EXPECT_EQ(last->get_double("score"), result.run.score());
}

TEST_F(CampaignTest, ResumedCampaignAppendsTelemetryInsteadOfTruncating) {
    const std::string store = "/tmp/stc_campaign_resume_tel_store.jsonl";
    const std::string telemetry = "/tmp/stc_campaign_resume_tel.jsonl";
    std::remove(store.c_str());
    std::remove(telemetry.c_str());

    CampaignOptions options;
    options.store_path = store;
    options.telemetry_path = telemetry;
    (void)run_campaign(options);

    std::size_t first_lines = 0;
    {
        std::ifstream in(telemetry);
        std::string line;
        while (std::getline(in, line)) ++first_lines;
    }
    ASSERT_GT(first_lines, 0u);

    // Re-run the identical campaign: everything resumes from the store,
    // and the telemetry of the first generation must survive — the file
    // opens in append mode, gaining a second campaign-start.
    (void)run_campaign(options);

    std::size_t campaign_starts = 0, resumes = 0, total_lines = 0;
    std::ifstream in(telemetry);
    std::string line;
    while (std::getline(in, line)) {
        ++total_lines;
        const auto parsed = JsonObject::parse(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        const auto event = parsed->get_string("event");
        if (event == "campaign-start") ++campaign_starts;
        if (event == "item-resumed") ++resumes;
    }
    EXPECT_GT(total_lines, first_lines);
    EXPECT_EQ(campaign_starts, 2u);
    EXPECT_EQ(resumes, mutants_.size());

    // Without a store (nothing to resume), the same telemetry path
    // truncates: one generation only.
    CampaignOptions fresh;
    fresh.telemetry_path = telemetry;
    (void)run_campaign(fresh);
    campaign_starts = 0;
    std::ifstream again(telemetry);
    while (std::getline(again, line)) {
        const auto parsed = JsonObject::parse(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        if (parsed->get_string("event") == "campaign-start") ++campaign_starts;
    }
    EXPECT_EQ(campaign_starts, 1u);
}

TEST_F(CampaignTest, ObservabilityDoesNotChangeFatesAndRecordsSpans) {
    CampaignOptions plain;
    plain.jobs = 2;
    const CampaignResult baseline = run_campaign(plain);

    CampaignOptions observed;
    observed.jobs = 2;
    observed.obs.tracer = obs::Tracer::make();
    observed.obs.metrics = obs::Metrics::make();
    const CampaignResult traced = run_campaign(observed);

    // The determinism contract survives instrumentation.
    expect_same_outcomes(baseline.run, traced.run);
    EXPECT_EQ(baseline.fingerprint, traced.fingerprint);

    // The trace holds the whole span hierarchy of the campaign.
    std::set<std::string> categories;
    for (const auto& event : observed.obs.tracer.events()) {
        categories.insert(event.category);
    }
    for (const char* expected :
         {"phase", "suite-run", "test-case", "method-call", "oracle-compare",
          "mutant-evaluation"}) {
        EXPECT_EQ(categories.count(expected), 1u) << expected;
    }
    // Invariant evaluations are a counter, not spans (they ran once per
    // method call and dominated trace volume).
    EXPECT_EQ(categories.count("invariant-check"), 0u);

    // And the metrics agree with the run's own accounting.
    const auto& metrics = observed.obs.metrics;
    EXPECT_EQ(metrics.counter("campaign.items"), mutants_.size());
    EXPECT_EQ(metrics.counter("campaign.executed"), mutants_.size());
    EXPECT_EQ(metrics.counter("mutation.fate.killed"), traced.run.killed());
    EXPECT_GT(metrics.counter("runner.method_calls"), 0u);
    EXPECT_GT(metrics.counter("bit.assertions_checked"), 0u);
    bool saw_eval_histogram = false;
    for (const auto& h : metrics.histograms()) {
        if (h.name == "mutation.eval_ms") {
            saw_eval_histogram = true;
            EXPECT_GE(h.count, mutants_.size());
        }
    }
    EXPECT_TRUE(saw_eval_histogram);
}

TEST_F(CampaignTest, TelemetrySinkToStreamIsShared) {
    std::ostringstream os;
    TelemetrySink sink = TelemetrySink::to_stream(os);
    TelemetrySink copy = sink;  // copies share the sequence counter
    sink.emit(JsonObject().set("event", "a"));
    copy.emit(JsonObject().set("event", "b"));
    EXPECT_EQ(sink.count(), 2u);
    std::istringstream in(os.str());
    std::string line;
    std::uint64_t seq = 0;
    while (std::getline(in, line)) {
        const auto parsed = JsonObject::parse(line);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->get_uint("seq"), seq++);
    }
    EXPECT_EQ(seq, 2u);
}

// ------------------------------------------------- string round-trips

TEST(FateStrings, RoundTrip) {
    using mutation::MutantFate;
    for (const MutantFate fate :
         {MutantFate::Killed, MutantFate::Alive, MutantFate::EquivalentPresumed,
          MutantFate::NotCovered}) {
        EXPECT_EQ(mutation::fate_from_string(mutation::to_string(fate)), fate);
    }
    EXPECT_FALSE(mutation::fate_from_string("zombie").has_value());

    using oracle::KillReason;
    // Exhaustive over the declared enumeration, so adding a reason (as
    // IllegalQuiescence was) without its string breaks here, not in a
    // resume file.
    std::set<std::string> names;
    for (const KillReason reason : oracle::kAllKillReasons) {
        const char* text = oracle::to_string(reason);
        EXPECT_TRUE(names.insert(text).second) << text;
        EXPECT_EQ(oracle::kill_reason_from_string(text), reason);
    }
    EXPECT_EQ(names.size(), std::size(oracle::kAllKillReasons));
    EXPECT_EQ(names.count("illegal-quiescence"), 1u);
    EXPECT_FALSE(oracle::kill_reason_from_string("boredom").has_value());
}

TEST(ResultStoreFile, EveryKillReasonSurvivesResume) {
    // One record per kill reason through the JSONL store's write → crash
    // → reopen cycle: a reason the resume path cannot parse would
    // silently re-execute the item (or worse, mis-fate it).
    const std::string path = "/tmp/stc_store_reasons_" +
                             std::to_string(getpid()) + ".jsonl";
    std::remove(path.c_str());
    {
        ResultStore store(path, "fp-reasons");
        std::size_t index = 0;
        for (const oracle::KillReason reason : oracle::kAllKillReasons) {
            ItemRecord r;
            r.key = "k" + std::to_string(index);
            r.mutant_id = "Wallet::Deposit@s" + std::to_string(index);
            r.item_index = index++;
            r.fate = reason == oracle::KillReason::None ? "alive" : "killed";
            r.reason = oracle::to_string(reason);
            r.hit_by_suite = true;
            store.append(r);
        }
    }
    ResultStore reopened(path, "fp-reasons");
    EXPECT_EQ(reopened.loaded(), std::size(oracle::kAllKillReasons));
    EXPECT_EQ(reopened.dropped(), 0u);
    std::size_t index = 0;
    for (const oracle::KillReason reason : oracle::kAllKillReasons) {
        const ItemRecord* r = reopened.find("k" + std::to_string(index++));
        ASSERT_NE(r, nullptr) << oracle::to_string(reason);
        EXPECT_EQ(oracle::kill_reason_from_string(r->reason), reason);
    }
    std::remove(path.c_str());
}

}  // namespace
}  // namespace stc::campaign
