// End-to-end tests of the `concat` command-line tool: each subcommand is
// exercised against a t-spec file on disk, checking exit codes and
// output artifacts.  Skipped when the binary location is not exported by
// the test harness.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "product_component.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/fuzz/corpus.h"
#include "stc/obs/trace.h"
#include "test_paths.h"

namespace {

class CliTest : public ::testing::Test {
protected:
    void SetUp() override {
        binary_ = std::string(STC_BUILD_DIR) + "/tools/concat";
        std::ifstream probe(binary_);
        if (!probe.good()) GTEST_SKIP() << "concat binary not built";

        // Process-unique path: ctest runs these cases as parallel
        // processes, and concurrent writers of one shared file produce
        // torn reads in whoever parses it mid-rewrite.
        tspec_path_ = "/tmp/stc_cli_product_" + std::to_string(getpid()) +
                      ".tspec";
        std::ofstream out(tspec_path_);
        out << stc::examples::product_tspec_text();
    }

    /// Run the CLI; returns the exit code, captures stdout into `path`.
    int run(const std::string& args, const std::string& redirect = {}) const {
        std::string cmd = binary_ + " " + args;
        if (!redirect.empty()) cmd += " > " + redirect + " 2>&1";
        else cmd += " > /dev/null 2>&1";
        const int status = std::system(cmd.c_str());
        return status == -1 ? -1 : WEXITSTATUS(status);
    }

    static std::string slurp(const std::string& path) {
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    std::string binary_;
    std::string tspec_path_;
};

TEST_F(CliTest, ValidateAcceptsTheProductSpec) {
    EXPECT_EQ(run("validate " + tspec_path_, "/tmp/stc_cli_validate.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_validate.out");
    EXPECT_NE(out.find("Product: valid"), std::string::npos);
}

TEST_F(CliTest, ValidateRejectsBrokenSpec) {
    const std::string bad = "/tmp/stc_cli_bad.tspec";
    {
        std::ofstream out(bad);
        out << "Class ('X', No, <empty>, <empty>)\n"
               "Method (m1, 'X', <empty>, constructor, 0)\n"
               "Node (n1, Yes, 1, [m1, mZZZ])\n"  // dangling method
               "Edge (n1, n1)\n";
    }
    EXPECT_EQ(run("validate " + bad, "/tmp/stc_cli_validate_bad.out"), 1);
    EXPECT_NE(slurp("/tmp/stc_cli_validate_bad.out").find("INVALID"),
              std::string::npos);
}

TEST_F(CliTest, ParseErrorsExitNonZero) {
    const std::string garbage = "/tmp/stc_cli_garbage.tspec";
    {
        std::ofstream out(garbage);
        out << "Class ('X' missing commas)";
    }
    EXPECT_EQ(run("validate " + garbage), 1);
    EXPECT_EQ(run("validate /tmp/definitely_not_there.tspec"), 1);
}

TEST_F(CliTest, PrintRoundTrips) {
    ASSERT_EQ(run("print " + tspec_path_ + " -o /tmp/stc_cli_printed.tspec",
                  "/tmp/stc_cli_print.log"),
              0);
    // The printed spec re-validates cleanly.
    EXPECT_EQ(run("validate /tmp/stc_cli_printed.tspec"), 0);
}

TEST_F(CliTest, DotEmitsGraphviz) {
    ASSERT_EQ(run("dot " + tspec_path_, "/tmp/stc_cli_dot.out"), 0);
    const std::string dot = slurp("/tmp/stc_cli_dot.out");
    EXPECT_NE(dot.find("digraph tfm {"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST_F(CliTest, TransactionsListsPaths) {
    ASSERT_EQ(run("transactions " + tspec_path_ + " --max-visits 1",
                  "/tmp/stc_cli_tx.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_tx.out");
    EXPECT_NE(out.find("n2 -> n8 -> n10 -> n11"), std::string::npos);
    EXPECT_NE(out.find("transaction(s) selected"), std::string::npos);
}

TEST_F(CliTest, SuiteOutputLoadsBack) {
    ASSERT_EQ(run("suite " + tspec_path_ +
                      " --seed 7 --max-visits 1 -o /tmp/stc_cli_suite.txt",
                  "/tmp/stc_cli_suite.log"),
              0);
    std::ifstream in("/tmp/stc_cli_suite.txt");
    const auto suite = stc::driver::load_suite(in);
    EXPECT_EQ(suite.class_name, "Product");
    EXPECT_EQ(suite.seed, 7u);
    EXPECT_GT(suite.size(), 0u);
}

TEST_F(CliTest, CriterionShrinksTheSuite) {
    ASSERT_EQ(run("suite " + tspec_path_ + " -o /tmp/stc_cli_all.txt"), 0);
    ASSERT_EQ(run("suite " + tspec_path_ +
                  " --criterion all-nodes -o /tmp/stc_cli_nodes.txt"),
              0);
    std::ifstream all_in("/tmp/stc_cli_all.txt");
    std::ifstream nodes_in("/tmp/stc_cli_nodes.txt");
    EXPECT_LT(stc::driver::load_suite(nodes_in).size(),
              stc::driver::load_suite(all_in).size());
}

TEST_F(CliTest, DescribeSummarizesTheSpec) {
    ASSERT_EQ(run("describe " + tspec_path_, "/tmp/stc_cli_desc.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_desc.out");
    EXPECT_NE(out.find("class Product"), std::string::npos);
    EXPECT_NE(out.find("m6  UpdateQty(range q)"), std::string::npos);
    EXPECT_NE(out.find("[constructor]"), std::string::npos);
    EXPECT_NE(out.find("test model: 11 node(s), 17 link(s)"), std::string::npos);
}

TEST_F(CliTest, CoverageReportsRatios) {
    ASSERT_EQ(run("coverage " + tspec_path_, "/tmp/stc_cli_cov.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_cov.out");
    EXPECT_NE(out.find("node coverage: 11/11"), std::string::npos);
    EXPECT_NE(out.find("link coverage: 17/17"), std::string::npos);

    ASSERT_EQ(run("coverage " + tspec_path_ + " --criterion all-nodes",
                  "/tmp/stc_cli_cov_nodes.out"),
              0);
    EXPECT_NE(slurp("/tmp/stc_cli_cov_nodes.out").find("criterion: all-nodes"),
              std::string::npos);
}

TEST_F(CliTest, GenEmitsDriverSource) {
    ASSERT_EQ(run("gen " + tspec_path_ +
                      " --include product.h --using stc::examples --log R.txt"
                      " --max-visits 1 -o /tmp/stc_cli_driver.cpp",
                  "/tmp/stc_cli_gen.log"),
              0);
    const std::string src = slurp("/tmp/stc_cli_driver.cpp");
    EXPECT_NE(src.find("#include \"product.h\""), std::string::npos);
    EXPECT_NE(src.find("using namespace stc::examples;"), std::string::npos);
    EXPECT_NE(src.find("\"R.txt\""), std::string::npos);
    EXPECT_NE(src.find("int main() {"), std::string::npos);
    EXPECT_NE(src.find("tester_supplied_Provider"), std::string::npos);
}

TEST_F(CliTest, StatesFlagEmitsEntryVariants) {
    const std::string stateful = "/tmp/stc_cli_stateful.tspec";
    {
        std::ofstream out(stateful);
        out << "Class ('S', No, <empty>, <empty>)\n"
               "State ('empty')\n"
               "Method (m1, 'S', <empty>, constructor, 0)\n"
               "Method (m2, '~S', <empty>, destructor, 0)\n"
               "Method (m3, 'f', <empty>, new, 0)\n"
               "Node (n1, Yes, 1, [m1])\n"
               "Node (n2, No, 1, [m3])\n"
               "Node (n3, No, 0, [m2])\n"
               "Edge (n1, n2)\nEdge (n2, n3)\n";
    }
    ASSERT_EQ(run("suite " + stateful + " -o /tmp/stc_cli_plain_suite.txt"), 0);
    ASSERT_EQ(run("suite " + stateful + " --states -o /tmp/stc_cli_state_suite.txt"),
              0);
    std::ifstream plain_in("/tmp/stc_cli_plain_suite.txt");
    std::ifstream stateful_in("/tmp/stc_cli_state_suite.txt");
    const auto plain = stc::driver::load_suite(plain_in);
    const auto with_states = stc::driver::load_suite(stateful_in);
    EXPECT_EQ(with_states.size(), plain.size() * 2);
}

TEST_F(CliTest, ReplanClassifiesAFrozenSuite) {
    // Freeze a suite of release 1, then replan against a release whose
    // UpdateQty (m6) changed its domain and whose RemoveProduct (m11)
    // disappeared.
    ASSERT_EQ(run("suite " + tspec_path_ + " -o /tmp/stc_cli_frozen.txt"), 0);

    std::string v2 = stc::examples::product_tspec_text();
    // Widen the UpdateQty domain.
    const std::string old_line = "Parameter (m6, 'q', range, 0, 99999)";
    const std::string new_line = "Parameter (m6, 'q', range, 0, 999999)";
    v2.replace(v2.find(old_line), old_line.size(), new_line);
    {
        std::ofstream out("/tmp/stc_cli_v2.tspec");
        out << v2;
    }

    ASSERT_EQ(run("replan " + tspec_path_ +
                      " --new /tmp/stc_cli_v2.tspec --frozen /tmp/stc_cli_frozen.txt"
                      " -o /tmp/stc_cli_stillvalid.txt",
                  "/tmp/stc_cli_replan.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_replan.out");
    EXPECT_NE(out.find("m6: domain-changed"), std::string::npos);
    EXPECT_NE(out.find("regenerate:"), std::string::npos);

    // The still-valid subset loads back and is smaller than the original.
    std::ifstream sv("/tmp/stc_cli_stillvalid.txt");
    const auto still_valid = stc::driver::load_suite(sv);
    std::ifstream fr("/tmp/stc_cli_frozen.txt");
    const auto frozen = stc::driver::load_suite(fr);
    EXPECT_LT(still_valid.size(), frozen.size());
    EXPECT_GT(still_valid.size(), 0u);
}

TEST_F(CliTest, ReplanRequiresItsOptions) {
    EXPECT_EQ(run("replan " + tspec_path_), 2);
}

TEST_F(CliTest, BadUsageExits2) {
    EXPECT_EQ(run(""), 2);
    EXPECT_EQ(run("frobnicate " + tspec_path_), 2);
    EXPECT_EQ(run("suite " + tspec_path_ + " --criterion bogus"), 2);
}

TEST_F(CliTest, UnknownFlagsNameTheFlagAndExit2) {
    // A flag another subcommand owns is still unknown here.
    EXPECT_EQ(run("validate " + tspec_path_ + " --jobs 4",
                  "/tmp/stc_cli_badflag.out"),
              2);
    const std::string out = slurp("/tmp/stc_cli_badflag.out");
    EXPECT_NE(out.find("'--jobs'"), std::string::npos);
    EXPECT_NE(out.find("validate"), std::string::npos);

    EXPECT_EQ(run("suite " + tspec_path_ + " --frozen x"), 2);
    EXPECT_EQ(run("stats /tmp/whatever.jsonl --seed 1"), 2);
    EXPECT_EQ(run("campaign coblist --totally-made-up"), 2);
}

TEST_F(CliTest, TraceOutWritesAChromeTraceOnAnySubcommand) {
    const std::string trace = "/tmp/stc_cli_suite_trace.json";
    std::remove(trace.c_str());
    ASSERT_EQ(run("suite " + tspec_path_ + " --trace-out " + trace +
                  " -o /tmp/stc_cli_traced_suite.txt"),
              0);

    std::ifstream in(trace);
    ASSERT_TRUE(in.good());
    const auto events = stc::obs::parse_chrome_trace(in);
    ASSERT_TRUE(events.has_value());
    bool saw_generate = false;
    for (const auto& e : *events) {
        if (e.category == "phase" && e.name == "generate-suite") {
            saw_generate = true;
        }
    }
    EXPECT_TRUE(saw_generate);
}

TEST_F(CliTest, MetricsOutPicksFormatFromTheExtension) {
    ASSERT_EQ(run("suite " + tspec_path_ +
                  " --metrics-out /tmp/stc_cli_metrics.txt"
                  " -o /tmp/stc_cli_m_suite.txt"),
              0);
    const std::string text = slurp("/tmp/stc_cli_metrics.txt");
    EXPECT_NE(text.find("generator.value_draws"), std::string::npos);
    EXPECT_NE(text.find("| counter"), std::string::npos);  // text table

    ASSERT_EQ(run("suite " + tspec_path_ +
                  " --metrics-out /tmp/stc_cli_metrics.json"
                  " -o /tmp/stc_cli_m_suite.txt"),
              0);
    const std::string json = slurp("/tmp/stc_cli_metrics.json");
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"generator.value_draws\""), std::string::npos);
}

TEST_F(CliTest, CampaignTraceCoversThePipelineAndStatsSummarizesIt) {
    const std::string trace = "/tmp/stc_cli_campaign_trace.json";
    const std::string telemetry = "/tmp/stc_cli_campaign_tel.jsonl";
    std::remove(trace.c_str());
    std::remove(telemetry.c_str());

    ASSERT_EQ(run("campaign coblist --jobs 2 --trace-out " + trace +
                      " --telemetry-out " + telemetry +
                      " -o /tmp/stc_cli_campaign_rep.txt",
                  "/tmp/stc_cli_campaign.log"),
              0);

    // The trace is the emitted Chrome subset with the span taxonomy the
    // acceptance criteria name: phase, test case, method call, mutant
    // evaluation.
    std::ifstream in(trace);
    ASSERT_TRUE(in.good());
    const auto events = stc::obs::parse_chrome_trace(in);
    ASSERT_TRUE(events.has_value());
    std::set<std::string> categories;
    for (const auto& e : *events) categories.insert(e.category);
    for (const char* expected :
         {"phase", "test-case", "method-call", "mutant-evaluation"}) {
        EXPECT_EQ(categories.count(expected), 1u) << expected;
    }

    // `concat stats` renders the telemetry into the run summary.
    ASSERT_EQ(run("stats " + telemetry + " --top 3", "/tmp/stc_cli_stats.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_stats.out");
    EXPECT_NE(out.find("campaign: CObList"), std::string::npos);
    EXPECT_NE(out.find("| fate"), std::string::npos);
    EXPECT_NE(out.find("| kill reason"), std::string::npos);
    EXPECT_NE(out.find("| slowest item"), std::string::npos);
    EXPECT_NE(out.find("| worker"), std::string::npos);

    EXPECT_EQ(run("stats /tmp/stc_cli_no_such_telemetry.jsonl"), 1);
}

// ---------------------------------------------------------------- fuzz

// The ISSUE's seeded fault: this mutant nulls AddHead's required
// parameter check and crashes on the first AddHead of any transaction.
const char* const kSeededFault = "CObList::AddHead@s0.IndVarRepReq.NULL";

TEST_F(CliTest, FuzzSeedStabilityIsByteIdentical) {
    // Two same-seed runs must agree byte-for-byte: report, coverage
    // counters, and corpus contents.  Corpus directories differ on
    // purpose — filenames, not paths, appear in the report.
    const std::string base = "/tmp/stc_cli_fuzz_stab";
    std::system(("rm -rf " + base + "_a " + base + "_b").c_str());
    const std::string args =
        std::string("fuzz coblist --iters 150 --seed 11 --mutant ") +
        kSeededFault;
    ASSERT_EQ(run(args + " --corpus " + base + "_a", base + "_a.out"), 0);
    ASSERT_EQ(run(args + " --corpus " + base + "_b", base + "_b.out"), 0);
    const std::string report = slurp(base + "_a.out");
    EXPECT_EQ(report, slurp(base + "_b.out"));
    EXPECT_NE(report.find("findings:"), std::string::npos);

    const auto corpus_a = stc::fuzz::list_corpus(base + "_a");
    const auto corpus_b = stc::fuzz::list_corpus(base + "_b");
    ASSERT_EQ(corpus_a.size(), corpus_b.size());
    ASSERT_FALSE(corpus_a.empty());
    for (std::size_t i = 0; i < corpus_a.size(); ++i) {
        EXPECT_EQ(slurp(corpus_a[i]), slurp(corpus_b[i]));
    }
}

TEST_F(CliTest, FuzzFindsTheSeededFaultAndShrinksToFiveCallsOrFewer) {
    // The PR's acceptance gate: fuzzing against the seeded fault finds a
    // failing case and reduces it to a <=5-call reproducer that replays
    // to the same verdict.
    const std::string dir = "/tmp/stc_cli_fuzz_accept";
    std::system(("rm -rf " + dir).c_str());
    ASSERT_EQ(run(std::string("fuzz coblist --iters 200 --seed 11 --mutant ") +
                      kSeededFault + " --corpus " + dir,
                  dir + ".out"),
              0);
    const auto entries = stc::fuzz::list_corpus(dir);
    ASSERT_FALSE(entries.empty());
    const auto entry = stc::fuzz::load_entry_file(entries.front());
    EXPECT_LE(entry.reproducer().calls.size(), 5u);
    EXPECT_EQ(entry.mutant_id, kSeededFault);
    EXPECT_NE(entry.verdict, stc::driver::Verdict::Pass);

    // `concat shrink` re-verifies the persisted entry end to end.
    EXPECT_EQ(run("shrink coblist --case " + entries.front(),
                  dir + "_reshrink.out"),
              0);
}

TEST_F(CliTest, FuzzTelemetryListsEveryVerdictKindInStats) {
    const std::string telemetry = "/tmp/stc_cli_fuzz_tel.jsonl";
    std::remove(telemetry.c_str());
    ASSERT_EQ(run("fuzz coblist --iters 60 --seed 3 --telemetry-out " +
                      telemetry,
                  "/tmp/stc_cli_fuzz_tel.out"),
              0);
    ASSERT_EQ(run("stats " + telemetry, "/tmp/stc_cli_fuzz_stats.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_fuzz_stats.out");
    EXPECT_NE(out.find("fuzz: CObList"), std::string::npos);
    // Zero-count kinds stay visible — the fate table must not hide
    // contract-not-enforced or setup-error just because they never fired.
    for (const stc::driver::Verdict v : stc::driver::kAllVerdicts) {
        EXPECT_NE(out.find(stc::driver::to_string(v)), std::string::npos)
            << stc::driver::to_string(v);
    }
}

TEST_F(CliTest, FuzzAndShrinkRejectBadInvocations) {
    EXPECT_EQ(run("fuzz coblist --mutant No::Such@mutant"), 2);
    EXPECT_EQ(run("fuzz nonesuch --iters 5"), 2);
    EXPECT_EQ(run("fuzz coblist --top 3"), 2);  // stats-only flag
    EXPECT_EQ(run("shrink coblist"), 2);        // --case is required
    EXPECT_EQ(run("suite " + tspec_path_ + " --iters 5"), 2);  // fuzz-only flag
}

// ---------------------------------------------------------------- model

TEST_F(CliTest, ModelCampaignReportsOracleStrengthAndStatsKeepZeroRows) {
    const std::string rep = "/tmp/stc_cli_model_rep.txt";
    const std::string telemetry = "/tmp/stc_cli_model_tel.jsonl";
    std::remove(rep.c_str());
    std::remove(telemetry.c_str());

    ASSERT_EQ(run("campaign coblist --model --jobs 2 --telemetry-out " +
                      telemetry + " -o " + rep,
                  "/tmp/stc_cli_model_camp.log"),
              0);
    const std::string report = slurp(rep);
    EXPECT_NE(report.find("model-divergence="), std::string::npos);
    EXPECT_NE(report.find("oracle strength: killed-only-by-model="),
              std::string::npos);
    // The acceptance mutant is killed by the model alone and audited so.
    EXPECT_NE(report.find("(model-only)"), std::string::npos);
    EXPECT_EQ(report.find("killed-only-by-model=0"), std::string::npos);

    // `concat stats` keeps zero-count kill reasons visible (regression:
    // the table used to hide kinds that never fired — a detector that
    // killed nothing looked like a detector that didn't exist) and adds
    // the oracle-strength breakdown for model campaigns.
    ASSERT_EQ(run("stats " + telemetry, "/tmp/stc_cli_model_stats.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_model_stats.out");
    for (const char* reason :
         {"crash", "assertion", "illegal-quiescence", "model-divergence",
          "output-diff", "manual-oracle"}) {
        EXPECT_NE(out.find(reason), std::string::npos) << reason;
    }
    EXPECT_NE(out.find("| oracle strength"), std::string::npos);
    EXPECT_NE(out.find("killed only by model"), std::string::npos);
}

TEST_F(CliTest, RunSubcommandExecutesAndFlagsDivergence) {
    // Clean conformance run: every generated case passes under the
    // lockstep model.
    ASSERT_EQ(run("run coblist --model", "/tmp/stc_cli_run.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_run.out");
    EXPECT_NE(out.find("run: CObList"), std::string::npos);
    EXPECT_NE(out.find("model oracle"), std::string::npos);
    EXPECT_NE(out.find("verdicts:"), std::string::npos);
    EXPECT_NE(out.find("model-divergence=0"), std::string::npos);

    // Against the model-only mutant the same run exits 1 and names the
    // diverging verdict.
    EXPECT_EQ(run("run coblist --model "
                  "--mutant CObList::RemoveAt@s9.IndVarRepGlob.m_pNodeTail",
                  "/tmp/stc_cli_run_mut.out"),
              1);
    const std::string mutated = slurp("/tmp/stc_cli_run_mut.out");
    EXPECT_NE(mutated.find("model-divergence"), std::string::npos);

    EXPECT_EQ(run("run nonesuch"), 2);
    EXPECT_EQ(run("run coblist --iters 5"), 2);  // fuzz-only flag
    EXPECT_EQ(run("run coblist --mutant No::Such@m"), 2);
}

TEST_F(CliTest, CampaignShrinkCorpusIsIdenticalAcrossJobCounts) {
    const std::string dir1 = "/tmp/stc_cli_camp_corpus1";
    const std::string dir4 = "/tmp/stc_cli_camp_corpus4";
    std::system(("rm -rf " + dir1 + " " + dir4).c_str());
    ASSERT_EQ(run("campaign coblist --jobs 1 --seed 3 --shrink-corpus " + dir1 +
                      " -o /tmp/stc_cli_camp_rep1.txt",
                  "/tmp/stc_cli_camp1.log"),
              0);
    ASSERT_EQ(run("campaign coblist --jobs 4 --seed 3 --shrink-corpus " + dir4 +
                      " -o /tmp/stc_cli_camp_rep4.txt",
                  "/tmp/stc_cli_camp4.log"),
              0);
    EXPECT_EQ(slurp("/tmp/stc_cli_camp_rep1.txt"),
              slurp("/tmp/stc_cli_camp_rep4.txt"));

    const auto corpus1 = stc::fuzz::list_corpus(dir1);
    const auto corpus4 = stc::fuzz::list_corpus(dir4);
    ASSERT_EQ(corpus1.size(), corpus4.size());
    ASSERT_FALSE(corpus1.empty());
    for (std::size_t i = 0; i < corpus1.size(); ++i) {
        EXPECT_EQ(slurp(corpus1[i]), slurp(corpus4[i]));
        // Every persisted reproducer is a loadable, single-case entry.
        const auto entry = stc::fuzz::load_entry_file(corpus1[i]);
        EXPECT_EQ(entry.suite.size(), 1u);
        EXPECT_FALSE(entry.mutant_id.empty());
    }
}

// ----------------------------------------------------------------- kill

TEST_F(CliTest, KillValidatesItsStoreAndGating) {
    const std::string store =
        "/tmp/stc_cli_kill_none_" + std::to_string(getpid()) + ".jsonl";

    // Option gating: the pass is explicit about what it targets.
    EXPECT_EQ(run("kill coblist --resume " + store,
                  "/tmp/stc_cli_kill_noalive.out"),
              2);
    EXPECT_NE(slurp("/tmp/stc_cli_kill_noalive.out").find("--alive"),
              std::string::npos);
    EXPECT_EQ(run("kill coblist --alive"), 2);  // no store named
    EXPECT_EQ(run("kill nonesuch --alive --resume " + store), 2);

    // Assembly gating, both directions (mirrors campaign/fuzz).
    EXPECT_EQ(run("kill shop --alive --resume " + store,
                  "/tmp/stc_cli_kill_asm.out"),
              2);
    EXPECT_NE(slurp("/tmp/stc_cli_kill_asm.out").find("single-class"),
              std::string::npos);
    EXPECT_EQ(run("kill coblist --assembly --alive --resume " + store), 2);

    // A missing store is a hard error that names the store.
    EXPECT_EQ(run("kill coblist --alive --resume " + store,
                  "/tmp/stc_cli_kill_missing.out"),
              2);
    EXPECT_NE(slurp("/tmp/stc_cli_kill_missing.out").find(store),
              std::string::npos);

    // So is one whose header does not parse.
    {
        std::ofstream out(store);
        out << "this is not a result store\n";
    }
    EXPECT_EQ(run("kill coblist --alive --resume " + store), 2);
    std::remove(store.c_str());
}

TEST_F(CliTest, KillRaisesTheStoredScoreAndGuardsTheFingerprint) {
    const std::string base =
        "/tmp/stc_cli_kill_" + std::to_string(getpid());
    const std::string store = base + "_store.jsonl";
    std::remove(store.c_str());

    // A finished model campaign leaves survivors in the store.
    ASSERT_EQ(run("campaign coblist --model --resume " + store +
                      " -o " + base + "_campaign.txt",
                  base + "_campaign.log"),
              0);

    // A store from different campaign options (here: no --model) is
    // rejected by fingerprint, naming the store.
    EXPECT_EQ(run("kill coblist --alive --resume " + store,
                  base + "_mismatch.out"),
              2);
    EXPECT_NE(slurp(base + "_mismatch.out").find("different campaign"),
              std::string::npos);

    // The pass itself verifies killers and raises the stored score.
    ASSERT_EQ(run("kill coblist --alive --model --resume " + store +
                      " -o " + base + "_kill.txt",
                  base + "_kill.log"),
              0);
    const std::string report = slurp(base + "_kill.txt");
    EXPECT_NE(report.find("raised by synthesis: 2"), std::string::npos);
    EXPECT_NE(report.find("score: 94.4% -> 96.0%"), std::string::npos);

    // The rewritten store replays through campaign --resume with the
    // synthesized kills visible.
    ASSERT_EQ(run("campaign coblist --model --resume " + store +
                      " -o " + base + "_resumed.txt",
                  base + "_resumed.log"),
              0);
    const std::string resumed = slurp(base + "_resumed.txt");
    EXPECT_NE(resumed.find("raised by synthesis: 2"), std::string::npos);
    EXPECT_NE(resumed.find("(synthesized)"), std::string::npos);

    // With no survivors left to target, the pass is a clean no-op.
    std::string emptied = slurp(store);
    for (std::string::size_type at = 0;
         (at = emptied.find("\"fate\":\"alive\"", at)) != std::string::npos;) {
        emptied.replace(at, 14, "\"fate\":\"equivalent\"");
    }
    const std::string none = base + "_none.jsonl";
    {
        std::ofstream out(none);
        out << emptied;
    }
    EXPECT_EQ(run("kill coblist --alive --model --resume " + none,
                  base + "_none.out"),
              0);
    EXPECT_NE(slurp(base + "_none.out").find("nothing to kill"),
              std::string::npos);

    std::remove(store.c_str());
    std::remove(none.c_str());
}

// ------------------------------------------------------------- assembly

TEST_F(CliTest, AssembleReportsProductStatsAndRendersArtifacts) {
    const std::string shop =
        std::string(STC_SOURCE_DIR) + "/examples/shop/shop.tspec";
    ASSERT_EQ(run("assemble " + shop, "/tmp/stc_cli_assemble.out"), 0);
    const std::string out = slurp("/tmp/stc_cli_assemble.out");
    EXPECT_NE(out.find("assembly Shop: 4 role(s), 6 wire(s), 5 export(s)"),
              std::string::npos);
    EXPECT_NE(out.find("conceivable tuples: 400"), std::string::npos);
    EXPECT_NE(out.find("hidden wires:"), std::string::npos);
    EXPECT_NE(out.find("product Shop: valid"), std::string::npos);

    ASSERT_EQ(run("assemble " + shop + " --dot",
                  "/tmp/stc_cli_assemble_dot.out"),
              0);
    EXPECT_NE(slurp("/tmp/stc_cli_assemble_dot.out").find("digraph tfm"),
              std::string::npos);

    ASSERT_EQ(run("assemble " + shop + " --transactions --criterion all-links",
                  "/tmp/stc_cli_assemble_tx.out"),
              0);
    EXPECT_NE(
        slurp("/tmp/stc_cli_assemble_tx.out").find("transaction(s) selected"),
        std::string::npos);

    EXPECT_EQ(run("assemble /tmp/definitely_not_there.tspec"), 1);
    EXPECT_EQ(run("assemble " + tspec_path_), 1);  // class t-spec, not assembly
    EXPECT_EQ(run("assemble " + shop + " --jobs 2"), 2);  // campaign-only flag
}

TEST_F(CliTest, AssemblyCampaignKillsCollaborationFaultsTheWalletRunMisses) {
    // The ISSUE's §6 comparison in miniature: the write-through NULL
    // mutants drop ledger bookings silently, survive the intraclass
    // wallet campaign (the pool Ledger is unobserved), and die through
    // the shop assembly's public interface — by illegal quiescence,
    // the ioco output-obligation channel.
    const std::string shop_rep = "/tmp/stc_cli_shop_rep.txt";
    ASSERT_EQ(run("campaign shop --assembly --criterion all-links --jobs 2 "
                  "-o " + shop_rep,
                  "/tmp/stc_cli_shop_camp.log"),
              0);
    const std::string report = slurp(shop_rep);
    EXPECT_NE(report.find("illegal-quiescence="), std::string::npos);
    EXPECT_EQ(report.find("illegal-quiescence=0"), std::string::npos);
    EXPECT_NE(report.find("Wallet::Deposit@s2.IndVarRepReq.NULL  killed  "
                          "[illegal-quiescence]"),
              std::string::npos);
    EXPECT_NE(report.find("Wallet::Withdraw@s3.IndVarRepReq.NULL  killed  "
                          "[illegal-quiescence]"),
              std::string::npos);

    const std::string wallet_rep = "/tmp/stc_cli_wallet_rep.txt";
    ASSERT_EQ(run("campaign wallet --criterion all-links -o " + wallet_rep,
                  "/tmp/stc_cli_wallet_camp.log"),
              0);
    const std::string baseline = slurp(wallet_rep);
    EXPECT_NE(baseline.find("Wallet::Deposit@s2.IndVarRepReq.NULL  alive"),
              std::string::npos);
    EXPECT_NE(baseline.find("Wallet::Withdraw@s3.IndVarRepReq.NULL  alive"),
              std::string::npos);
    EXPECT_NE(baseline.find("illegal-quiescence=0"), std::string::npos);
}

TEST_F(CliTest, AssemblyTargetsRequireTheAssemblyFlag) {
    // Both directions, both entry points: the flag and the target's
    // registered kind must agree before any work (or socket) happens.
    EXPECT_EQ(run("campaign shop", "/tmp/stc_cli_shop_noflag.out"), 2);
    EXPECT_NE(slurp("/tmp/stc_cli_shop_noflag.out").find("--assembly"),
              std::string::npos);
    EXPECT_EQ(run("campaign wallet --assembly"), 2);
    EXPECT_EQ(run("campaign coblist --assembly"), 2);
    EXPECT_EQ(run("dispatch shop --workers 127.0.0.1:1"), 2);
    EXPECT_EQ(run("dispatch sortable --assembly --workers 127.0.0.1:1"), 2);
    // And an unknown target names the registered ones.
    EXPECT_EQ(run("campaign nonesuch", "/tmp/stc_cli_unknown_target.out"), 2);
    const std::string err = slurp("/tmp/stc_cli_unknown_target.out");
    EXPECT_NE(err.find("shop"), std::string::npos);
    EXPECT_NE(err.find("wallet"), std::string::npos);
}

// ------------------------------------------------------- serve/dispatch

TEST_F(CliTest, ServeAndDispatchPoliceTheirFlags) {
    EXPECT_EQ(run("serve --jobs 2"), 2);              // campaign-only flag
    EXPECT_EQ(run("serve --workers 127.0.0.1:1"), 2); // dispatch-only flag
    EXPECT_EQ(run("dispatch coblist --isolate"), 2);  // campaign-only flag
    EXPECT_EQ(run("dispatch coblist --listen 7"), 2); // serve-only flag
    EXPECT_EQ(run("dispatch coblist --bind 0.0.0.0"), 2);  // serve-only flag
    // Keepalive deadlines land in int milliseconds; values past INT_MAX
    // would wrap negative and insta-kill every worker.
    EXPECT_EQ(run("dispatch coblist --workers 127.0.0.1:1 "
                  "--keepalive-ms 2147483648"),
              2);
    EXPECT_EQ(run("dispatch coblist --workers 127.0.0.1:1 "
                  "--dead-after-ms 99999999999"),
              2);
    // A bind address must be a literal IPv4 address.
    EXPECT_EQ(run("serve --listen 0 --bind not-an-address"), 1);
    // --workers is required; a campaign must never silently run local.
    EXPECT_EQ(run("dispatch coblist", "/tmp/stc_cli_dispatch_req.out"), 2);
    EXPECT_NE(slurp("/tmp/stc_cli_dispatch_req.out").find("--workers"),
              std::string::npos);
    // Unknown component fails before any socket work.
    EXPECT_EQ(run("dispatch nonesuch --workers 127.0.0.1:1"), 2);
    // Stray positional operands are usage errors everywhere but stats.
    EXPECT_EQ(run("campaign coblist stray-operand"), 2);
}

TEST_F(CliTest, DispatchFailsCleanlyWhenNoWorkerIsReachable) {
    // Loopback port 1: connection refused.  The coordinator must report
    // the dead fleet as an error (exit 1), not hang or crash.
    EXPECT_EQ(run("dispatch coblist --workers 127.0.0.1:1,127.0.0.1:2",
                  "/tmp/stc_cli_dispatch_dead.out"),
              1);
}

TEST_F(CliTest, StatsAggregatesMultipleTelemetryFiles) {
    // A coordinator stream and a worker-daemon stream of the same
    // 2-item campaign: item 0 appears in both (the dedupe case), the
    // worker file tail is torn mid-write (the SIGKILL case).
    const std::string coord = "/tmp/stc_cli_stats_coord.jsonl";
    const std::string workerf = "/tmp/stc_cli_stats_worker.jsonl";
    {
        std::ofstream out(coord);
        out << R"({"event":"campaign-start","campaign":"fp1","class":"X",)"
            << R"("seed":7,"jobs":2,"mutants":2,"cases":1})" << "\n"
            << R"({"event":"worker-connect","worker":0,"endpoint":"a:1"})"
            << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"assertion","worker":0,)"
            << R"("wall_ms":1.5,"shrunk":false})" << "\n"
            << R"({"event":"item-finish","item":1,"mutant":"m1",)"
            << R"("fate":"alive","reason":"none","worker":1,)"
            << R"("wall_ms":2.5,"shrunk":false})" << "\n";
    }
    {
        std::ofstream out(workerf);
        out << R"({"event":"worker-session","worker":0,"fingerprint":"fp1"})"
            << "\n"
            << R"({"event":"item-finish","item":0,"mutant":"m0",)"
            << R"("fate":"killed","reason":"assertion","worker":0,)"
            << R"("wall_ms":1.5,"shrunk":false})" << "\n"
            << R"({"event":"worker-disconn)";  // torn tail
    }

    ASSERT_EQ(run("stats " + coord + " " + workerf,
                  "/tmp/stc_cli_stats_multi.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_stats_multi.out");
    // Items dedupe by index across the two files: 2, not 3.
    EXPECT_NE(out.find("items: 2 classified"), std::string::npos);
    // Both perspectives tallied on the dispatch line, streams counted.
    EXPECT_NE(out.find("dispatch: 1 worker connect(s)"), std::string::npos);
    EXPECT_NE(out.find("1 serve session(s)"), std::string::npos);
    EXPECT_NE(out.find("2 stream(s)"), std::string::npos);
    // The torn tail was dropped, not fatal.
    EXPECT_NE(out.find("malformed, dropped"), std::string::npos);

    // A single-file invocation keeps the old report shape: no stream
    // count, and no dispatch line for streams without dispatch events.
    ASSERT_EQ(run("stats " + coord, "/tmp/stc_cli_stats_single.out"), 0);
    EXPECT_EQ(slurp("/tmp/stc_cli_stats_single.out").find("stream(s)"),
              std::string::npos);
}

TEST_F(CliTest, StatsJsonEmitsTheMachineReadableSummary) {
    const std::string telemetry = "/tmp/stc_cli_stats_json.jsonl";
    {
        std::ofstream out(telemetry);
        out << R"({"event":"campaign-start","campaign":"fp1","class":"X",)"
            << R"("seed":7,"jobs":2,"mutants":2,"cases":1})" << "\n"
            << R"({"event":"item-finish","item":0,)"
            << R"("mutant":"X::M@s0.IndVarRepReq.NULL","fate":"killed",)"
            << R"("reason":"assertion","worker":0,"wall_ms":1.5,)"
            << R"("shrunk":false})" << "\n"
            << R"({"event":"campaign-end","campaign":"fp1","items":2,)"
            << R"("executed":1,"killed":1,"equivalent":0,"not_covered":0,)"
            << R"("score":1.0,"workers":2,"wall_ms":3.0})" << "\n";
    }
    ASSERT_EQ(run("stats " + telemetry + " --json",
                  "/tmp/stc_cli_stats_json.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_stats_json.out");
    EXPECT_EQ(out.rfind("{\"class\":\"X\"", 0), 0u);  // JSON, not text report
    EXPECT_NE(out.find("\"fates\":{\"killed\":1}"), std::string::npos);
    EXPECT_NE(out.find("\"operator\":\"IndVarRepReq\""), std::string::npos);
    EXPECT_NE(out.find("\"final\":{\"killed\":1"), std::string::npos);
    std::remove(telemetry.c_str());
}

TEST_F(CliTest, StatsFollowRendersSnapshotsAndExitsAtCampaignEnd) {
    // Against an already-complete stream --follow renders at least one
    // snapshot, sees the campaign-end, and exits 0 on its own — the
    // test would hang here if the exit condition broke.
    const std::string telemetry = "/tmp/stc_cli_stats_follow.jsonl";
    {
        std::ofstream out(telemetry);
        out << R"({"event":"campaign-start","campaign":"fp1","class":"X",)"
            << R"("seed":7,"jobs":1,"mutants":1,"cases":1})" << "\n"
            << R"({"event":"item-finish","item":0,)"
            << R"("mutant":"X::M@s0.IndVarRepReq.NULL","fate":"killed",)"
            << R"("reason":"assertion","worker":0,"wall_ms":1.5,)"
            << R"("shrunk":false})" << "\n"
            << R"({"event":"campaign-end","campaign":"fp1","items":1,)"
            << R"("executed":1,"killed":1,"equivalent":0,"not_covered":0,)"
            << R"("score":1.0,"workers":1,"wall_ms":3.0})" << "\n";
    }
    ASSERT_EQ(run("stats --follow " + telemetry,
                  "/tmp/stc_cli_stats_follow.out"),
              0);
    const std::string out = slurp("/tmp/stc_cli_stats_follow.out");
    EXPECT_NE(out.find("follow: X  1/1 item(s)  killed=1"),
              std::string::npos);
    EXPECT_NE(out.find("[campaign complete]"), std::string::npos);

    // --follow is a single-file tail; a second operand is a usage error.
    EXPECT_EQ(run("stats --follow " + telemetry + " " + telemetry), 2);
    std::remove(telemetry.c_str());
}

TEST_F(CliTest, FollowProgressAndJsonFlagsArePerCommand) {
    EXPECT_EQ(run("stats /tmp/x.jsonl --progress"), 2);   // dispatch-only
    EXPECT_EQ(run("stats /tmp/x.jsonl --telemetry-interval-ms 5"), 2);
    EXPECT_EQ(run("dispatch coblist --follow"), 2);       // stats-only
    EXPECT_EQ(run("dispatch coblist --json"), 2);         // stats-only
    EXPECT_EQ(run("campaign coblist --progress"), 2);     // dispatch-only
    EXPECT_EQ(run("serve --follow"), 2);                  // stats-only
}

}  // namespace
