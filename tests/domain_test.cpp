#include <gtest/gtest.h>

#include "stc/domain/domain.h"
#include "stc/support/error.h"

namespace stc::domain {
namespace {

// ------------------------------------------------------------------ Value

TEST(Value, KindsAndAccessors) {
    EXPECT_EQ(Value{}.kind(), ValueKind::Empty);
    EXPECT_TRUE(Value{}.is_empty());
    EXPECT_EQ(Value::make_int(7).as_int(), 7);
    EXPECT_DOUBLE_EQ(Value::make_real(2.5).as_real(), 2.5);
    EXPECT_EQ(Value::make_string("hi").as_string(), "hi");
    int x = 0;
    EXPECT_EQ(Value::make_pointer(&x, "int").as_pointer(), &x);
    EXPECT_EQ(Value::make_object(&x, "Foo").as_object().ptr, &x);
}

TEST(Value, AccessorKindMismatchThrows) {
    EXPECT_THROW((void)Value::make_int(1).as_string(), Error);
    EXPECT_THROW((void)Value::make_string("x").as_int(), Error);
    EXPECT_THROW((void)Value{}.as_pointer(), Error);
}

TEST(Value, AsNumberCoercesIntAndReal) {
    EXPECT_DOUBLE_EQ(Value::make_int(3).as_number(), 3.0);
    EXPECT_DOUBLE_EQ(Value::make_real(0.5).as_number(), 0.5);
    EXPECT_THROW((void)Value::make_string("x").as_number(), Error);
}

TEST(Value, PointerValueAlsoReadableAsObject) {
    int x = 0;
    const Value v = Value::make_pointer(&x, "Provider");
    EXPECT_EQ(v.as_object().ptr, &x);
    EXPECT_EQ(v.as_object().type_name, "Provider");
}

TEST(Value, ToSourceRendersCppLiterals) {
    EXPECT_EQ(Value::make_int(-42).to_source(), "-42");
    EXPECT_EQ(Value::make_string("a\"b").to_source(), "\"a\\\"b\"");
    EXPECT_EQ(Value::make_pointer(nullptr, "P").to_source(), "nullptr");
    // Real literals keep a decimal marker so generated code stays double.
    EXPECT_EQ(Value::make_real(2.0).to_source(), "2.0");
}

TEST(Value, EqualityIsStructural) {
    EXPECT_EQ(Value::make_int(1), Value::make_int(1));
    EXPECT_NE(Value::make_int(1), Value::make_int(2));
    EXPECT_NE(Value::make_int(1), Value::make_real(1.0));
    EXPECT_EQ(Value::make_string("a"), Value::make_string("a"));
}

// ------------------------------------------------------------- IntRange

TEST(IntRangeDomain, SamplesWithinBoundsAndContains) {
    IntRangeDomain d(-5, 5);
    support::Pcg32 rng(1);
    for (int i = 0; i < 500; ++i) {
        const Value v = d.sample(rng);
        EXPECT_TRUE(d.contains(v)) << v.to_display();
    }
    EXPECT_TRUE(d.contains(Value::make_int(-5)));
    EXPECT_TRUE(d.contains(Value::make_int(5)));
    EXPECT_FALSE(d.contains(Value::make_int(6)));
    EXPECT_FALSE(d.contains(Value::make_real(0.0)));
}

TEST(IntRangeDomain, RejectsInvertedBounds) {
    EXPECT_THROW(IntRangeDomain(2, 1), SpecError);
}

TEST(IntRangeDomain, BoundaryValuesIncludeEndsAndZero) {
    IntRangeDomain d(-3, 9);
    const auto b = d.boundary_values();
    auto has = [&](std::int64_t x) {
        for (const auto& v : b) {
            if (v.as_int() == x) return true;
        }
        return false;
    };
    EXPECT_TRUE(has(-3));
    EXPECT_TRUE(has(9));
    EXPECT_TRUE(has(0));
    EXPECT_TRUE(has(-2));
    EXPECT_TRUE(has(8));
}

// ------------------------------------------------------------- RealRange

TEST(RealRangeDomain, SamplesWithinBounds) {
    RealRangeDomain d(0.01, 9999.99);
    support::Pcg32 rng(2);
    for (int i = 0; i < 500; ++i) {
        EXPECT_TRUE(d.contains(d.sample(rng)));
    }
}

TEST(RealRangeDomain, ContainsAcceptsIntsInRange) {
    RealRangeDomain d(0.0, 10.0);
    EXPECT_TRUE(d.contains(Value::make_int(5)));
    EXPECT_FALSE(d.contains(Value::make_int(11)));
}

// ------------------------------------------------------------------- Set

TEST(SetDomain, SamplesOnlyMembers) {
    SetDomain d({Value::make_string("p1"), Value::make_string("p2"),
                 Value::make_string("p3")});
    support::Pcg32 rng(3);
    for (int i = 0; i < 200; ++i) EXPECT_TRUE(d.contains(d.sample(rng)));
    EXPECT_FALSE(d.contains(Value::make_string("p4")));
    EXPECT_EQ(d.kind(), ValueKind::String);
}

TEST(SetDomain, RejectsEmptyAndMixedKinds) {
    EXPECT_THROW(SetDomain({}), SpecError);
    EXPECT_THROW(SetDomain({Value::make_int(1), Value::make_string("x")}), SpecError);
}

// ---------------------------------------------------------------- String

TEST(StringDomain, RespectsLengthAndAlphabet) {
    StringDomain d(2, 6, "ab");
    support::Pcg32 rng(4);
    for (int i = 0; i < 300; ++i) {
        const Value v = d.sample(rng);
        const std::string& s = v.as_string();
        EXPECT_GE(s.size(), 2u);
        EXPECT_LE(s.size(), 6u);
        for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b');
        EXPECT_TRUE(d.contains(v));
    }
    EXPECT_FALSE(d.contains(Value::make_string("abc!")));
    EXPECT_FALSE(d.contains(Value::make_string("a")));
}

TEST(StringDomain, RejectsBadConstruction) {
    EXPECT_THROW(StringDomain(5, 2), SpecError);
    EXPECT_THROW(StringDomain(0, 3, ""), SpecError);
}

TEST(StringDomain, ZeroLengthAllowed) {
    StringDomain d(0, 0);
    support::Pcg32 rng(5);
    EXPECT_EQ(d.sample(rng).as_string(), "");
}

// --------------------------------------------------------------- Pointer

TEST(PointerDomain, WithoutCompletionYieldsNullPlaceholder) {
    PointerDomain d("Provider");
    support::Pcg32 rng(6);
    const Value v = d.sample(rng);
    EXPECT_EQ(v.kind(), ValueKind::Pointer);
    EXPECT_EQ(v.as_pointer(), nullptr);
    EXPECT_EQ(v.as_object().type_name, "Provider");
    EXPECT_FALSE(d.has_completion());
}

TEST(PointerDomain, CompletionPlaysTheTester) {
    int object = 99;
    PointerDomain d("Provider", [&object](support::Pcg32&) {
        return Value::make_pointer(&object, "Provider");
    });
    support::Pcg32 rng(6);
    EXPECT_EQ(d.sample(rng).as_pointer(), &object);
    EXPECT_TRUE(d.has_completion());
}

// ------------------------------------------------- Property sweep (TEST_P)

class DomainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DomainProperty, EveryDomainSamplesIntoItself) {
    support::Pcg32 rng(GetParam());
    const std::vector<DomainPtr> domains = {
        int_range(-100, 100),
        int_range(0, 0),
        real_range(-1.0, 1.0),
        value_set({Value::make_int(2), Value::make_int(4), Value::make_int(8)}),
        string_domain(0, 12),
    };
    for (const auto& d : domains) {
        for (int i = 0; i < 64; ++i) {
            const Value v = d->sample(rng);
            EXPECT_TRUE(d->contains(v))
                << d->describe() << " produced " << v.to_display();
            EXPECT_EQ(v.kind(), d->kind());
        }
        for (const Value& b : d->boundary_values()) {
            EXPECT_TRUE(d->contains(b)) << d->describe();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(DomainDescribe, IsHumanReadable) {
    EXPECT_EQ(int_range(1, 99999)->describe(), "range 1..99999");
    EXPECT_EQ(string_domain(1, 30)->describe(), "string len 1..30");
    EXPECT_NE(value_set({Value::make_string("p1")})->describe().find("p1"),
              std::string::npos);
    EXPECT_NE(pointer_domain("Provider")->describe().find("Provider"),
              std::string::npos);
}

}  // namespace
}  // namespace stc::domain
