// Figure 2 reproduction — the TFM of the Product class with the use-case
// scenario path highlighted ("create, obtain data, remove from database,
// destroy"), plus the transaction enumeration the Driver Generator
// performs over it.
#include <iostream>

#include "product_component.h"
#include "stc/tfm/coverage.h"
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Figure 2 — TFM of class Product");

    const auto spec = examples::product_spec();
    const auto graph = spec.build_tfm();

    std::cout << "nodes: " << graph.node_count() << ", links: " << graph.edge_count()
              << "\n";
    for (tfm::NodeIndex i = 0; i < graph.node_count(); ++i) {
        const auto& node = graph.node(i);
        std::cout << "  " << node.id << (node.is_birth ? " [birth]" : "")
                  << (graph.is_death(i) ? " [death]" : "") << " = {";
        for (std::size_t m = 0; m < node.method_ids.size(); ++m) {
            const auto* method = spec.find_method(node.method_ids[m]);
            std::cout << (m != 0 ? ", " : "") << node.method_ids[m] << ":"
                      << (method != nullptr ? method->name : "?");
        }
        std::cout << "}\n";
    }

    const auto diagnostics = graph.diagnose();
    std::cout << "model diagnostics: "
              << (diagnostics.empty() ? "sound" : "PROBLEMS FOUND") << "\n";

    const auto transactions = graph.enumerate_transactions();
    std::cout << "\ntransactions (birth -> death paths): " << transactions.size()
              << "\n";
    for (std::size_t i = 0; i < transactions.size() && i < 8; ++i) {
        std::cout << "  " << graph.describe(transactions[i]) << "\n";
    }
    if (transactions.size() > 8) std::cout << "  ...\n";

    const auto coverage = tfm::measure_coverage(graph, transactions);
    std::cout << "transaction coverage subsumes: node coverage "
              << support::percent(coverage.node_ratio()) << ", link coverage "
              << support::percent(coverage.edge_ratio()) << "\n";

    const auto use_case = examples::product_use_case_path(graph);
    std::cout << "\nuse-case scenario path (highlighted in the paper's figure): "
              << graph.describe(use_case) << "\n";
    const bool is_transaction =
        std::find(transactions.begin(), transactions.end(), use_case) !=
        transactions.end();
    std::cout << "the scenario is " << (is_transaction ? "" : "NOT ")
              << "among the enumerated transactions\n";

    std::cout << "\nGraphviz DOT (scenario path in red):\n"
              << graph.to_dot(&use_case);

    return diagnostics.empty() && is_transaction ? 0 : 1;
}
