// Figures 6-7 reproduction — the generated C++ driver source: the
// template-function test case (Fig. 6) and the executable suite (Fig. 7)
// for the Product component, exactly the artifact the paper's Concat
// tool emitted.
#include <iostream>

#include "product_component.h"
#include "stc/codegen/driver_codegen.h"
#include "stc/core/self_testable.h"
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Figures 6-7 — generated driver source for Product");

    core::SelfTestableComponent component(examples::product_spec(),
                                          examples::product_binding());
    driver::GeneratorOptions options;
    options.seed = 2001;
    options.enumeration.max_node_visits = 1;
    const auto suite = component.generate_tests(options);

    codegen::CodegenOptions cg;
    cg.includes = {"product.h"};
    cg.usings = {"stc::examples"};
    const codegen::DriverCodegen generator(component.spec(), cg);

    std::cout << "\n--- Fig. 6: one test case ------------------------------\n"
              << generator.test_case_source(suite.cases.front());

    const std::string full = generator.suite_source(suite);
    std::cout << "\n--- Fig. 7: executable suite (head and main) -----------\n";
    // Print the prologue and the main() block only; the full text goes to
    // the driver file a consumer would compile.
    const auto main_pos = full.find("int main()");
    std::cout << full.substr(0, full.find("// Transaction:")) << "...\n"
              << (main_pos == std::string::npos ? "" : full.substr(main_pos));

    std::cout << "\nsuite: " << suite.size() << " test case(s), "
              << full.size() << " bytes of source; tester-completion hooks:";
    for (const auto& cls : generator.completion_classes(suite)) std::cout << " " << cls;
    std::cout << "\n(the integration test compiles and runs this source end to end)\n";

    return suite.size() > 0 ? 0 : 1;
}
