// Interclass-testing ablation — quantifies the motivation of the
// paper's §6 extension: faults in the *interaction* between classes
// (here: Wallet's write-through to its audit Ledger) under two testing
// strategies:
//
//   intraclass — Wallet tested alone (§3's single-class methodology);
//                the Ledger parameter is a tester completion the suite
//                never observes.
//   interclass — the AuditedWallet system suite: the same call shapes,
//                but the Ledger is a first-class role whose Reporter
//                output is part of the observable state.
//
// Interface mutants are seeded into Wallet::Deposit / Wallet::Withdraw.
// The write-through sites (the ledger pointer and the booked amounts)
// are only observable through the collaborator.
#include "bench_util.h"
#include "stc/interclass/system_driver.h"
#include "wallet_component.h"

int main() {
    using namespace stc;
    bench::banner("Interclass ablation — collaboration faults in Wallet");

    const auto mutants =
        mutation::enumerate_mutants(examples::wallet_descriptors(), "Wallet");
    std::cout << "\nmutants in Wallet::Deposit / Wallet::Withdraw: "
              << mutants.size() << "\n\n";

    reflect::Registry registry;
    examples::register_wallet_classes(registry);

    // --- intraclass: Wallet alone -------------------------------------------
    examples::LedgerPool ledgers;
    const auto completions = ledgers.completions();
    driver::DriverGenerator intraclass_gen(examples::wallet_intraclass_spec());
    intraclass_gen.completions(&completions);
    const auto intraclass_suite = intraclass_gen.generate();

    const mutation::MutationEngine engine(registry);
    const driver::TestRunner runner(registry);
    const auto intraclass_run = engine.run_with(
        [&] { return runner.run(intraclass_suite); }, mutants);

    // --- interclass: the AuditedWallet system --------------------------------
    const auto system = examples::wallet_system_spec();
    const auto system_suite =
        interclass::SystemDriverGenerator(system).generate();
    const interclass::SystemRunner system_runner(registry);
    const auto interclass_run = engine.run_with(
        [&] { return system_runner.run(system, system_suite); }, mutants);

    support::TextTable table(
        {"Strategy", "test cases", "#killed", "not covered", "Score"});
    table.set_align(0, support::Align::Left);
    table.add_row({"intraclass (Wallet alone)",
                   std::to_string(intraclass_suite.size()),
                   std::to_string(intraclass_run.killed()),
                   std::to_string(intraclass_run.total() -
                                  intraclass_run.killed() -
                                  intraclass_run.equivalent()),
                   support::percent(intraclass_run.score())});
    table.add_row({"interclass (system suite)",
                   std::to_string(system_suite.size()),
                   std::to_string(interclass_run.killed()),
                   std::to_string(interclass_run.total() -
                                  interclass_run.killed() -
                                  interclass_run.equivalent()),
                   support::percent(interclass_run.score())});
    table.render(std::cout);

    // Which mutants does only the interclass suite kill?
    std::cout << "\nmutants killed by the interclass suite but missed "
                 "intraclass:\n";
    std::size_t interaction_only = 0;
    for (std::size_t i = 0; i < mutants.size(); ++i) {
        const bool intra = intraclass_run.outcomes[i].fate ==
                           mutation::MutantFate::Killed;
        const bool inter = interclass_run.outcomes[i].fate ==
                           mutation::MutantFate::Killed;
        if (inter && !intra) {
            ++interaction_only;
            if (interaction_only <= 8) std::cout << "  " << mutants[i].id() << "\n";
        }
    }
    std::cout << "total: " << interaction_only
              << " interaction fault(s) visible only with interclass testing\n";

    const bool shape_holds =
        intraclass_run.baseline_clean && interclass_run.baseline_clean &&
        interclass_run.score() > intraclass_run.score() && interaction_only > 0;
    return shape_holds ? 0 : 1;
}
