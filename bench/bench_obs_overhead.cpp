// Observability overhead — the cost of the stc::obs instrumentation
// hooks that now sit unconditionally in the pipeline's hot paths
// (runner test-case/method-call spans, verdict counters, oracle and
// mutation meters).
//
// Two measurements:
//   1. disabled fast path (the default for every user who never passes
//      --trace-out/--metrics-out): a tight loop over SpanScope +
//      Metrics::add on disabled handles.  This is the one that must be
//      negligible, and it is asserted: the per-call cost has to stay
//      under a deliberately generous ceiling (the real cost is a null
//      check, a few ns even on a loaded CI box);
//   2. enabled instruments: the same suite executed with tracing +
//      metrics on, reported (not asserted — an enabled tracer buys its
//      allocations knowingly).
//
// `--smoke` shrinks the iteration counts and is registered as a ctest.
#include <chrono>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "stc/driver/runner.h"
#include "stc/obs/context.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// ns per iteration of the disabled-instrument hot path: one RAII span
/// plus one counter bump plus one latency observation, all no-ops.
double disabled_ns_per_call(std::size_t iterations) {
    const stc::obs::Context obs;  // default: both instruments off
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
        const stc::obs::SpanScope span(obs.tracer, "method-call", "bench");
        obs.metrics.add("bench.calls");
        obs.metrics.observe_ms("bench.ms", 1.0);
        sink += i;
    }
    const double elapsed_ms = ms_since(t0);
    if (sink == 0) std::cout << "";  // keep the loop observable
    return elapsed_ms * 1e6 / static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace stc;
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    bench::banner(smoke ? "Observability overhead (smoke)"
                        : "Observability overhead");

    // --- 1. the disabled fast path ------------------------------------
    const std::size_t iterations = smoke ? 200'000 : 5'000'000;
    const double ns = disabled_ns_per_call(iterations);
    std::cout << "disabled instruments: " << ns << " ns per call site ("
              << iterations << " iterations)\n";

    // The ceiling is ~2 orders of magnitude above the expected cost so
    // the gate never flakes on slow shared runners, while still
    // catching a lock or allocation sneaking onto the disabled path.
    const double ceiling_ns = 250.0;
    if (ns > ceiling_ns) {
        std::cout << "FAIL: disabled-path cost " << ns << " ns exceeds "
                  << ceiling_ns << " ns — the no-op fast path regressed\n";
        return 1;
    }
    std::cout << "OK: under the " << ceiling_ns << " ns ceiling\n\n";

    // --- 2. enabled instruments, whole-suite view ---------------------
    bench::Experiment experiment;
    driver::GeneratorOptions generator;
    if (smoke) generator.cases_per_transaction = 1;
    const driver::TestSuite suite = experiment.base.generate_tests(generator);
    const std::size_t repeats = smoke ? 2 : 10;

    auto run_suite = [&](const driver::RunnerOptions& options) {
        const driver::TestRunner runner(experiment.registry, options);
        const auto t0 = Clock::now();
        std::size_t passed = 0;
        for (std::size_t i = 0; i < repeats; ++i) {
            passed += runner.run(suite).passed();
        }
        std::cout << "  (" << passed << " case passes)\n";
        return ms_since(t0);
    };

    driver::RunnerOptions off;
    std::cout << "suite x" << repeats << ", instruments off:";
    const double off_ms = run_suite(off);

    driver::RunnerOptions on;
    on.obs.tracer = obs::Tracer::make();
    on.obs.metrics = obs::Metrics::make();
    std::cout << "suite x" << repeats << ", tracer+metrics on:";
    const double on_ms = run_suite(on);

    std::cout << "off: " << off_ms << " ms, on: " << on_ms << " ms ("
              << on.obs.tracer.event_count() << " spans, "
              << on.obs.metrics.counters().size() << " counters)\n";
    return 0;
}
