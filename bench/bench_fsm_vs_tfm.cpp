// Test-model ablation — §3.2's modeling argument, quantified.
//
// The paper chooses the transaction flow model over the "more commonly
// used" finite state machine because the TFM "scales up easier".  This
// bench builds the natural FSM abstraction of CSortableObList — object
// states Empty / One / Many (the classic count abstraction, already
// lossy: Many -Remove-> One conflates counts) — derives an
// all-transitions suite from it, and compares model size, suite size,
// and fault-revealing power against the paper's TFM transaction suite
// on the same 730 interface mutants.
#include "bench_util.h"
#include "stc/fsm/state_machine.h"

namespace {

/// Count abstraction of the sortable list.  Method ids follow
/// mfc::sortable_spec(): m3 AddHead, m4 AddTail, m5 RemoveHead,
/// m6 RemoveTail, m7 RemoveAt, m8 GetCount, m9 FindIndex, m10 RemoveAll,
/// m11 IsEmpty, m12..m14 sorts, m15/m16 FindMax/Min.
stc::fsm::StateMachine sortable_machine() {
    stc::fsm::StateMachine::Builder b;
    b.state("Empty", /*initial*/ true, /*final*/ true);
    b.state("One", false, true);
    b.state("Many", false, true);

    // Adds.
    b.transition("Empty", "m3", "One").transition("Empty", "m4", "One");
    b.transition("One", "m3", "Many").transition("One", "m4", "Many");
    b.transition("Many", "m3", "Many").transition("Many", "m4", "Many");
    // Removals (conservative: Many -remove-> One conflates counts > 2).
    b.transition("One", "m5", "Empty").transition("One", "m6", "Empty");
    b.transition("Many", "m5", "One").transition("Many", "m6", "One");
    b.transition("Many", "m7", "One").transition("One", "m7", "Empty");
    b.transition("Many", "m10", "Empty").transition("One", "m10", "Empty");
    // Queries (self loops).
    b.transition("Empty", "m8", "Empty").transition("Empty", "m11", "Empty");
    b.transition("One", "m8", "One").transition("Many", "m8", "Many");
    b.transition("One", "m9", "One").transition("Many", "m9", "Many");
    // Sorts and min/max.
    b.transition("One", "m12", "One").transition("Many", "m12", "Many");
    b.transition("Many", "m13", "Many").transition("One", "m14", "One");
    b.transition("Many", "m14", "Many").transition("One", "m13", "One");
    b.transition("One", "m15", "One").transition("Many", "m15", "Many");
    b.transition("One", "m16", "One").transition("Many", "m16", "Many");
    return b.build();
}

}  // namespace

int main() {
    using namespace stc;
    bench::banner("Test-model ablation — FSM (all-transitions) vs TFM (paper)");

    bench::Experiment experiment;
    const auto spec = mfc::sortable_spec();
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");
    const auto probe = experiment.probe_suite();
    const mutation::MutationEngine engine(experiment.registry);

    // FSM suite.
    const auto machine = sortable_machine();
    fsm::FsmSuiteOptions fsm_options;
    fsm_options.constructor_id = "m1";
    fsm_options.destructor_id = "m2";
    fsm_options.max_tour_length = 8;
    const auto completions = mfc::make_completions(experiment.pool);
    const auto fsm_suite =
        fsm::generate_fsm_suite(machine, spec, fsm_options, &completions);
    const auto fsm_run = engine.run(fsm_suite, mutants, &probe);

    // TFM suite (the paper's).
    const auto tfm_suite = experiment.full_suite();
    const auto tfm_run = engine.run(tfm_suite, mutants, &probe);

    support::TextTable table({"Model", "states/nodes", "transitions/links",
                              "test cases", "#killed", "Score"});
    table.set_align(0, support::Align::Left);
    table.add_row({"FSM, all-transitions",
                   std::to_string(machine.states().size()),
                   std::to_string(machine.transitions().size()),
                   std::to_string(fsm_suite.size()),
                   std::to_string(fsm_run.killed()),
                   support::percent(fsm_run.score())});
    table.add_row({"TFM, all-transactions (paper)",
                   std::to_string(tfm_suite.model_nodes),
                   std::to_string(tfm_suite.model_links),
                   std::to_string(tfm_suite.size()),
                   std::to_string(tfm_run.killed()),
                   support::percent(tfm_run.score())});
    table.render(std::cout);

    std::cout << "\nnotes:\n"
                 "  - the FSM must already abstract counts (Many -remove-> One\n"
                 "    conflates every count > 2), while the TFM needs no state\n"
                 "    abstraction at all — the scaling argument of §3.2;\n"
                 "  - all-transitions is a per-edge criterion, so its suite is\n"
                 "    small and its kill power sits near the TFM's all-links\n"
                 "    ablation, well below transaction coverage.\n";

    const bool shape_holds = fsm_run.baseline_clean && tfm_run.baseline_clean &&
                             tfm_run.score() >= fsm_run.score() &&
                             fsm_suite.size() < tfm_suite.size();
    return shape_holds ? 0 : 1;
}
