// Equivalence-handling ablation — methodological transparency for the
// substitution documented in DESIGN.md: the paper marked equivalent
// mutants by *manual analysis* of survivors; this reproduction presumes
// equivalence via an amplified probe suite.  The bench shows how the
// Table 2 score moves under three treatments of survivors:
//
//   none            — no equivalence marking at all (score = killed/total,
//                     the most conservative reading)
//   probe (ours)    — survivors re-tried against the amplified probe;
//                     probe-undistinguishable + executed => equivalent
//   oracle-claimed  — every survivor counted equivalent (the most
//                     generous reading; an upper bound, not a method)
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Equivalence ablation — how survivor treatment moves the score");

    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const auto probe = experiment.probe_suite();
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");
    const mutation::MutationEngine engine(experiment.registry);

    const auto no_probe = engine.run(suite, mutants, nullptr);
    const auto with_probe = engine.run(suite, mutants, &probe);

    const std::size_t survivors = no_probe.total() - no_probe.killed();
    const double none_score =
        static_cast<double>(no_probe.killed()) / static_cast<double>(no_probe.total());
    const double generous_score =
        static_cast<double>(no_probe.killed()) /
        static_cast<double>(no_probe.total() - survivors);

    support::TextTable table({"Treatment of survivors", "#equivalent", "Score"});
    table.set_align(0, support::Align::Left);
    table.add_row({"none (killed/total)", "0", support::percent(none_score)});
    table.add_row({"probe-presumed (this reproduction)",
                   std::to_string(with_probe.equivalent()),
                   support::percent(with_probe.score())});
    table.add_row({"all survivors equivalent (upper bound)",
                   std::to_string(survivors), support::percent(generous_score)});
    table.render(std::cout);

    std::cout << "\nthe paper's manual analysis found 19 equivalents of 700 "
                 "(2.7%); the probe presumes "
              << with_probe.equivalent() << " of " << with_probe.total() << " ("
              << support::percent(static_cast<double>(with_probe.equivalent()) /
                                  static_cast<double>(with_probe.total()))
              << ") — and even the most conservative reading (no equivalence "
                 "marking at all)\nkeeps Experiment 1 far above Experiment 2's "
                 "74.8%, so the reproduction's conclusions do not\nhinge on the "
                 "substitution.\n";

    return (none_score > 0.85 && with_probe.score() >= none_score) ? 0 : 1;
}
