// Fuzz-loop throughput — executions per second of the coverage-guided
// loop over CObList transactions, split into the two regimes a user
// pays for:
//
//   1. exploration only (pristine component, nothing to shrink): the
//      steady-state cost of mutate + execute + coverage bookkeeping;
//   2. seeded fault (the ISSUE's AddHead RepReq.NULL mutant): most
//      executions crash, every novel failure pays a shrink, so this
//      bounds the worst-case per-iteration cost.
//
// `--smoke` shrinks the budgets and asserts the determinism contract
// (two same-seed runs agree on stats and findings) instead of timing,
// and is registered as a ctest.
#include <chrono>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "stc/fuzz/fuzzer.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

struct RunOutcome {
    stc::fuzz::FuzzResult result;
    double wall_ms = 0.0;
};

RunOutcome run_fuzz(bench::Experiment& ex,
                    const stc::driver::CompletionRegistry& completions,
                    const stc::mutation::Mutant* mutant,
                    std::size_t iterations, std::uint64_t seed) {
    stc::fuzz::FuzzOptions options;
    options.seed = seed;
    options.iterations = iterations;
    if (mutant != nullptr) options.mutant_id = mutant->id();

    const stc::driver::TestRunner runner(ex.base.registry());
    const stc::reflect::ClassBinding& binding =
        ex.base.registry().at(ex.base.spec().class_name);
    const stc::fuzz::CaseRunner case_runner =
        [&runner, &binding, mutant](const stc::driver::TestCase& tc) {
            if (mutant != nullptr) {
                const stc::mutation::MutantActivation active(*mutant);
                return runner.run_case(binding, tc);
            }
            return runner.run_case(binding, tc);
        };

    stc::fuzz::Fuzzer fuzzer(ex.base.spec(), options);
    fuzzer.completions(&completions).case_runner(case_runner);

    RunOutcome out;
    const auto t0 = Clock::now();
    out.result = fuzzer.run();
    out.wall_ms = ms_since(t0);
    return out;
}

void report(const char* label, const RunOutcome& run) {
    const auto& stats = run.result.stats;
    const double execs_per_s =
        run.wall_ms == 0.0
            ? 0.0
            : static_cast<double>(stats.executions) * 1000.0 / run.wall_ms;
    std::cout << label << ": " << stats.executions << " execution(s) in "
              << run.wall_ms << " ms (" << static_cast<long>(execs_per_s)
              << " exec/s), " << stats.interesting << " interesting, "
              << run.result.findings.size() << " finding(s)\n";
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const std::size_t iterations = smoke ? 150 : 5000;

    bench::Experiment ex;
    const stc::driver::CompletionRegistry completions =
        stc::mfc::make_completions(ex.pool);
    const auto mutants = stc::mutation::enumerate_mutants(
        stc::mfc::descriptors(), ex.base.spec().class_name);
    const stc::mutation::Mutant* seeded = nullptr;
    for (const auto& m : mutants) {
        if (m.id() == "CObList::AddHead@s0.IndVarRepReq.NULL") seeded = &m;
    }
    if (seeded == nullptr) {
        std::cerr << "seeded fault mutant not found\n";
        return 1;
    }

    const RunOutcome explore =
        run_fuzz(ex, completions, nullptr, iterations, 11);
    report("explore (pristine)", explore);
    const RunOutcome fault = run_fuzz(ex, completions, seeded, iterations, 11);
    report("seeded fault      ", fault);

    if (smoke) {
        // Determinism contract: same seed, same bytes.
        const RunOutcome again =
            run_fuzz(ex, completions, seeded, iterations, 11);
        if (again.result.stats.render() != fault.result.stats.render() ||
            again.result.findings.size() != fault.result.findings.size()) {
            std::cerr << "FAIL: same-seed fuzz runs disagree\n";
            return 1;
        }
        if (fault.result.findings.empty()) {
            std::cerr << "FAIL: seeded fault produced no finding\n";
            return 1;
        }
        std::cout << "smoke OK: deterministic, seeded fault found\n";
    }
    return 0;
}
