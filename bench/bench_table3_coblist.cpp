// Table 3 reproduction — Experiment 2 of §4, the paper's cautionary tale.
//
// The same interface-mutation operators are applied to the *base class*
// methods AddHead, RemoveAt, RemoveHead, but the suite run against them
// is CSortableObList's hierarchical-incremental test set: only
// transactions containing new/redefined methods are rerun; inherited-only
// transactions are "reused, not rerun" (§3.4.2).  The paper measures a
// 63.5% total score (40-69.7% per operator, 0 equivalents) versus 95.7%
// in Experiment 1, and concludes that not retesting inherited behaviour
// in the subclass context "can be dangerous".
//
// Equivalence probing here uses the FULL subclass suite: a survivor that
// even the full suite cannot kill is presumed equivalent, everything else
// counts against the incremental suite — the honest denominator.
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Table 3 — base-class mutants vs incremental suite (Experiment 2)");

    bench::Experiment experiment;
    const auto full = experiment.full_suite();
    const auto plan = experiment.incremental_plan(full);

    std::cout << "\nincremental suite for CSortableObList:\n";
    bench::compare("test cases rerun (contain new methods)", "233",
                   std::to_string(plan.new_cases()));
    bench::compare("test cases reused without rerun", "329",
                   std::to_string(plan.reused_cases()));

    const auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    std::cout << "\nmutants in CObList methods: " << mutants.size()
              << " (paper: 159)\n";

    const mutation::MutationEngine engine(experiment.registry);
    const auto run = engine.run(plan.incremental, mutants, &full);
    std::cout << "baseline clean: " << (run.baseline_clean ? "yes" : "no") << "\n\n";

    const auto table = mutation::MutationTable::build(run);
    table.render(std::cout, run);

    std::cout << "\npaper vs measured (totals):\n";
    bench::compare("#mutants", "159", std::to_string(run.total()));
    bench::compare("#killed", "101", std::to_string(run.killed()));
    bench::compare("#equivalent", "0", std::to_string(run.equivalent()));
    bench::compare("mutation score", "63.5%", support::percent(run.score()));

    // The headline comparison: the incremental suite misses base-class
    // faults that the full suite would catch.
    const auto full_run = engine.run(full, mutants, &full);
    std::cout << "\ncontrol: the same mutants under the FULL subclass suite score "
              << support::percent(full_run.score()) << " — the gap of "
              << support::percent(full_run.score() - run.score())
              << " is the cost of not rerunning inherited transactions.\n";

    // The paper's conclusion asks for the countermeasure: "retest
    // inherited features in the context of a subclass".  Adopting the
    // base class's own suite to run against CSortableObList instances
    // does exactly that, and closes the gap.
    const auto parent_suite = experiment.base.generate_tests();
    const auto adopted = history::adopt_parent_suite(parent_suite, mfc::sortable_spec());
    const auto adopted_run = engine.run(adopted, mutants, &full);
    std::cout << "countermeasure: CObList's own suite adopted onto the subclass ("
              << adopted.size() << " case(s)) scores "
              << support::percent(adopted_run.score())
              << " on the same mutants — rerunning reused transactions in the\n"
                 "subclass context recovers the fault revelation the "
                 "incremental economy gave up.\n";

    std::cout << "\ncsv:\n";
    table.render_csv(std::cout);

    const bool shape_holds = run.baseline_clean && run.score() < full_run.score() &&
                             run.score() < 0.9;
    return shape_holds ? 0 : 1;
}
