// Coverage-criterion ablation — the paper adopts transaction coverage,
// "the weakest criterion among the ones presented in [Beizer]" for
// transaction flows, yet stronger than plain node/link coverage.  This
// bench compares the fault-revealing power (Experiment 1 setup) and the
// cost (suite size) of:
//   all-transactions  — the paper's criterion
//   all-links         — greedy transaction subset covering every link
//   all-nodes         — greedy transaction subset covering every node
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Coverage ablation — transaction vs link vs node coverage");

    bench::Experiment experiment;
    const auto probe = experiment.probe_suite();
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");

    support::TextTable table(
        {"Criterion", "test cases", "#killed", "#equivalent", "Score"});
    table.set_align(0, support::Align::Left);

    double transaction_score = 0.0;
    double node_score = 1.0;
    std::size_t transaction_cases = 0;
    std::size_t node_cases = 0;

    for (const auto criterion :
         {tfm::Criterion::AllTransactions, tfm::Criterion::AllEdges,
          tfm::Criterion::AllNodes}) {
        driver::GeneratorOptions options;
        options.criterion = criterion;
        const auto suite = experiment.derived.generate_tests(options);

        const mutation::MutationEngine engine(experiment.registry);
        const auto run = engine.run(suite, mutants, &probe);

        table.add_row({to_string(criterion), std::to_string(suite.size()),
                       std::to_string(run.killed()), std::to_string(run.equivalent()),
                       support::percent(run.score())});

        if (criterion == tfm::Criterion::AllTransactions) {
            transaction_score = run.score();
            transaction_cases = suite.size();
        }
        if (criterion == tfm::Criterion::AllNodes) {
            node_score = run.score();
            node_cases = suite.size();
        }
    }
    table.render(std::cout);

    std::cout << "\ntransaction coverage costs "
              << (node_cases == 0 ? 0.0
                                  : static_cast<double>(transaction_cases) /
                                        static_cast<double>(node_cases))
              << "x the test cases of node coverage and buys "
              << support::percent(transaction_score - node_score)
              << " additional mutation score.\n";

    return transaction_score >= node_score ? 0 : 1;
}
