// Robustness sweep — the paper reports one run of each experiment; this
// bench repeats Experiment 1 (Table 2) across independent random seeds
// to show the reproduced scores are stable properties of the approach,
// not artifacts of one lucky value assignment (random parameter
// selection is the only stochastic element, §3.4.1).
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Seed sweep — Table 2 across independent generator seeds");

    bench::Experiment experiment;
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");
    const auto probe = experiment.probe_suite();
    const mutation::MutationEngine engine(experiment.registry);

    support::TextTable table(
        {"Seed", "test cases", "#killed", "#equivalent", "Score"});

    double min_score = 1.0;
    double max_score = 0.0;
    for (std::uint64_t seed : {20010701ULL, 1ULL, 42ULL, 777ULL, 20260707ULL}) {
        const auto suite = experiment.full_suite(seed);
        const auto run = engine.run(suite, mutants, &probe);
        table.add_row({std::to_string(seed), std::to_string(suite.size()),
                       std::to_string(run.killed()), std::to_string(run.equivalent()),
                       support::percent(run.score())});
        min_score = std::min(min_score, run.score());
        max_score = std::max(max_score, run.score());
    }
    table.render(std::cout);

    std::cout << "\nscore spread across seeds: "
              << support::percent(max_score - min_score)
              << " (paper single-run reference: 95.7%)\n";

    // Stability criterion: the qualitative conclusion must not depend on
    // the seed.
    return (min_score > 0.9 && max_score - min_score < 0.05) ? 0 : 1;
}
