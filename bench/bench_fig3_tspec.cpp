// Figure 3 reproduction — the t-spec text format: the Product
// specification in the paper's record syntax, parsed, validated, and
// printed back (proving the format round-trips).
#include <iostream>

#include "product_component.h"
#include "stc/tspec/parser.h"
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Figure 3 — t-spec of class Product (record format)");

    const std::string text = examples::product_tspec_text();
    std::cout << text << "\n";

    const auto spec = tspec::parse_tspec(text);
    const auto problems = spec.validate();
    std::cout << "parsed: class " << spec.class_name << ", "
              << spec.attributes.size() << " attribute(s), " << spec.methods.size()
              << " method(s), " << spec.nodes.size() << " node(s), "
              << spec.edges.size() << " edge(s)\n";
    std::cout << "semantic validation: " << (problems.empty() ? "clean" : "PROBLEMS")
              << "\n";
    for (const auto& p : problems) {
        std::cout << "  [" << p.where << "] " << p.message << "\n";
    }

    const std::string reprinted = tspec::print_tspec(spec);
    const auto reparsed = tspec::parse_tspec(reprinted);
    const bool round_trips = print_tspec(reparsed) == reprinted;
    std::cout << "round trip parse(print(parse(text))): "
              << (round_trips ? "stable" : "UNSTABLE") << "\n";

    return problems.empty() && round_trips ? 0 : 1;
}
