// Sandbox overhead — per-mutant cost of process isolation: the same
// CObList campaign executed in-process (work-stealing threads) and
// under `--isolate` (forked sandbox workers, stc::sandbox), at 1 and 2
// jobs.  Reported per worker count:
//   - per-mutant wall cost of both engines and the isolation multiple
//     (fork + pipe IPC + waitpid per item is the price of surviving a
//     real crash);
//   - the determinism gate: for these benign mutants the isolated run
//     must reproduce the in-process fates and kill reasons bit-for-bit
//     — isolation is an execution detail, never a science change.
//
// `--smoke` shrinks the mutant set and is registered as a ctest, so the
// fork/IPC path and the cross-engine determinism contract run on every
// build.
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "stc/campaign/scheduler.h"

namespace {

struct RunOutcome {
    std::vector<std::pair<stc::mutation::MutantFate, stc::oracle::KillReason>>
        fates;
    double wall_ms = 0.0;
    std::size_t respawns = 0;
};

RunOutcome run_engine(const stc::reflect::Registry& registry,
                      const stc::driver::TestSuite& suite,
                      const std::vector<stc::mutation::Mutant>& mutants,
                      std::size_t jobs, bool isolate) {
    stc::campaign::CampaignOptions options;
    options.jobs = jobs;
    options.seed = 20010701;
    options.isolate = isolate;
    options.sandbox.timeout_ms = 30000;

    const auto t0 = std::chrono::steady_clock::now();
    const stc::campaign::CampaignScheduler scheduler(registry, options);
    const auto result = scheduler.run(suite, mutants);
    const auto t1 = std::chrono::steady_clock::now();

    RunOutcome out;
    out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.respawns = result.stats.respawns;
    out.fates.reserve(result.run.outcomes.size());
    for (const auto& o : result.run.outcomes) {
        out.fates.emplace_back(o.fate, o.reason);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace stc;
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    bench::banner(smoke ? "Sandbox overhead (smoke)" : "Sandbox overhead");

    bench::Experiment experiment;
    const auto suite = experiment.base.generate_tests();
    auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    if (smoke && mutants.size() > 6) mutants.resize(6);
    const auto n = static_cast<double>(mutants.size());

    std::cout << "subject: CObList, " << mutants.size() << " mutant(s), "
              << suite.size() << " case(s)\n\n";

    bool deterministic = true;
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
        const RunOutcome in_process =
            run_engine(experiment.registry, suite, mutants, jobs, false);
        const RunOutcome isolated =
            run_engine(experiment.registry, suite, mutants, jobs, true);
        std::cout << "  jobs=" << jobs
                  << "  in-process " << in_process.wall_ms / n << " ms/mutant"
                  << "  isolated " << isolated.wall_ms / n << " ms/mutant"
                  << "  (x" << isolated.wall_ms / in_process.wall_ms
                  << ", respawns " << isolated.respawns << ")\n";
        deterministic = deterministic && isolated.fates == in_process.fates;
    }

    std::cout << "\nisolated fates match in-process: "
              << (deterministic ? "yes" : "NO — ISOLATION CHANGED THE SCIENCE")
              << "\n";
    return deterministic ? 0 : 1;
}
