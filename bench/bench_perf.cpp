// Performance microbenchmarks (google-benchmark): throughput of the
// framework's hot paths — transaction enumeration, suite generation,
// suite execution, and per-mutant analysis.  Not a paper table; included
// so regressions in the reproduction harness itself are visible.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stc/tspec/parser.h"

namespace {

using namespace stc;

void BM_EnumerateTransactions(benchmark::State& state) {
    const auto graph = mfc::sortable_spec().build_tfm();
    tfm::EnumerationOptions options;
    options.max_node_visits = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph.enumerate_transactions(options));
    }
}
BENCHMARK(BM_EnumerateTransactions)->Arg(1)->Arg(2);

void BM_GenerateSuite(benchmark::State& state) {
    bench::Experiment experiment;
    for (auto _ : state) {
        benchmark::DoNotOptimize(experiment.full_suite());
    }
}
BENCHMARK(BM_GenerateSuite);

void BM_RunSuite(benchmark::State& state) {
    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const driver::TestRunner runner(experiment.registry);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.run(suite));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(suite.size()));
}
BENCHMARK(BM_RunSuite);

void BM_MutantAnalysis(benchmark::State& state) {
    // Cost per mutant: one suite run under an active mutant.
    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    const driver::TestRunner runner(experiment.registry);
    std::size_t index = 0;
    for (auto _ : state) {
        const mutation::MutantActivation activation(mutants[index % mutants.size()]);
        benchmark::DoNotOptimize(runner.run(suite));
        ++index;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MutantAnalysis);

void BM_ParseTspec(benchmark::State& state) {
    const std::string text =
        tspec::print_tspec(mfc::sortable_spec());
    for (auto _ : state) {
        benchmark::DoNotOptimize(tspec::parse_tspec(text));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParseTspec);

void BM_InstrumentationOverhead(benchmark::State& state) {
    // Cost of the mutant-schemata use() sites with no active mutant: the
    // price a production build pays when BIT stays compiled in.
    mfc::ElementPool pool;
    std::vector<mfc::CObject*> elements;
    for (int i = 0; i < 64; ++i) elements.push_back(pool.make(64 - i));
    for (auto _ : state) {
        mfc::CSortableObList list;
        for (auto* e : elements) list.AddHead(e);
        list.Sort1();
        benchmark::DoNotOptimize(list.FindMax());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_InstrumentationOverhead);

}  // namespace

BENCHMARK_MAIN();
