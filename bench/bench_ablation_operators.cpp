// Operator-set ablation — §4 justifies using only the "essential"
// IndVar operators "to reduce time and cost of the mutation analysis".
// This bench quantifies that trade on both experiment classes: mutant
// population (≈ analysis cost) and what the complementary DirVar group
// (interface-variable mutation) adds.
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Operator ablation — essential IndVar subset vs extended set");

    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const auto probe = experiment.probe_suite();
    const mutation::MutationEngine engine(experiment.registry);

    struct Row {
        const char* name;
        std::vector<mutation::Operator> operators;
    };
    const Row rows[] = {
        {"IndVar only (paper, Table 1)",
         {mutation::kAllOperators.begin(), mutation::kAllOperators.end()}},
        {"DirVar only (complement)",
         {mutation::kDirVarOperators.begin(), mutation::kDirVarOperators.end()}},
        {"extended (IndVar + DirVar)",
         {mutation::kExtendedOperators.begin(), mutation::kExtendedOperators.end()}},
    };

    support::TextTable table(
        {"Operator set", "#mutants", "#killed", "#equivalent", "Score"});
    table.set_align(0, support::Align::Left);

    std::size_t essential_population = 0;
    std::size_t extended_population = 0;
    for (const Row& row : rows) {
        const auto mutants = mutation::enumerate_mutants(
            mfc::descriptors(), "CSortableObList", row.operators);
        auto base = mutation::enumerate_mutants(mfc::descriptors(), "CObList",
                                                row.operators);
        auto all = mutants;
        all.insert(all.end(), base.begin(), base.end());

        const auto run = engine.run(suite, all, &probe);
        table.add_row({row.name, std::to_string(all.size()),
                       std::to_string(run.killed()), std::to_string(run.equivalent()),
                       support::percent(run.score())});

        if (std::string(row.name).find("IndVar only") != std::string::npos) {
            essential_population = all.size();
        }
        if (std::string(row.name).find("extended") != std::string::npos) {
            extended_population = all.size();
        }
    }
    table.render(std::cout);

    std::cout << "\nthe essential subset is "
              << support::percent(static_cast<double>(essential_population) /
                                  static_cast<double>(extended_population))
              << " of the extended population — on these classes the DirVar "
                 "complement is naturally tiny\n"
                 "(the mutated sort/find methods take no parameters; only "
                 "CObList::AddHead's newElement and\n"
                 "CObList::RemoveAt's position are interface variables), "
                 "which is itself evidence for the paper's\n"
                 "choice of the IndVar subset on this kind of component.  "
                 "See the interclass bench for a component\n"
                 "(Wallet) where parameter mutation carries more weight.\n";

    return essential_population < extended_population ? 0 : 1;
}
