// Shared scaffolding for the reproduction benches: builds the
// self-testable MFC components, the suites of the paper's experiments,
// and prints paper-vs-measured comparison blocks.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "stc/core/self_testable.h"
#include "stc/history/incremental.h"
#include "stc/history/version_diff.h"
#include "stc/mfc/component.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/report.h"
#include "stc/support/strings.h"
#include "stc/support/table.h"

namespace bench {

/// Everything the two experiments share.  The element pool must outlive
/// every suite generated from it.
struct Experiment {
    stc::mfc::ElementPool pool;
    stc::core::SelfTestableComponent base;
    stc::core::SelfTestableComponent derived;
    stc::reflect::Registry registry;

    Experiment()
        : base(stc::mfc::coblist_spec(), stc::mfc::coblist_binding()),
          derived(stc::mfc::sortable_spec(), stc::mfc::sortable_binding()) {
        base.set_completions(stc::mfc::make_completions(pool));
        derived.set_completions(stc::mfc::make_completions(pool));
        stc::mfc::register_mfc(registry);
    }

    /// The consumer's full suite for CSortableObList (Experiment 1 input).
    [[nodiscard]] stc::driver::TestSuite full_suite(std::uint64_t seed = 20010701) {
        stc::driver::GeneratorOptions options;
        options.seed = seed;
        return derived.generate_tests(options);
    }

    /// Amplified probe used only for equivalence separation.
    [[nodiscard]] stc::driver::TestSuite probe_suite() {
        stc::driver::GeneratorOptions options;
        options.seed = 987654321;
        options.cases_per_transaction = 2;
        return derived.generate_tests(options);
    }

    /// The §3.4.2 incremental suite (Experiment 2 input).
    [[nodiscard]] stc::history::IncrementalPlan incremental_plan(
        const stc::driver::TestSuite& full) {
        return derived.incremental_plan(full);
    }
};

/// One "paper vs measured" comparison line.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
    std::cout << "  " << what << ": paper " << paper << "  |  measured " << measured
              << "\n";
}

inline void banner(const std::string& title) {
    std::cout << "\n==================================================================\n"
              << title
              << "\n==================================================================\n";
}

}  // namespace bench
