// Value-selection ablation — §3.4.1 generates inputs "by randomly
// selecting a value from the valid subdomain".  This bench compares that
// policy against the boundary-value extension (domain ends + zero) on
// Experiment 1, at equal suite sizes.
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Value-policy ablation — random (paper) vs boundary values");

    bench::Experiment experiment;
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");
    const auto probe = experiment.probe_suite();
    const mutation::MutationEngine engine(experiment.registry);

    support::TextTable table({"Policy", "test cases", "#killed", "Score"});
    table.set_align(0, support::Align::Left);

    double random_score = 0.0;
    double boundary_score = 0.0;
    for (const auto policy : {driver::ValuePolicy::Random,
                              driver::ValuePolicy::Boundary}) {
        driver::GeneratorOptions options;
        options.value_policy = policy;
        const auto suite = experiment.derived.generate_tests(options);
        const auto run = engine.run(suite, mutants, &probe);
        const char* name =
            policy == driver::ValuePolicy::Random ? "random (paper)" : "boundary";
        table.add_row({name, std::to_string(suite.size()),
                       std::to_string(run.killed()),
                       support::percent(run.score())});
        (policy == driver::ValuePolicy::Random ? random_score : boundary_score) =
            run.score();
    }
    table.render(std::cout);

    std::cout << "\nfor this component the kill power is value-insensitive: the "
                 "faults live in\nthe pointer plumbing, not in the element "
                 "values — consistent with the paper's\nchoice of cheap random "
                 "selection.\n";

    return (random_score > 0.9 && boundary_score > 0.9) ? 0 : 1;
}
