// Table 1 reproduction — the interface-mutation operator inventory, plus
// a census of how many mutants each operator generates per instrumented
// method of both experiment classes (the per-method blocks of the
// paper's Tables 2 and 3 before any test is run).
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Table 1 — interface mutation operators");

    support::TextTable operators({"Operator", "Description"});
    for (mutation::Operator op : mutation::kAllOperators) {
        operators.add_row({to_string(op), describe(op)});
    }
    operators.set_align(1, support::Align::Left);
    operators.render(std::cout);

    std::cout << "\nrequired-constant sets (RC):\n";
    for (const auto& type : {mutation::int_type(), mutation::real_type(),
                             mutation::pointer_type("CNode")}) {
        std::cout << "  " << type.to_string() << ": ";
        bool first = true;
        for (const auto& rc : mutation::required_constants(type)) {
            if (!first) std::cout << ", ";
            std::cout << rc.label;
            first = false;
        }
        std::cout << "\n";
    }

    for (const char* cls : {"CSortableObList", "CObList"}) {
        bench::banner(std::string("mutant census for ") + cls);
        std::vector<std::string> header{"Method"};
        for (auto op : mutation::kAllOperators) header.emplace_back(to_string(op));
        header.emplace_back("Sites");
        header.emplace_back("Total");
        support::TextTable census(header);

        std::size_t grand_total = 0;
        for (const auto* descriptor : mfc::descriptors().for_class(cls)) {
            const auto mutants = mutation::enumerate_mutants(*descriptor);
            std::vector<std::string> row{descriptor->method_name()};
            for (auto op : mutation::kAllOperators) {
                std::size_t n = 0;
                for (const auto& m : mutants) n += m.op == op ? 1 : 0;
                row.push_back(std::to_string(n));
            }
            row.push_back(std::to_string(descriptor->sites().size()));
            row.push_back(std::to_string(mutants.size()));
            census.add_row(std::move(row));
            grand_total += mutants.size();
        }
        census.render(std::cout);
        std::cout << "total " << grand_total << " (paper: "
                  << (std::string(cls) == "CSortableObList" ? "700" : "159") << ")\n";
    }

    std::cout << "\npaper per-method totals for reference: Sort1 280, Sort2 107, "
                 "ShellSort 127, FindMax 93, FindMin 93; AddHead 42, RemoveAt 82, "
                 "RemovHead 35.\n";
    return 0;
}
