// Oracle ablation — quantifies §4's observation that "assertions,
// besides improving testability, help to improve fault-revealing
// effectiveness" while "assertions alone do not constitute an effective
// oracle" (59 of 652 kills were assertion-raised in the paper).
//
// Experiment 1 is rerun three times with different detection channels:
//   full oracle      — crash + assertion + output diff (the paper setup)
//   assertions only  — crash + assertion (no golden-output comparison)
//   output only      — crash + output diff (BIT assertions suppressed)
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Oracle ablation — Experiment 1 under reduced oracles");

    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const auto probe = experiment.probe_suite();
    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");

    struct Config {
        const char* name;
        oracle::OracleConfig oracle;
    };
    const Config configs[] = {
        {"full oracle (paper setup)", {true, true, true}},
        {"assertions only", {true, true, false}},
        {"output diff only", {true, false, true}},
        {"crashes only", {true, false, false}},
    };

    support::TextTable table({"Oracle", "#killed", "crash", "assertion",
                              "output-diff", "Score"});
    table.set_align(0, support::Align::Left);

    double full_score = 0.0;
    double assertions_only_score = 1.0;
    for (const Config& config : configs) {
        mutation::EngineOptions options;
        options.oracle = config.oracle;
        const mutation::MutationEngine engine(experiment.registry, options);
        const auto run = engine.run(suite, mutants, &probe);
        table.add_row({config.name, std::to_string(run.killed()),
                       std::to_string(run.kills_by(oracle::KillReason::Crash)),
                       std::to_string(run.kills_by(oracle::KillReason::Assertion)),
                       std::to_string(run.kills_by(oracle::KillReason::OutputDiff)),
                       support::percent(run.score())});
        if (std::string(config.name).find("full") != std::string::npos) {
            full_score = run.score();
        }
        if (std::string(config.name) == "assertions only") {
            assertions_only_score = run.score();
        }
    }
    table.render(std::cout);

    std::cout << "\npaper: 59 of 652 kills were due to assertion violation; "
                 "assertions help but are not sufficient alone.\n"
              << "measured: assertions-only loses "
              << support::percent(full_score - assertions_only_score)
              << " of score versus the full oracle.\n";

    return full_score >= assertions_only_score ? 0 : 1;
}
