// Campaign scaling — wall-clock speedup of the stc::campaign
// work-stealing scheduler at 1/2/4/8 workers over the serial engine
// loop, on the paper's CObList subject (the Experiment 1/2 component).
//
// Two properties are measured:
//   1. determinism — every worker count produces the same fates and
//      kill reasons, bit-for-bit, as the serial run (the scheduler's
//      core contract: parallelism must not change the science);
//   2. scaling — elapsed time shrinks as workers are added.  The
//      speedup gate only applies when the hardware actually has >= 4
//      cores; on smaller machines the numbers are reported unchecked.
//
// `--smoke` runs a tiny sharded campaign (first 8 mutants, 2 workers)
// in a fraction of a second — registered as a ctest so the parallel
// path is exercised on every build.
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "stc/campaign/scheduler.h"
#include "stc/campaign/thread_pool.h"

namespace {

struct RunOutcome {
    std::vector<std::pair<stc::mutation::MutantFate, stc::oracle::KillReason>>
        fates;
    double wall_ms = 0.0;
    double campaign_wall_ms = 0.0;  // item phase as metered by the scheduler
    std::uint64_t steals = 0;
};

RunOutcome run_at(const stc::reflect::Registry& registry,
                  const stc::driver::TestSuite& suite,
                  const std::vector<stc::mutation::Mutant>& mutants,
                  std::size_t jobs) {
    stc::campaign::CampaignOptions options;
    options.jobs = jobs;
    options.seed = 20010701;

    const auto t0 = std::chrono::steady_clock::now();
    const stc::campaign::CampaignScheduler scheduler(registry, options);
    const auto result = scheduler.run(suite, mutants);
    const auto t1 = std::chrono::steady_clock::now();

    RunOutcome out;
    out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.campaign_wall_ms = result.stats.wall_ms;
    out.steals = result.stats.steals;
    out.fates.reserve(result.run.outcomes.size());
    for (const auto& o : result.run.outcomes) {
        out.fates.emplace_back(o.fate, o.reason);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace stc;
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    bench::banner(smoke ? "Campaign scaling (smoke)" : "Campaign scaling");

    bench::Experiment experiment;
    const auto suite = experiment.base.generate_tests();
    auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    if (smoke && mutants.size() > 8) mutants.resize(8);

    const std::size_t cores = campaign::WorkStealingPool::hardware_workers();
    std::cout << "subject: CObList, " << mutants.size() << " mutant(s), "
              << suite.size() << " case(s); hardware cores: " << cores << "\n\n";

    const std::vector<std::size_t> worker_counts =
        smoke ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4, 8};

    std::vector<RunOutcome> runs;
    runs.reserve(worker_counts.size());
    for (const std::size_t jobs : worker_counts) {
        runs.push_back(run_at(experiment.registry, suite, mutants, jobs));
        const RunOutcome& r = runs.back();
        std::cout << "  jobs=" << jobs << "  wall=" << r.wall_ms
                  << "ms  (items " << r.campaign_wall_ms << "ms, steals "
                  << r.steals << ")  speedup x"
                  << (runs.front().wall_ms / r.wall_ms) << "\n";
    }

    bool fates_identical = true;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        fates_identical = fates_identical && runs[i].fates == runs[0].fates;
    }
    std::cout << "\nfates identical across worker counts: "
              << (fates_identical ? "yes" : "NO — DETERMINISM BROKEN") << "\n";

    if (smoke) return fates_identical ? 0 : 1;

    // The scaling gate: only meaningful when the hardware can actually
    // run 4 workers.  Threshold 1.2 leaves margin for CI noise below
    // the >1.5x expected of a healthy 4-core run.
    const double speedup4 = runs[0].wall_ms / runs[2].wall_ms;
    std::cout << "speedup at 4 workers: x" << speedup4
              << (cores >= 4 ? "" : "  (unchecked: <4 cores)") << "\n";
    const bool scaling_ok = cores < 4 || speedup4 > 1.2;
    return fates_identical && scaling_ok ? 0 : 1;
}
