// Campaign scaling — wall-clock speedup of the stc::campaign
// work-stealing scheduler at 1/2/4/8 workers over the serial engine
// loop, on the paper's CObList subject (the Experiment 1/2 component).
//
// Two properties are measured:
//   1. determinism — every worker count produces the same fates and
//      kill reasons, bit-for-bit, as the serial run (the scheduler's
//      core contract: parallelism must not change the science);
//   2. scaling — elapsed time shrinks as workers are added.  The
//      speedup gate only applies when the hardware actually has >= 4
//      cores; on smaller machines the numbers are reported unchecked.
//
// `--smoke` runs a tiny sharded campaign (first 8 mutants, 2 workers)
// in a fraction of a second — registered as a ctest so the parallel
// path is exercised on every build.
//
// `--json-out FILE` additionally measures the fast execution tier —
// before/after pairs for coverage-signature pruning + checkpoint
// memoization on both built-in subjects: CObList (dense coverage,
// ~x2) and the Experiment 1 CSortableObList consumer suite (sparse
// coverage, the >= 5x items/sec headline) — and the distributed
// campaign service (in-process `concat serve` daemons on loopback,
// one coordinator) at 1 and 2 workers, and
// writes the machine-readable rows checked in as BENCH_campaign.json:
//     [{"commit": ..., "date": ..., "config": ...,
//       "items_per_sec": ..., "wall_ms": ...}, ...]
// `--commit` / `--date` stamp the rows (the generator script passes
// `git rev-parse --short HEAD` and the build date).
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "shop_targets.h"
#include "stc/campaign/scheduler.h"
#include "stc/campaign/thread_pool.h"
#include "stc/obs/json.h"
#include "stc/serve/builtin_host.h"
#include "stc/serve/dispatch.h"
#include "stc/tfm/coverage.h"
#include "stc/serve/worker.h"
#include "stc/support/error.h"

namespace {

struct RunOutcome {
    std::vector<std::pair<stc::mutation::MutantFate, stc::oracle::KillReason>>
        fates;
    double wall_ms = 0.0;
    double campaign_wall_ms = 0.0;  // item phase as metered by the scheduler
    std::uint64_t steals = 0;
};

RunOutcome run_at(const stc::reflect::Registry& registry,
                  const stc::driver::TestSuite& suite,
                  const std::vector<stc::mutation::Mutant>& mutants,
                  std::size_t jobs, bool prune = true) {
    stc::campaign::CampaignOptions options;
    options.jobs = jobs;
    options.seed = 20010701;
    options.prune = prune;

    const auto t0 = std::chrono::steady_clock::now();
    const stc::campaign::CampaignScheduler scheduler(registry, options);
    const auto result = scheduler.run(suite, mutants);
    const auto t1 = std::chrono::steady_clock::now();

    RunOutcome out;
    out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.campaign_wall_ms = result.stats.wall_ms;
    out.steals = result.stats.steals;
    out.fates.reserve(result.run.outcomes.size());
    for (const auto& o : result.run.outcomes) {
        out.fates.emplace_back(o.fate, o.reason);
    }
    return out;
}

/// One dispatched run: `workers` in-process serve daemons on ephemeral
/// loopback ports, one coordinator, the full default CObList campaign
/// (the same campaign the local rows run).  Returns wall time and the
/// merged fates for the determinism cross-check.
struct DispatchOutcome {
    std::map<std::size_t, std::string> fates;  // item index -> fate string
    double wall_ms = 0.0;
    std::size_t items = 0;
    std::size_t streamed_events = 0;  // telemetry events received (streaming)
    std::size_t streamed_spans = 0;   // worker spans absorbed (streaming)
};

/// `streaming` turns on the full minor-2 observability path: an enabled
/// coordinator tracer (so every worker streams its spans back) plus
/// event streaming at a 100ms snapshot cadence — the cost the
/// obs-streaming-on / obs-off row pair in BENCH_campaign.json bounds.
DispatchOutcome run_dispatched(std::size_t workers, bool streaming = false) {
    using namespace stc;

    serve::BuiltinCampaignConfig config;
    config.component = "coblist";
    std::string error;
    const auto host = serve::BuiltinCampaign::open(config, &error);
    if (host == nullptr) throw Error("bench: " + error);

    struct Daemon {
        std::unique_ptr<serve::WorkerDaemon> daemon;
        std::thread thread;
    };
    std::vector<Daemon> daemons(workers);
    std::vector<serve::Endpoint> endpoints;
    for (Daemon& d : daemons) {
        serve::ServeOptions options;
        options.once = true;
        d.daemon = std::make_unique<serve::WorkerDaemon>(
            serve::builtin_session_factory(), options);
        const std::uint16_t port = d.daemon->bind();
        endpoints.push_back(
            serve::parse_endpoint("127.0.0.1:" + std::to_string(port)));
        d.thread = std::thread([&d] { d.daemon->serve(); });
    }

    serve::DispatchOptions options;
    options.workers = endpoints;
    options.hello = serve::make_hello(config, host->fingerprint());
    options.expected_fingerprint = host->fingerprint();

    DispatchOutcome out;
    obs::Tracer tracer;
    if (streaming) {
        tracer = obs::Tracer::make();
        options.obs.tracer = tracer;
        options.stream_telemetry = true;
        options.telemetry_interval_ms = 100;
        options.telemetry = [&out](const obs::JsonObject&) {
            ++out.streamed_events;
        };
    }
    out.items = host->items().size();
    const auto t0 = std::chrono::steady_clock::now();
    serve::Coordinator coordinator(std::move(options));
    (void)coordinator.run(host->items(),
                          [&](const campaign::WorkItem& item,
                              const stc::obs::JsonObject& result) {
                              out.fates[item.index] =
                                  result.get_string("fate").value_or("?");
                          });
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (streaming) out.streamed_spans = tracer.events().size();

    for (Daemon& d : daemons) {
        d.daemon->stop();
        d.thread.join();
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace stc;
    bool smoke = false;
    std::string json_out;
    std::string commit = "unknown";
    std::string date = "unknown";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json-out" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (arg == "--commit" && i + 1 < argc) {
            commit = argv[++i];
        } else if (arg == "--date" && i + 1 < argc) {
            date = argv[++i];
        }
    }

    bench::banner(smoke ? "Campaign scaling (smoke)" : "Campaign scaling");

    bench::Experiment experiment;
    const auto suite = experiment.base.generate_tests();
    auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    if (smoke && mutants.size() > 8) mutants.resize(8);

    const std::size_t cores = campaign::WorkStealingPool::hardware_workers();
    std::cout << "subject: CObList, " << mutants.size() << " mutant(s), "
              << suite.size() << " case(s); hardware cores: " << cores << "\n\n";

    const std::vector<std::size_t> worker_counts =
        smoke ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4, 8};

    std::vector<RunOutcome> runs;
    runs.reserve(worker_counts.size());
    for (const std::size_t jobs : worker_counts) {
        runs.push_back(run_at(experiment.registry, suite, mutants, jobs));
        const RunOutcome& r = runs.back();
        std::cout << "  jobs=" << jobs << "  wall=" << r.wall_ms
                  << "ms  (items " << r.campaign_wall_ms << "ms, steals "
                  << r.steals << ")  speedup x"
                  << (runs.front().wall_ms / r.wall_ms) << "\n";
    }

    bool fates_identical = true;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        fates_identical = fates_identical && runs[i].fates == runs[0].fates;
    }
    std::cout << "\nfates identical across worker counts: "
              << (fates_identical ? "yes" : "NO — DETERMINISM BROKEN") << "\n";

    // Distributed rows + machine-readable output.  The dispatch runs use
    // the full default campaign (not the smoke-trimmed mutant set), the
    // same one the checked-in BENCH_campaign.json baselines.
    if (!json_out.empty()) {
        const auto full_suite = experiment.base.generate_tests();
        auto full_mutants =
            mutation::enumerate_mutants(mfc::descriptors(), "CObList");
        // The fast-tier before/after pairs: the same serial campaign
        // with coverage-signature pruning + checkpoint memoization off
        // and on.  Fates must be byte-identical on both subjects (the
        // tier's core contract).  The headline >= 5x items/sec gate
        // runs on the Experiment 1 subject (CSortableObList under the
        // consumer's suite): more methods per component means each
        // case reaches fewer mutation sites, the sparse-coverage
        // setting pruning targets (~9% density, x11 ceiling).  CObList
        // is kept as the dense-coverage data point (~46% density caps
        // its ratio near x2 no matter how good the tier is).
        const RunOutcome unpruned =
            run_at(experiment.registry, full_suite, full_mutants, 1, false);
        const RunOutcome local =
            run_at(experiment.registry, full_suite, full_mutants, 1);
        const bool prune_identical = local.fates == unpruned.fates;
        const double prune_speedup =
            local.wall_ms > 0.0 ? unpruned.wall_ms / local.wall_ms : 0.0;
        std::cout << "  local jobs=1 no-prune  wall=" << unpruned.wall_ms
                  << "ms\n  local jobs=1 pruned    wall=" << local.wall_ms
                  << "ms  speedup x" << prune_speedup << "  fates "
                  << (prune_identical ? "identical" : "DIFFER — TIER BROKEN")
                  << "\n";

        const auto sortable_suite = experiment.full_suite();
        const auto sortable_mutants = mutation::enumerate_mutants(
            mfc::descriptors(), sortable_suite.class_name);
        const RunOutcome sortable_unpruned = run_at(
            experiment.registry, sortable_suite, sortable_mutants, 1, false);
        const RunOutcome sortable_pruned =
            run_at(experiment.registry, sortable_suite, sortable_mutants, 1);
        const bool sortable_identical =
            sortable_pruned.fates == sortable_unpruned.fates;
        const double sortable_speedup =
            sortable_pruned.wall_ms > 0.0
                ? sortable_unpruned.wall_ms / sortable_pruned.wall_ms
                : 0.0;
        std::cout << "  sortable jobs=1 no-prune  wall="
                  << sortable_unpruned.wall_ms
                  << "ms\n  sortable jobs=1 pruned    wall="
                  << sortable_pruned.wall_ms << "ms  speedup x"
                  << sortable_speedup << "  fates "
                  << (sortable_identical ? "identical"
                                         : "DIFFER — TIER BROKEN")
                  << "\n";

        std::vector<obs::JsonObject> rows;
        auto add_row = [&](const std::string& config, std::size_t items,
                           double wall_ms) {
            obs::JsonObject row;
            row.set("commit", commit)
                .set("date", date)
                .set("config", config)
                .set("items_per_sec",
                     wall_ms > 0.0 ? static_cast<double>(items) /
                                         (wall_ms / 1000.0)
                                   : 0.0)
                .set("wall_ms", wall_ms);
            rows.push_back(std::move(row));
        };
        add_row("local-jobs-1-no-prune", full_mutants.size(), unpruned.wall_ms);
        add_row("local-jobs-1", full_mutants.size(), local.wall_ms);
        add_row("local-sortable-jobs-1-no-prune", sortable_mutants.size(),
                sortable_unpruned.wall_ms);
        add_row("local-sortable-jobs-1", sortable_mutants.size(),
                sortable_pruned.wall_ms);

        bool gates_ok = prune_identical && sortable_identical;
        // The tier's headline: >= 5x items/sec on the sparse-coverage
        // subject.  4.0 in the gate leaves margin for machine noise
        // below the ~6x this subject measures on an idle core.
        if (sortable_speedup < 4.0) {
            std::cout << "FAIL: fast-tier speedup x" << sortable_speedup
                      << " on the sparse-coverage subject (expected >= 5x, "
                         "gated at 4x for noise)\n";
            gates_ok = false;
        }
        // The assembly row (stc::assembly): Wallet's interface mutants
        // evaluated through the Shop product's public interface under
        // the all-links criterion — the same campaign the EXPERIMENTS.md
        // interface-vs-assembly delta table and the CI assembly gate
        // run (all-transactions would enumerate ~100k product
        // transactions).  Kills must include the product-only ones, so
        // the row doubles as a cheap conformance gate.
        examples::register_example_targets();
        serve::BuiltinCampaignConfig shop_config;
        shop_config.component = "shop";
        shop_config.generator.criterion = tfm::Criterion::AllEdges;
        std::string shop_error;
        const auto shop = serve::BuiltinCampaign::open(shop_config,
                                                       &shop_error);
        if (shop == nullptr) throw Error("bench: " + shop_error);
        const auto shop_t0 = std::chrono::steady_clock::now();
        std::size_t shop_killed = 0;
        for (const auto& item : shop->items()) {
            if (shop->evaluate(item.mutant_id).fate ==
                mutation::MutantFate::Killed) {
                ++shop_killed;
            }
        }
        const auto shop_t1 = std::chrono::steady_clock::now();
        const double shop_wall =
            std::chrono::duration<double, std::milli>(shop_t1 - shop_t0)
                .count();
        add_row("assembly-shop-all-links-jobs-1", shop->items().size(),
                shop_wall);
        std::cout << "  assembly shop all-links  wall=" << shop_wall
                  << "ms  (" << shop->items().size() << " item(s), "
                  << shop_killed << " killed)\n";
        if (!shop->baseline_clean() || shop_killed == 0) {
            std::cout << "FAIL: assembly campaign unhealthy (baseline "
                      << (shop->baseline_clean() ? "clean" : "DIRTY")
                      << ", " << shop_killed << " kill(s))\n";
            gates_ok = false;
        }

        bool dispatch_identical = true;
        for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
            const DispatchOutcome dispatched = run_dispatched(workers);
            add_row("dispatch-workers-" + std::to_string(workers),
                    dispatched.items, dispatched.wall_ms);
            std::cout << "  dispatch workers=" << workers
                      << "  wall=" << dispatched.wall_ms << "ms  ("
                      << dispatched.items << " item(s))\n";
            for (std::size_t i = 0; i < local.fates.size(); ++i) {
                const auto it = dispatched.fates.find(i);
                if (it == dispatched.fates.end() ||
                    it->second != mutation::to_string(local.fates[i].first)) {
                    dispatch_identical = false;
                }
            }
        }
        // The observability row pair: the same 2-worker dispatch with
        // the full streaming path off and on.  The delta is the cost of
        // distributed tracing + telemetry streaming, and the streaming
        // row must still merge identical fates (observability is a side
        // channel, never a participant).
        const DispatchOutcome obs_off = run_dispatched(2, false);
        const DispatchOutcome obs_on = run_dispatched(2, true);
        add_row("dispatch-workers-2-obs-off", obs_off.items, obs_off.wall_ms);
        add_row("dispatch-workers-2-obs-streaming", obs_on.items,
                obs_on.wall_ms);
        std::cout << "  dispatch workers=2 obs-off        wall="
                  << obs_off.wall_ms << "ms\n"
                  << "  dispatch workers=2 obs-streaming  wall="
                  << obs_on.wall_ms << "ms  (" << obs_on.streamed_events
                  << " streamed event(s), " << obs_on.streamed_spans
                  << " span(s))\n";
        if (obs_on.fates != obs_off.fates) dispatch_identical = false;
        if (obs_on.streamed_events == 0 || obs_on.streamed_spans == 0) {
            std::cout << "FAIL: streaming run produced no streamed "
                         "telemetry\n";
            gates_ok = false;
        }
        // Regression gate for the streaming-telemetry throughput cliff:
        // with batched Telemetry frames (wire minor 3, one write() per
        // work item instead of per span) streaming must stay within 2x
        // of the obs-off run.
        if (obs_on.wall_ms > 2.0 * obs_off.wall_ms) {
            std::cout << "FAIL: streaming telemetry costs >2x obs-off ("
                      << obs_on.wall_ms << "ms vs " << obs_off.wall_ms
                      << "ms)\n";
            gates_ok = false;
        }

        std::cout << "dispatched fates identical to local: "
                  << (dispatch_identical ? "yes" : "NO — DETERMINISM BROKEN")
                  << "\n";
        fates_identical = fates_identical && dispatch_identical && gates_ok;

        std::ofstream out(json_out);
        out << "[\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            out << "  " << rows[i].to_line()
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "]\n";
        std::cout << "wrote " << rows.size() << " row(s) to " << json_out
                  << "\n";
    }

    if (smoke) return fates_identical ? 0 : 1;

    // The scaling gate: only meaningful when the hardware can actually
    // run 4 workers.  Threshold 1.2 leaves margin for CI noise below
    // the >1.5x expected of a healthy 4-core run.
    const double speedup4 = runs[0].wall_ms / runs[2].wall_ms;
    std::cout << "speedup at 4 workers: x" << speedup4
              << (cores >= 4 ? "" : "  (unchecked: <4 cores)") << "\n";
    const bool scaling_ok = cores < 4 || speedup4 > 1.2;
    return fates_identical && scaling_ok ? 0 : 1;
}
