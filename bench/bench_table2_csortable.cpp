// Table 2 reproduction — Experiment 1 of §4.
//
// Interface mutants are seeded into the five methods of CSortableObList
// (Sort1, Sort2, ShellSort, FindMax, FindMin) and the consumer's
// generated suite (transaction coverage over the 16-node / 43-link test
// model) is applied to each mutant.  The paper reports per-operator
// mutation scores of 85.7-98.2% with a 95.7% total over 700 mutants (19
// equivalent), 59 of the 652 kills coming from assertion violations.
//
// Differences from the paper are documented in DESIGN.md §1: mutants are
// enumerated mechanically (schemata), not hand-seeded, so the absolute
// counts differ; equivalence is probe-presumed, not manually analyzed.
#include "bench_util.h"

int main() {
    using namespace stc;
    bench::banner("Table 2 — mutation analysis of CSortableObList (Experiment 1)");

    bench::Experiment experiment;
    const auto suite = experiment.full_suite();
    const auto probe = experiment.probe_suite();
    const auto plan = experiment.incremental_plan(suite);

    std::cout << "\ntest model and suite (seed " << suite.seed << "):\n";
    bench::compare("TFM nodes", "16", std::to_string(suite.model_nodes));
    bench::compare("TFM links", "43", std::to_string(suite.model_links));
    bench::compare("new test cases (retested transactions)", "233",
                   std::to_string(plan.new_cases()));
    bench::compare("test cases reused from CObList", "329",
                   std::to_string(plan.reused_cases()));

    const auto mutants =
        mutation::enumerate_mutants(mfc::descriptors(), "CSortableObList");
    std::cout << "\nmutants enumerated: " << mutants.size() << " (paper: 700)\n";

    const mutation::MutationEngine engine(experiment.registry);
    const auto run = engine.run(suite, mutants, &probe);
    std::cout << "baseline clean: " << (run.baseline_clean ? "yes" : "no") << "\n\n";

    const auto table = mutation::MutationTable::build(run);
    table.render(std::cout, run);

    std::cout << "\npaper vs measured (totals):\n";
    bench::compare("#mutants", "700", std::to_string(run.total()));
    bench::compare("#killed", "652", std::to_string(run.killed()));
    bench::compare("#equivalent", "19", std::to_string(run.equivalent()));
    bench::compare("mutation score", "95.7%", support::percent(run.score()));
    bench::compare(
        "kills due to assertion violation", "59 of 652",
        std::to_string(run.kills_by(oracle::KillReason::Assertion)) + " of " +
            std::to_string(run.killed()));

    std::cout << "\nper-operator scores (paper: BitNeg 85.7%, RepGlob 94.4%, "
                 "RepLoc 98.2%, RepExt 97%, RepReq 95.8%)\n";

    std::cout << "\nassertion-placement guidance (cf. ASSERT++, §5):\n";
    mutation::MutationTable::render_assertion_guidance(std::cout, run);

    std::cout << "\ncsv:\n";
    table.render_csv(std::cout);

    return run.baseline_clean && run.score() > 0.85 ? 0 : 1;
}
