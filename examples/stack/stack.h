// A self-testable *generic* component: the template-class case of
// §3.4.1, where "it is necessary that the tester indicate a set of
// possible types that he/she wants to use to create an instance".
//
// CTypedStack<T> is a bounded LIFO stack with BIT capabilities; the
// accompanying t-spec (stack_component.h) declares the instantiation
// types via a TemplateParam record, and the driver generates one suite
// per instantiation.
#pragma once

#include <ostream>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"

namespace stc::examples {

template <typename T>
class CTypedStack : public bit::BuiltInTest {
public:
    explicit CTypedStack(int capacity = 16) : capacity_(capacity) {
        STC_PRECONDITION(capacity >= 1);
        items_.reserve(static_cast<std::size_t>(capacity));
    }

    void Push(T value) {
        STC_PRECONDITION(!IsFull());
        items_.push_back(value);
        STC_POSTCONDITION(!IsEmpty());
    }

    T Pop() {
        STC_PRECONDITION(!IsEmpty());
        T out = items_.back();
        items_.pop_back();
        return out;
    }

    [[nodiscard]] T Top() const {
        STC_PRECONDITION(!IsEmpty());
        return items_.back();
    }

    [[nodiscard]] int Size() const noexcept { return static_cast<int>(items_.size()); }
    [[nodiscard]] bool IsEmpty() const noexcept { return items_.empty(); }
    [[nodiscard]] bool IsFull() const noexcept {
        return static_cast<int>(items_.size()) >= capacity_;
    }

    void Clear() {
        items_.clear();
        STC_POSTCONDITION(IsEmpty());
    }

    void InvariantTest() const override {
        STC_CLASS_INVARIANT(static_cast<int>(items_.size()) <= capacity_ &&
                            capacity_ >= 1);
    }

    void Reporter(std::ostream& os) const override {
        os << "CTypedStack size=" << items_.size() << "/" << capacity_ << " [";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0) os << ", ";
            os << items_[i];
        }
        os << "]";
    }

private:
    std::vector<T> items_;
    int capacity_;
};

}  // namespace stc::examples
