// Self-testable packaging of the generic CTypedStack<T> component: the
// t-spec with its TemplateParam record, and reflection bindings for the
// instantiations the tester requested (int and double).
#pragma once

#include "stack.h"
#include "stc/reflect/class_binding.h"
#include "stc/tspec/model.h"

namespace stc::examples {

/// t-spec for the generic class, including
/// TemplateParam('T', ['int', 'double']).
[[nodiscard]] tspec::ComponentSpec stack_spec();

/// Bindings for the requested instantiations, registered under their
/// instantiated names "CTypedStack<int>" / "CTypedStack<double>".
void register_stack_instantiations(reflect::Registry& registry);

}  // namespace stc::examples
