#include "stack_component.h"

#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc::examples {

using tspec::MethodCategory;

tspec::ComponentSpec stack_spec() {
    tspec::SpecBuilder b("CTypedStack");
    b.template_param("T", {"int", "double"});
    b.attr_range("capacity_", 1, 1024);

    b.method("m1", "CTypedStack", MethodCategory::Constructor)
        .param_range("capacity", 4, 16);
    b.method("m2", "~CTypedStack", MethodCategory::Destructor);
    b.method("m3", "Push", MethodCategory::New).param_range("value", 0, 100);
    b.method("m4", "Pop", MethodCategory::New, "T");
    b.method("m5", "Top", MethodCategory::New, "T");
    b.method("m6", "Size", MethodCategory::New, "int");
    b.method("m7", "Clear", MethodCategory::New);
    b.method("m8", "IsEmpty", MethodCategory::New, "BOOL");

    // TFM: create -> push (loop) -> {pop | top | clear} -> queries -> die.
    // Every path pops at most as often as it pushed, so the MFC-style
    // preconditions hold on the healthy component.
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});        // Push
    b.node("n3", false, {"m4"});        // Pop
    b.node("n4", false, {"m5"});        // Top
    b.node("n5", false, {"m6", "m8"});  // Size + IsEmpty
    b.node("n6", false, {"m7"});        // Clear
    b.node("n7", false, {"m2"});        // death

    b.edge("n1", "n2").edge("n1", "n5");
    b.edge("n2", "n2").edge("n2", "n3").edge("n2", "n4").edge("n2", "n6");
    b.edge("n3", "n5").edge("n3", "n7");
    b.edge("n4", "n3").edge("n4", "n5");
    b.edge("n5", "n7");
    b.edge("n6", "n5");
    return b.build();
}

namespace {

template <typename T>
reflect::ClassBinding bind_stack(const std::string& instantiated_name) {
    reflect::Binder<CTypedStack<T>> b(instantiated_name);
    b.template ctor<int>();
    b.method("Push", &CTypedStack<T>::Push);
    b.method("Pop", &CTypedStack<T>::Pop);
    b.method("Top", &CTypedStack<T>::Top);
    b.method("Size", &CTypedStack<T>::Size);
    b.method("Clear", &CTypedStack<T>::Clear);
    b.method("IsEmpty", &CTypedStack<T>::IsEmpty);
    return b.take();
}

}  // namespace

void register_stack_instantiations(reflect::Registry& registry) {
    registry.add(bind_stack<int>("CTypedStack<int>"));
    registry.add(bind_stack<double>("CTypedStack<double>"));
}

}  // namespace stc::examples
