// Interclass packaging of the Wallet/Ledger component: per-class t-specs
// (interface only — the test model lives at the system level), the
// system spec with its roles and system TFM, and the reflection
// bindings.
#pragma once

#include <memory>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/interclass/system_spec.h"
#include "stc/reflect/class_binding.h"
#include "wallet.h"

namespace stc::examples {

/// Interface t-spec of Wallet (methods m1..m6).
[[nodiscard]] tspec::ComponentSpec wallet_spec();

/// Interface t-spec of Ledger (methods m1..m4).
[[nodiscard]] tspec::ComponentSpec ledger_spec();

/// The two-role system: wallet (Wallet) + audit (Ledger); the system TFM
/// sequences attach/deposit/withdraw/queries across both objects.
[[nodiscard]] interclass::SystemSpec wallet_system_spec();

/// Individual class bindings.
[[nodiscard]] reflect::ClassBinding wallet_binding();
[[nodiscard]] reflect::ClassBinding ledger_binding();

/// Register both class bindings.
void register_wallet_classes(reflect::Registry& registry);

/// Canonical mutation descriptor registry for Wallet.
[[nodiscard]] const mutation::DescriptorRegistry& wallet_descriptors();

/// Wallet tested *alone* (intraclass): the same interface but with its
/// own single-class TFM; Attach's Ledger parameter is completed with a
/// fresh, unobserved Ledger from `pool`.  This is the §6 counterpoint:
/// collaboration faults invisible to intraclass testing.
[[nodiscard]] tspec::ComponentSpec wallet_intraclass_spec();

/// Arena of Ledger objects for intraclass completions.
class LedgerPool {
public:
    Ledger* make();
    [[nodiscard]] driver::CompletionRegistry completions();
    [[nodiscard]] std::size_t size() const noexcept { return ledgers_.size(); }

private:
    std::vector<std::unique_ptr<Ledger>> ledgers_;
};

}  // namespace stc::examples
