#include "wallet_component.h"

#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc::examples {

using tspec::MethodCategory;

tspec::ComponentSpec wallet_spec() {
    tspec::SpecBuilder b("Wallet");
    b.attr_range("balance_", 0, 1000000);
    b.method("m1", "Wallet", MethodCategory::Constructor);
    b.method("m2", "~Wallet", MethodCategory::Destructor);
    b.method("m3", "Attach", MethodCategory::New).param_pointer("ledger", "Ledger");
    b.method("m4", "Deposit", MethodCategory::New).param_range("amount", 1, 100);
    b.method("m5", "Withdraw", MethodCategory::New, "int")
        .param_range("amount", 1, 100);
    b.method("m6", "Balance", MethodCategory::New, "int");
    return b.build();
}

tspec::ComponentSpec ledger_spec() {
    tspec::SpecBuilder b("Ledger");
    b.method("m1", "Ledger", MethodCategory::Constructor);
    b.method("m2", "~Ledger", MethodCategory::Destructor);
    b.method("m3", "Count", MethodCategory::New, "int");
    b.method("m4", "Total", MethodCategory::New, "int");
    return b.build();
}

interclass::SystemSpec wallet_system_spec() {
    interclass::SystemSpecBuilder b("AuditedWallet");
    b.class_spec(wallet_spec());
    b.class_spec(ledger_spec());
    b.role("wallet", "Wallet", "m1");
    b.role("audit", "Ledger", "m1");

    // System TFM.  The attach call receives the 'audit' role's object —
    // the interclass interaction the generated transactions exercise.
    b.node("s1", true, {{"wallet", "m3"}});                      // Attach(@audit)
    b.node("s2", true, {{"wallet", "m4"}});                      // Deposit (unaudited path)
    b.node("s3", false, {{"wallet", "m4"}});                     // Deposit
    b.node("s4", false, {{"wallet", "m5"}});                     // Withdraw
    b.node("s5", false, {{"wallet", "m6"}, {"audit", "m3"}});    // Balance + Count
    b.node("s6", false, {{"audit", "m4"}});                      // Total

    b.edge("s1", "s3").edge("s2", "s3").edge("s2", "s5");
    b.edge("s3", "s3").edge("s3", "s4").edge("s3", "s5");
    b.edge("s4", "s5").edge("s4", "s6");
    b.edge("s5", "s6");
    return b.build();
}

const mutation::DescriptorRegistry& wallet_descriptors() {
    static const mutation::DescriptorRegistry registry = [] {
        mutation::DescriptorRegistry r;
        register_wallet_descriptors(r);
        return r;
    }();
    return registry;
}

tspec::ComponentSpec wallet_intraclass_spec() {
    tspec::SpecBuilder b("Wallet");
    b.attr_range("balance_", 0, 1000000);
    b.method("m1", "Wallet", MethodCategory::Constructor);
    b.method("m2", "~Wallet", MethodCategory::Destructor);
    b.method("m3", "Attach", MethodCategory::New).param_pointer("ledger", "Ledger");
    b.method("m4", "Deposit", MethodCategory::New).param_range("amount", 1, 100);
    b.method("m5", "Withdraw", MethodCategory::New, "int")
        .param_range("amount", 1, 100);
    b.method("m6", "Balance", MethodCategory::New, "int");

    // Same call shapes as the system TFM, but the Ledger is a tester
    // completion the suite never observes.
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});  // Attach (completed ledger)
    b.node("n3", false, {"m4"});  // Deposit
    b.node("n4", false, {"m5"});  // Withdraw
    b.node("n5", false, {"m6"});  // Balance
    b.node("n6", false, {"m2"});  // death
    b.edge("n1", "n2").edge("n1", "n3").edge("n2", "n3");
    b.edge("n3", "n3").edge("n3", "n4").edge("n3", "n5");
    b.edge("n4", "n5").edge("n4", "n6");
    b.edge("n5", "n6");
    return b.build();
}

Ledger* LedgerPool::make() {
    ledgers_.push_back(std::make_unique<Ledger>());
    return ledgers_.back().get();
}

driver::CompletionRegistry LedgerPool::completions() {
    driver::CompletionRegistry out;
    out.provide("Ledger", [this](support::Pcg32&) {
        return domain::Value::make_pointer(make(), "Ledger");
    });
    return out;
}

reflect::ClassBinding wallet_binding() {
    reflect::Binder<Wallet> b("Wallet");
    b.ctor<>();
    b.method("Attach", &Wallet::Attach);
    b.method("Deposit", &Wallet::Deposit);
    b.method("Withdraw", &Wallet::Withdraw);
    b.method("Balance", &Wallet::Balance);
    return b.take();
}

reflect::ClassBinding ledger_binding() {
    reflect::Binder<Ledger> b("Ledger");
    b.ctor<>();
    b.method("Count", &Ledger::Count);
    b.method("Total", &Ledger::Total);
    return b.take();
}

void register_wallet_classes(reflect::Registry& registry) {
    registry.add(wallet_binding());
    registry.add(ledger_binding());
}

}  // namespace stc::examples
