#include "wallet.h"

#include "stc/mutation/frame.h"

namespace stc::examples {

using mutation::int_type;
using mutation::MethodDescriptor;
using mutation::MutFrame;
using mutation::pointer_type;

namespace {

// Interface-mutation descriptors.  Site ordinals follow the use() calls
// in the bodies below.  The ledger pointer use is the interesting one:
// a mutant replacing it by NULL drops the write-through silently —
// detectable only when the collaborating Ledger is observed (the §6
// interclass argument).

const MethodDescriptor& deposit_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("Wallet", "Deposit")
            .param("amount", int_type())
            .local("credited", int_type())
            .attr("balance_", int_type(), true)
            .attr("ledger_", pointer_type("Ledger"), true)
            .site("balance_", "old balance")    // s0
            .site("credited", "amount added")   // s1
            .site("ledger_", "write-through")   // s2
            .site("credited", "amount booked")  // s3
            .interface_site("amount", "credit") // s4 (DirVar)
            .build();
    return d;
}

const MethodDescriptor& withdraw_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("Wallet", "Withdraw")
            .param("amount", int_type())
            .local("taken", int_type())
            .attr("balance_", int_type(), true)
            .attr("ledger_", pointer_type("Ledger"), true)
            .site("balance_", "overdraw test")  // s0
            .site("balance_", "old balance")    // s1
            .site("taken", "amount deducted")   // s2
            .site("ledger_", "write-through")   // s3
            .site("taken", "booking test")      // s4
            .site("taken", "amount booked")     // s5
            .site("taken", "return value")      // s6
            .interface_site("amount", "overdraw lhs")  // s7 (DirVar)
            .interface_site("amount", "amount taken")  // s8 (DirVar)
            .build();
    return d;
}

}  // namespace

void Wallet::Deposit(int amount) {
    STC_PRECONDITION(amount > 0);

    MutFrame frame(deposit_desc());
    int credited = 0;
    frame.bind("credited", &credited);
    frame.bind("balance_", &balance_);
    frame.bind_ptr("ledger_", &ledger_);

    credited = frame.use(4, amount);
    balance_ = frame.use(0, balance_) + frame.use(1, credited);
    Ledger* ledger = frame.use_ptr(2, ledger_);
    if (ledger != nullptr) ledger->Record(frame.use(3, credited));

    STC_POSTCONDITION(balance_ > 0);
}

int Wallet::Withdraw(int amount) {
    STC_PRECONDITION(amount > 0);

    MutFrame frame(withdraw_desc());
    int taken = 0;
    frame.bind("taken", &taken);
    frame.bind("balance_", &balance_);
    frame.bind_ptr("ledger_", &ledger_);

    taken = frame.use(7, amount) > frame.use(0, balance_) ? balance_
                                                           : frame.use(8, amount);
    balance_ = frame.use(1, balance_) - frame.use(2, taken);
    Ledger* ledger = frame.use_ptr(3, ledger_);
    if (ledger != nullptr && frame.use(4, taken) > 0) {
        ledger->Record(-frame.use(5, taken));
    }

    STC_POSTCONDITION(balance_ >= 0);
    return frame.use(6, taken);
}

void register_wallet_descriptors(mutation::DescriptorRegistry& registry) {
    registry.add(&deposit_desc());
    registry.add(&withdraw_desc());
}

}  // namespace stc::examples
