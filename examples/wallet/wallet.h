// Two collaborating self-testable classes used by the interclass
// example and tests: a Wallet whose deposits/withdrawals write through
// to an attached Ledger — a genuine cross-class interaction (the ledger
// pointer flows in as a method parameter bound to another role).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "stc/mutation/descriptor.h"

namespace stc::examples {

/// Append-only record of balance movements.
class Ledger : public bit::BuiltInTest {
public:
    Ledger() = default;

    void Record(int delta) { entries_.push_back(delta); }

    [[nodiscard]] int Count() const noexcept { return static_cast<int>(entries_.size()); }

    /// Sum of all recorded movements.
    [[nodiscard]] int Total() const noexcept {
        int total = 0;
        for (int d : entries_) total += d;
        return total;
    }

    void InvariantTest() const override {
        STC_CLASS_INVARIANT(entries_.size() < 100000);
    }

    void Reporter(std::ostream& os) const override {
        os << "Ledger{count=" << Count() << ", total=" << Total() << "}";
    }

private:
    std::vector<int> entries_;
};

/// A balance that never goes negative; movements are mirrored into the
/// attached ledger, so "wallet balance == ledger total" is a cross-class
/// property the interclass suite can check.
class Wallet : public bit::BuiltInTest {
public:
    Wallet() = default;

    /// Attach the audit ledger (an interclass parameter).
    void Attach(Ledger* ledger) {
        STC_PRECONDITION(ledger != nullptr);
        ledger_ = ledger;
    }

    /// Add funds; recorded when a ledger is attached.  Instrumented with
    /// interface-mutation sites (interclass mutation experiments).
    void Deposit(int amount);

    /// Withdraw up to `amount`; returns what was actually withdrawn
    /// (never overdraws).  Instrumented.
    int Withdraw(int amount);

    [[nodiscard]] int Balance() const noexcept { return balance_; }
    [[nodiscard]] bool Audited() const noexcept { return ledger_ != nullptr; }

    void InvariantTest() const override { STC_CLASS_INVARIANT(balance_ >= 0); }

    void Reporter(std::ostream& os) const override {
        os << "Wallet{balance=" << balance_
           << ", audited=" << (ledger_ != nullptr ? "yes" : "no") << "}";
    }

private:
    int balance_ = 0;
    Ledger* ledger_ = nullptr;
};

/// Register Wallet's mutation descriptors (Deposit, Withdraw) — the
/// targets of the interclass mutation experiment.
void register_wallet_descriptors(mutation::DescriptorRegistry& registry);

}  // namespace stc::examples
