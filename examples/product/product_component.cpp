#include "product_component.h"

#include "stc/reflect/binder.h"
#include "stc/support/error.h"
#include "stc/tspec/builder.h"
#include "stc/tspec/parser.h"

namespace stc::examples {

using domain::Value;
using reflect::Args;
using tspec::MethodCategory;

Provider* ProviderPool::make(int id) {
    providers_.push_back(
        std::make_unique<Provider>(id, "provider-" + std::to_string(id)));
    return providers_.back().get();
}

driver::CompletionRegistry::Completion ProviderPool::completion() {
    return [this](support::Pcg32& rng) {
        Provider* provider = make(static_cast<int>(rng.uniform(1, 99)));
        return Value::make_pointer(provider, "Provider");
    };
}

std::string product_tspec_text() {
    // Fig. 3's record format, verbatim style.
    return R"(// t-spec for the Product component (paper Figs. 1-3)
Class ('Product', No, <empty>, ['product.cpp'])

Attribute ('qty', range, 0, 99999)
Attribute ('name', string, 0, 30)
Attribute ('price', range, 0.0, 99999.0)
Attribute ('prov', pointer, 'Provider')

Method (m1, 'Product', <empty>, constructor, 0)
Method (m2, 'Product', <empty>, constructor, 4)
Parameter (m2, 'q', range, 0, 99999)
Parameter (m2, 'n', string, ['Mary', 'soap', 'towel', 'bread'])
Parameter (m2, 'p', range, 0.01, 9999.99)
Parameter (m2, 'prv', pointer, 'Provider')
Method (m3, 'Product', <empty>, constructor, 1)
Parameter (m3, 'n', string, 1, 30)
Method (m4, '~Product', <empty>, destructor, 0)
Method (m5, 'UpdateName', <empty>, new, 1)
Parameter (m5, 'n', string, ['p1', 'p2', 'p3'])
Method (m6, 'UpdateQty', <empty>, new, 1)
Parameter (m6, 'q', range, 0, 99999)
Method (m7, 'UpdatePrice', <empty>, new, 1)
Parameter (m7, 'p', range, 0.01, 9999.99)
Method (m8, 'UpdateProv', <empty>, new, 1)
Parameter (m8, 'prv', pointer, 'Provider')
Method (m9, 'ShowAttributes', 'string', new, 0)
Method (m10, 'InsertProduct', 'int', new, 0)
Method (m11, 'RemoveProduct', 'Product*', new, 0)

Node (n1, Yes, 2, [m1])
Node (n2, Yes, 2, [m2])
Node (n3, Yes, 2, [m3])
Node (n4, No, 2, [m5])
Node (n5, No, 1, [m6])
Node (n6, No, 1, [m7])
Node (n7, No, 2, [m8])
Node (n8, No, 2, [m9])
Node (n9, No, 2, [m10])
Node (n10, No, 1, [m11])
Node (n11, No, 0, [m4])

Edge (n1, n4)
Edge (n1, n5)
Edge (n2, n8)
Edge (n2, n9)
Edge (n3, n5)
Edge (n3, n6)
Edge (n4, n5)
Edge (n4, n9)
Edge (n5, n6)
Edge (n6, n7)
Edge (n7, n8)
Edge (n7, n9)
Edge (n8, n10)
Edge (n8, n11)
Edge (n9, n8)
Edge (n9, n10)
Edge (n10, n11)
)";
}

tspec::ComponentSpec product_spec() {
    tspec::ComponentSpec spec = tspec::parse_tspec(product_tspec_text());
    spec.ensure_valid();
    return spec;
}

reflect::ClassBinding product_binding() {
    reflect::Binder<Product> b("Product");
    b.ctor<>();
    b.ctor<int, const char*, float, Provider*>();
    b.ctor<const char*>();
    b.method("UpdateName", &Product::UpdateName);
    b.method("UpdateQty", &Product::UpdateQty);
    b.method("UpdatePrice", &Product::UpdatePrice);
    b.method("UpdateProv", &Product::UpdateProv);
    b.method("ShowAttributes", &Product::ShowAttributes);
    b.method("InsertProduct", &Product::InsertProduct);
    b.custom("RemoveProduct", 0, [](Product& product, const Args&) {
        Product* removed = product.RemoveProduct();
        return Value::make_string(removed != nullptr ? "removed" : "<absent>");
    });
    return b.take();
}

driver::CompletionRegistry product_completions(ProviderPool& pool) {
    driver::CompletionRegistry out;
    out.provide("Provider", pool.completion());
    return out;
}

tfm::Transaction product_use_case_path(const tfm::Graph& graph) {
    // "1. Create a Product object. 2. Obtain data about this product from
    //  the database. 3. Remove the product from the database. 4. Destroy
    //  the object."  (§3.2)
    tfm::Transaction t;
    for (const char* id : {"n2", "n8", "n10", "n11"}) {
        const auto node = graph.find_node(id);
        if (!node) throw SpecError(std::string("use-case node missing: ") + id);
        t.path.push_back(*node);
    }
    return t;
}

}  // namespace stc::examples
