// Self-testable packaging of the Product component: the t-spec of
// Fig. 3 (interface + value domains + the Fig. 2 TFM), the reflection
// binding, and the Provider completion — everything §3.1's producer
// tasks require.
#pragma once

#include <memory>
#include <vector>

#include "product.h"
#include "stc/driver/generator.h"
#include "stc/reflect/class_binding.h"
#include "stc/tfm/graph.h"
#include "stc/tspec/model.h"

namespace stc::examples {

/// Arena of Provider objects used to complete 'Provider' parameters.
class ProviderPool {
public:
    Provider* make(int id);
    [[nodiscard]] driver::CompletionRegistry::Completion completion();
    [[nodiscard]] std::size_t size() const noexcept { return providers_.size(); }

private:
    std::vector<std::unique_ptr<Provider>> providers_;
};

/// The t-spec of Fig. 3 (programmatic form).
[[nodiscard]] tspec::ComponentSpec product_spec();

/// The same t-spec as Fig. 3's text format (exercises the parser path).
[[nodiscard]] std::string product_tspec_text();

/// Reflection binding for Product.
[[nodiscard]] reflect::ClassBinding product_binding();

/// Completions (Provider parameters) wired to `pool`.
[[nodiscard]] driver::CompletionRegistry product_completions(ProviderPool& pool);

/// The use-case scenario path of Fig. 2 ("create, obtain data, remove
/// from database, destroy") as a transaction over `graph` — used by the
/// figure bench to highlight it in the DOT rendering.
[[nodiscard]] tfm::Transaction product_use_case_path(const tfm::Graph& graph);

}  // namespace stc::examples
