#include "product.h"

#include <sstream>

#include "stc/bit/assertions.h"

namespace stc::examples {

StockDatabase& StockDatabase::instance() {
    static StockDatabase db;
    return db;
}

bool StockDatabase::insert(Product* product) { return rows_.insert(product).second; }

bool StockDatabase::remove(Product* product) { return rows_.erase(product) != 0; }

bool StockDatabase::contains(const Product* product) const {
    return rows_.count(const_cast<Product*>(product)) != 0;
}

void StockDatabase::clear() { rows_.clear(); }

Product::Product() : name_("unnamed") {}

Product::Product(int q, const char* n, float p, Provider* prv)
    : qty_(q), name_(n != nullptr ? n : ""), price_(p), prov_(prv) {
    STC_PRECONDITION(q >= 0 && q <= kMaxQty);
    STC_PRECONDITION(p >= 0.0F);
}

Product::Product(const char* n) : name_(n != nullptr ? n : "") {
    STC_PRECONDITION(n != nullptr);
}

Product::~Product() {
    // Leaving the database on destruction keeps the simulated rows from
    // dangling across test cases.
    StockDatabase::instance().remove(this);
}

void Product::UpdateName(const char* n) {
    STC_PRECONDITION(n != nullptr);
    name_ = n;
    STC_POSTCONDITION(name_.size() <= kMaxNameLen);
}

void Product::UpdateQty(int q) {
    STC_PRECONDITION(q >= 0 && q <= kMaxQty);
    qty_ = q;
}

void Product::UpdatePrice(float p) {
    STC_PRECONDITION(p >= 0.0F);
    price_ = p;
}

void Product::UpdateProv(Provider* prv) {
    STC_PRECONDITION(prv != nullptr);
    prov_ = prv;
}

std::string Product::ShowAttributes() const {
    std::ostringstream os;
    Reporter(os);
    return os.str();
}

int Product::InsertProduct() {
    const bool inserted = StockDatabase::instance().insert(this);
    STC_POSTCONDITION(in_database());
    return inserted ? 1 : 0;
}

Product* Product::RemoveProduct() {
    if (!in_database()) return nullptr;
    StockDatabase::instance().remove(this);
    STC_POSTCONDITION(!in_database());
    return this;
}

bool Product::in_database() const { return StockDatabase::instance().contains(this); }

void Product::InvariantTest() const {
    STC_CLASS_INVARIANT(qty_ >= 0 && qty_ <= kMaxQty && price_ >= 0.0F &&
                        name_.size() <= kMaxNameLen);
}

void Product::Reporter(std::ostream& os) const {
    os << "Product{qty=" << qty_ << ", name=" << name_ << ", price=" << price_
       << ", prov=" << (prov_ != nullptr ? prov_->name() : "<none>")
       << ", in_db=" << (in_database() ? "yes" : "no") << "}";
}

}  // namespace stc::examples
