// The paper's running example (Fig. 1): class Product from the stock
// control system of a warehouse, made self-testable.  The product is
// obtained from a Provider; products can be inserted into / removed from
// the stock database (simulated in-memory — the paper's case study used
// a real application database).
#pragma once

#include <ostream>
#include <set>
#include <string>

#include "stc/bit/built_in_test.h"

namespace stc::examples {

/// Supplier of a product (the paper: "another class of this system that
/// does not matter for this example").
class Provider {
public:
    Provider(int id, std::string name) : id_(id), name_(std::move(name)) {}

    [[nodiscard]] int id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    int id_;
    std::string name_;
};

class Product;

/// In-memory stand-in for the warehouse stock database.
class StockDatabase {
public:
    [[nodiscard]] static StockDatabase& instance();

    /// Returns true when the product was inserted (false: already there).
    bool insert(Product* product);
    /// Returns true when the product was present and removed.
    bool remove(Product* product);
    [[nodiscard]] bool contains(const Product* product) const;
    [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
    void clear();

private:
    std::set<Product*> rows_;
};

/// Fig. 1's class, with the BIT capabilities of §3.3 added by its
/// producer: BuiltInTest inheritance, class invariant (quantity/price
/// ranges, bounded name) and a Reporter dumping the attributes.
class Product : public bit::BuiltInTest {
public:
    static constexpr int kMaxQty = 99999;
    static constexpr std::size_t kMaxNameLen = 30;

    Product();
    Product(int q, const char* n, float p, Provider* prv);
    explicit Product(const char* n);
    ~Product() override;

    Product(const Product&) = delete;
    Product& operator=(const Product&) = delete;

    // Update methods (Fig. 1).
    void UpdateName(const char* n);
    void UpdateQty(int q);
    void UpdatePrice(float p);
    void UpdateProv(Provider* prv);

    /// Access method.  The paper's version printed to the console; this
    /// one returns the text so drivers can capture it deterministically.
    [[nodiscard]] std::string ShowAttributes() const;

    // Insert/delete from database (Fig. 1).
    int InsertProduct();
    Product* RemoveProduct();

    [[nodiscard]] int qty() const noexcept { return qty_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] float price() const noexcept { return price_; }
    [[nodiscard]] Provider* provider() const noexcept { return prov_; }
    [[nodiscard]] bool in_database() const;

    // Built-in test capabilities.
    void InvariantTest() const override;
    void Reporter(std::ostream& os) const override;

private:
    int qty_ = 0;
    std::string name_;
    float price_ = 0.0F;
    Provider* prov_ = nullptr;
};

}  // namespace stc::examples
