// Composition reuse (§2.1): Inventory composes the self-testable
// CSortableObList as an attribute.  The consumer first accepts the
// composed part by running ITS embedded tests unchanged, then runs the
// whole's own suite — whose invariant delegates to the part's BIT.
#include <iostream>

#include "inventory_component.h"
#include "stc/core/self_testable.h"
#include "stc/mfc/component.h"

int main() {
    using namespace stc;

    // ---- Step 1: accept the composed part with its own test resources ----
    mfc::ElementPool elements;
    core::SelfTestableComponent part(mfc::sortable_spec(), mfc::sortable_binding());
    part.set_completions(mfc::make_completions(elements));
    const auto part_report = part.self_test();
    std::cout << "== composed part: CSortableObList (tests reused unchanged) ==\n"
              << part_report.summary() << "\n";

    // ---- Step 2: self-test the whole -------------------------------------
    core::SelfTestableComponent whole(examples::inventory_spec(),
                                      examples::inventory_binding());
    const auto whole_report = whole.self_test();
    std::cout << "== composing whole: Inventory ==\n" << whole_report.summary();
    std::cout << "\n(the Inventory invariant delegates to the composed list's "
                 "InvariantTest — the part's BIT keeps guarding it inside the "
                 "whole)\n\n";

    // ---- Step 3: normal application use -----------------------------------
    examples::Inventory inventory;
    for (int sku : {450, 12, 890, 333}) inventory.Receive(sku);
    std::cout << "== warehouse run ==\n"
              << "on hand after receiving: " << inventory.OnHand() << "\n"
              << "cheapest SKU: " << inventory.CheapestSku() << "\n"
              << "shipped: " << inventory.Ship() << ", " << inventory.Ship() << "\n"
              << "on hand now: " << inventory.OnHand() << "\n";

    const bool ok = part_report.all_passed() && whole_report.all_passed() &&
                    inventory.OnHand() == 2 && inventory.CheapestSku() == 450;
    std::cout << (ok ? "composition scenario OK\n" : "FAILED\n");
    return ok ? 0 : 1;
}
