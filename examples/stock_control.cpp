// Warehouse stock-control scenario (the domain the paper's example is
// drawn from, §3.2): the application composes Product objects as regular
// domain objects, then — before relying on the component — runs its
// embedded self-test and stores the testing history for the next reuse.
//
// Demonstrates: component reuse by composition (§2.1), boundary-value
// generation policy, test history persistence (§3.4.2).
#include <fstream>
#include <iostream>
#include <sstream>

#include "product_component.h"
#include "stc/core/self_testable.h"
#include "stc/history/incremental.h"

namespace {

/// The consuming application: a tiny warehouse ledger built by
/// composition — Product instances are attributes of the application
/// object, the component itself is not modified (§3.4.2: "in this case,
/// test resources can be reused without modifications").
class Warehouse {
public:
    void stock(stc::examples::Product& product, int quantity) {
        product.UpdateQty(quantity);
        product.InsertProduct();
        ++movements_;
    }

    void unstock(stc::examples::Product& product) {
        product.RemoveProduct();
        ++movements_;
    }

    [[nodiscard]] int movements() const noexcept { return movements_; }

private:
    int movements_ = 0;
};

}  // namespace

int main() {
    using namespace stc;

    // ---- Acceptance gate: self-test the component before reuse -------------
    core::SelfTestableComponent component(examples::product_spec(),
                                          examples::product_binding());
    examples::ProviderPool providers;
    component.set_completions(examples::product_completions(providers));

    // Random values (the paper's policy) ...
    driver::GeneratorOptions random_policy;
    random_policy.seed = 7;
    const auto random_suite = component.generate_tests(random_policy);
    const auto random_report = component.self_test(random_suite);

    // ... plus the boundary-value extension for the same transactions.
    driver::GeneratorOptions boundary_policy;
    boundary_policy.seed = 7;
    boundary_policy.value_policy = driver::ValuePolicy::Boundary;
    boundary_policy.cases_per_transaction = 2;  // cycle both domain ends
    const auto boundary_report = component.self_test(boundary_policy);

    std::cout << "== component acceptance ==\n"
              << random_report.summary() << "\n"
              << "boundary-value sweep:\n"
              << boundary_report.summary() << "\n";
    if (!random_report.all_passed() || !boundary_report.all_passed()) {
        std::cout << "component rejected\n";
        return 1;
    }

    // ---- Persist the testing history for the next reuse ---------------------
    const history::TestHistory test_history =
        history::TestHistory::from_suite(random_suite);
    std::ostringstream saved;
    test_history.save(saved);
    std::cout << "testing history (" << test_history.entries().size()
              << " entries) persisted; first lines:\n";
    std::istringstream lines(saved.str());
    std::string line;
    for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
        std::cout << "  " << line << "\n";
    }
    std::cout << "\n";

    // ---- Normal application use (composition) --------------------------------
    Warehouse warehouse;
    examples::Provider acme(1, "acme");
    examples::Product soap(120, "soap", 1.99F, &acme);
    examples::Product towel("towel");

    warehouse.stock(soap, 240);
    warehouse.stock(towel, 12);
    warehouse.unstock(soap);

    std::cout << "== warehouse run ==\n"
              << "movements: " << warehouse.movements() << "\n"
              << "soap:  " << soap.ShowAttributes() << "\n"
              << "towel: " << towel.ShowAttributes() << "\n";

    const bool ok = warehouse.movements() == 3 && !soap.in_database() &&
                    towel.in_database();
    std::cout << (ok ? "scenario OK\n" : "scenario FAILED\n");
    return ok ? 0 : 1;
}
