// Mutation-analysis walk-through (§4): enumerate the interface mutants
// of CObList's instrumented methods, activate them one at a time, and
// watch the generated suite kill them — printing a per-method x
// per-operator table in the shape of the paper's Tables 2/3.
#include <iostream>

#include "stc/core/self_testable.h"
#include "stc/mfc/component.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/report.h"

int main() {
    using namespace stc;

    mfc::ElementPool elements;
    core::SelfTestableComponent component(mfc::coblist_spec(), mfc::coblist_binding());
    component.set_completions(mfc::make_completions(elements));

    const auto suite = component.generate_tests();
    std::cout << "suite: " << suite.size() << " test case(s) over "
              << suite.model_nodes << " node(s) / " << suite.model_links
              << " link(s)\n\n";

    // Show a few concrete mutants so the fault model is tangible.
    const auto mutants = mutation::enumerate_mutants(mfc::descriptors(), "CObList");
    std::cout << "enumerated " << mutants.size()
              << " interface mutants; examples:\n";
    for (std::size_t i = 0; i < mutants.size(); i += mutants.size() / 5) {
        std::cout << "  " << mutants[i].id() << "\n";
    }
    std::cout << "\n";

    // Probe suite: a larger, differently seeded sweep used only to
    // separate equivalent mutants from genuinely missed ones.
    driver::GeneratorOptions probe_options;
    probe_options.seed = 20011202;
    probe_options.cases_per_transaction = 2;
    const auto probe = component.generate_tests(probe_options);

    reflect::Registry registry;
    mfc::register_mfc(registry);
    const mutation::MutationEngine engine(registry);
    const auto run = engine.run(suite, mutants, &probe);

    std::cout << "baseline clean: " << (run.baseline_clean ? "yes" : "no") << "\n\n";
    const auto table = mutation::MutationTable::build(run);
    table.render(std::cout, run);

    std::cout << "\nmutation score: " << run.score() * 100.0 << "%\n";
    return run.baseline_clean ? 0 : 1;
}
