// Driver source generation (Figs. 6-7): C++ has no reflection, so the
// paper's Concat emits C++ *source* drivers.  This demo generates the
// driver translation unit for a small Product suite and prints it; the
// suite becomes executable once the tester supplies the
// tester_supplied_Provider() completion hook — exactly the "completed
// with the values of structured parameter types" step of §3.4.1.
#include <fstream>
#include <iostream>

#include "product_component.h"
#include "stc/codegen/driver_codegen.h"
#include "stc/core/self_testable.h"

int main(int argc, char** argv) {
    using namespace stc;

    core::SelfTestableComponent component(examples::product_spec(),
                                          examples::product_binding());
    // Deliberately no completions: the generated source carries the
    // tester-completion hooks instead.
    driver::GeneratorOptions options;
    options.seed = 2001;
    options.enumeration.max_node_visits = 1;  // keep the demo readable
    const auto suite = component.generate_tests(options);

    codegen::CodegenOptions cg;
    cg.includes = {"product.h"};
    cg.usings = {"stc::examples"};
    const codegen::DriverCodegen generator(component.spec(), cg);
    const std::string source = generator.suite_source(suite);

    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << source;
        std::cout << "wrote " << source.size() << " bytes of driver source to "
                  << argv[1] << "\n";
    } else {
        std::cout << source;
    }

    std::cerr << "(suite: " << suite.size() << " test cases; completion hooks: ";
    for (const auto& cls : generator.completion_classes(suite)) std::cerr << cls << " ";
    std::cerr << ")\n";
    return 0;
}
