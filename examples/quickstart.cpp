// Quickstart: the full producer + consumer workflow of the paper (§3.1)
// on the Product component of Figs. 1-3.
//
//   producer: embed the t-spec (interface + TFM) and BIT instrumentation
//   consumer: generate tests from the t-spec, run in test mode, analyze
//
// Build & run:  ./examples/example_quickstart
#include <iostream>

#include "product_component.h"
#include "stc/core/self_testable.h"
#include "stc/tspec/parser.h"

int main() {
    using namespace stc;

    // ---- Producer side -----------------------------------------------------
    // The t-spec ships with the component; here it is the Fig. 3 text,
    // parsed into the model the Driver Generator consumes.
    const tspec::ComponentSpec spec = examples::product_spec();
    std::cout << "== t-spec (round-tripped through the parser) ==\n"
              << tspec::print_tspec(spec) << "\n";

    core::SelfTestableComponent component(spec, examples::product_binding());

    // ---- Consumer side -------------------------------------------------------
    // Structured parameters (Provider*) are completed by the tester.
    examples::ProviderPool providers;
    component.set_completions(examples::product_completions(providers));

    // Task 1: generate test cases per the transaction-coverage criterion.
    driver::GeneratorOptions options;
    options.seed = 42;
    const driver::TestSuite suite = component.generate_tests(options);
    std::cout << "== generated suite ==\n"
              << "transactions: " << suite.transactions_enumerated
              << ", test cases: " << suite.size() << "\n\n";

    std::cout << "first test case (" << suite.cases.front().id << ") exercises "
              << suite.cases.front().transaction_text << ":\n";
    for (const auto& call : suite.cases.front().calls) {
        std::cout << "  " << call.render() << "\n";
    }
    std::cout << "\n";

    // Tasks 2-4: execute in test mode and analyze.
    const core::SelfTestReport report = component.self_test(suite);
    std::cout << "== self-test report ==\n" << report.summary() << "\n";

    std::cout << "excerpt of the Result.txt-style log:\n";
    std::cout << report.result.results.front().log;
    std::cout << report.result.results.front().report << "\n";

    return report.all_passed() ? 0 : 1;
}
