// Self-testable packaging of Inventory (t-spec + binding).
#pragma once

#include "inventory.h"
#include "stc/reflect/class_binding.h"
#include "stc/tspec/model.h"

namespace stc::examples {

/// t-spec for Inventory: receive/ship lifecycle with queries.
[[nodiscard]] tspec::ComponentSpec inventory_spec();

[[nodiscard]] reflect::ClassBinding inventory_binding();

}  // namespace stc::examples
