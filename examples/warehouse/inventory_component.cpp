#include "inventory_component.h"

#include "stc/reflect/binder.h"
#include "stc/tspec/builder.h"

namespace stc::examples {

using tspec::MethodCategory;

tspec::ComponentSpec inventory_spec() {
    tspec::SpecBuilder b("Inventory");
    b.method("m1", "Inventory", MethodCategory::Constructor);
    b.method("m2", "~Inventory", MethodCategory::Destructor);
    b.method("m3", "Receive", MethodCategory::New).param_range("sku", 0, 9999);
    b.method("m4", "Ship", MethodCategory::New, "int");
    b.method("m5", "OnHand", MethodCategory::New, "int");
    b.method("m6", "CheapestSku", MethodCategory::New, "int");

    // Receive/ship lifecycle.  Ship is defensive on empty stock, so every
    // path is executable.
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});  // Receive
    b.node("n3", false, {"m4"});  // Ship
    b.node("n4", false, {"m5"});  // OnHand
    b.node("n5", false, {"m6"});  // CheapestSku
    b.node("n6", false, {"m2"});  // death
    b.edge("n1", "n2").edge("n1", "n3");
    b.edge("n2", "n2").edge("n2", "n3").edge("n2", "n5");
    b.edge("n3", "n3").edge("n3", "n4");
    b.edge("n4", "n6").edge("n4", "n2");
    b.edge("n5", "n3").edge("n5", "n6");
    return b.build();
}

reflect::ClassBinding inventory_binding() {
    reflect::Binder<Inventory> b("Inventory");
    b.ctor<>();
    b.method("Receive", &Inventory::Receive);
    b.method("Ship", &Inventory::Ship);
    b.method("OnHand", &Inventory::OnHand);
    b.method("CheapestSku", &Inventory::CheapestSku);
    return b.take();
}

}  // namespace stc::examples
