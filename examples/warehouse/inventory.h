// Reuse by composition (§2.1): "an attribute is declared as a class ...
// In this case, test resources can be reused without modifications."
//
// Inventory is a self-testable component that *composes* the
// self-testable CSortableObList: the list is an attribute, its own
// embedded test resources remain valid untouched, and Inventory's
// built-in test capabilities delegate to the composed component's BIT —
// the invariant of the whole includes the invariant of the part.
#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "stc/mfc/sortable.h"

namespace stc::examples {

/// Warehouse stock ledger: items (SKUs) held in a sorted list so the
/// cheapest item ships first.
class Inventory : public bit::BuiltInTest {
public:
    Inventory() = default;

    /// Receive an item with the given SKU into stock.
    void Receive(int sku) {
        STC_PRECONDITION(sku >= 0);
        items_.push_back(std::make_unique<mfc::CInt>(sku));
        stock_.AddTail(items_.back().get());
        ++received_;
    }

    /// Ship the lowest-SKU item; returns its SKU.  No-op (-1) when empty
    /// — the defensive behaviour the consumer's tester would write.
    int Ship() {
        if (stock_.IsEmpty()) return -1;
        stock_.Sort1();
        auto* item = dynamic_cast<mfc::CInt*>(stock_.RemoveHead());
        ++shipped_;
        STC_POSTCONDITION(item != nullptr);
        return item->value();
    }

    [[nodiscard]] int OnHand() const { return stock_.GetCount(); }
    [[nodiscard]] int Received() const noexcept { return received_; }
    [[nodiscard]] int Shipped() const noexcept { return shipped_; }

    /// Lowest SKU currently in stock (-1 when empty).
    [[nodiscard]] int CheapestSku() const {
        if (stock_.IsEmpty()) return -1;
        return dynamic_cast<mfc::CInt*>(stock_.FindMin())->value();
    }

    // ---- Built-in test capabilities (delegating composition) ----------
    void InvariantTest() const override {
        // Inventory's own book-keeping invariant...
        STC_CLASS_INVARIANT(received_ - shipped_ == OnHand() && shipped_ >= 0);
        // ...and the composed component's invariant, through its BIT
        // interface: the part's test resources reused without change.
        stock_.InvariantTest();
    }

    void Reporter(std::ostream& os) const override {
        os << "Inventory{on_hand=" << OnHand() << ", received=" << received_
           << ", shipped=" << shipped_ << ", stock=";
        stock_.Reporter(os);
        os << "}";
    }

private:
    mfc::CSortableObList stock_;
    std::vector<std::unique_ptr<mfc::CInt>> items_;  ///< element ownership
    int received_ = 0;
    int shipped_ = 0;
};

}  // namespace stc::examples
