// Interclass testing (the paper's §6 extension): a component made of two
// collaborating classes — Wallet and its audit Ledger — described by a
// system-level TFM whose transactions pass one role's object into
// another role's method.  The suite checks the cross-class property
// "wallet balance == ledger total" with a manually derived oracle on
// every audited transaction.
#include <iostream>

#include "stc/interclass/system_driver.h"
#include "stc/oracle/oracle.h"
#include "wallet_component.h"

int main() {
    using namespace stc;

    const auto system = examples::wallet_system_spec();
    std::cout << "== interclass component: " << system.component_name << " ==\n"
              << "roles:";
    for (const auto& role : system.roles) {
        std::cout << " " << role.role << ":" << role.class_name;
    }
    std::cout << "\n";

    interclass::SystemDriverGenerator generator(system);
    const auto suite = generator.generate();
    std::cout << "system TFM: " << suite.model_nodes << " node(s), "
              << suite.model_links << " link(s); transactions: "
              << suite.transactions_enumerated << "\n\n";

    std::cout << "sample transaction (" << suite.cases.front().id << "): "
              << suite.cases.front().transaction_text << "\n";
    for (const auto& call : suite.cases.front().body) {
        std::cout << "  " << call.render() << "\n";
    }
    std::cout << "\n";

    reflect::Registry registry;
    examples::register_wallet_classes(registry);
    const interclass::SystemRunner runner(registry);
    const auto result = runner.run(system, suite);

    std::cout << "run: " << result.passed() << "/" << suite.size() << " passed\n";

    // Cross-class manual oracle: on every audited transaction the final
    // reports must agree (balance == ledger total).  Unaudited paths (no
    // Attach) legitimately diverge.
    std::size_t audited = 0;
    std::size_t consistent = 0;
    for (const auto& r : result.results) {
        const auto balance_pos = r.report.find("Wallet{balance=");
        const auto total_pos = r.report.find("total=");
        if (balance_pos == std::string::npos || total_pos == std::string::npos) continue;
        if (r.report.find("audited=yes") == std::string::npos) continue;
        ++audited;
        const int balance = std::stoi(r.report.substr(balance_pos + 15));
        const int total = std::stoi(r.report.substr(total_pos + 6));
        consistent += balance == total ? 1 : 0;
    }
    std::cout << "cross-class oracle (balance == ledger total): " << consistent << "/"
              << audited << " audited transactions consistent\n";

    const bool ok = result.failed() == 0 && audited > 0 && consistent == audited;
    std::cout << (ok ? "interclass suite green\n" : "FAILURES\n");
    return ok ? 0 : 1;
}
