// Till-and-stock coordinator of the shop assembly: Purchase pays for an
// item out of the wallet and shelves it; Sell ships the cheapest item
// and banks the price.  StockControl itself never touches the audit
// Ledger — the bookings are the Wallet's own write-through obligation,
// which is exactly why the assembly wires Withdraw/Deposit to
// Ledger.Record as `emits` (must-emit) hidden actions.
#pragma once

#include <ostream>

#include "inventory.h"
#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "wallet.h"

namespace stc::examples {

class StockControl : public bit::BuiltInTest {
public:
    StockControl(Wallet* wallet, Inventory* stock)
        : wallet_(wallet), stock_(stock) {
        STC_PRECONDITION(wallet != nullptr && stock != nullptr);
    }

    /// Pay `cost` from the wallet, shelve item `sku`; returns the amount
    /// actually paid.
    int Purchase(int sku, int cost) {
        STC_PRECONDITION(sku >= 0 && cost > 0);
        const int paid = wallet_->Withdraw(cost);
        stock_->Receive(sku);
        ++purchases_;
        return paid;
    }

    /// Ship the cheapest item, bank `price`; returns the shipped SKU.
    /// The assembly's control TFM only enables Sell with stock on hand,
    /// so shipping never comes up empty.
    int Sell(int price) {
        STC_PRECONDITION(price > 0);
        const int sku = stock_->Ship();
        STC_POSTCONDITION(sku >= 0);
        wallet_->Deposit(price);
        ++sales_;
        return sku;
    }

    [[nodiscard]] int Purchases() const noexcept { return purchases_; }
    [[nodiscard]] int Sales() const noexcept { return sales_; }

    void InvariantTest() const override {
        STC_CLASS_INVARIANT(purchases_ >= 0 && sales_ >= 0 &&
                            sales_ <= purchases_);
    }

    void Reporter(std::ostream& os) const override {
        os << "StockControl{purchases=" << purchases_ << ", sales=" << sales_
           << "}";
    }

private:
    Wallet* wallet_;
    Inventory* stock_;
    int purchases_ = 0;
    int sales_ = 0;
};

}  // namespace stc::examples
