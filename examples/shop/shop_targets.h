// Campaign-target registration for the example components: "wallet"
// (the intraclass Wallet campaign — the §6 counterpoint where
// collaboration faults survive) and "shop" (the assembly product —
// the same Wallet mutants hunted through the composed interface).
#pragma once

namespace stc::examples {

/// Register the "wallet" and "shop" targets with the serve registry
/// (stc::serve::register_builtin_target).  Idempotent; call once from
/// main() before resolving campaign targets.
void register_example_targets();

}  // namespace stc::examples
