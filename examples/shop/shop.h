// The assembled shop (GUIDE §12): Wallet + Ledger + Inventory glued by
// StockControl and exported as ONE self-testable component.  The
// role-to-role calls — Purchase→Withdraw→Record, Sell→Ship/Deposit→
// Record — are the hidden actions of the assembly product
// (stc::assembly); only Purchase/Sell/Balance/OnHand/AuditCount are
// observable.
//
// The two ledger write-throughs are `emits` wires in shop.tspec: the
// facade checks them with STC_MUST_EMIT, so a component that silently
// absorbs the booking (the classic write-through-dropped-by-NULL
// collaboration fault) dies with Verdict::IllegalQuiescence — the ioco
// notion of illegal quiescence — instead of surviving unobserved as it
// does under the intraclass wallet campaign.
#pragma once

#include <ostream>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "stock_control.h"

namespace stc::examples {

class Shop : public bit::BuiltInTest {
public:
    /// Till float deposited at birth.  Campaign transactions are bounded
    /// (costs at most 100 per step, paths at most a few hundred steps),
    /// so the wallet never runs dry: every hidden Withdraw really moves
    /// money and therefore MUST book with the audit ledger.
    static constexpr int kFloat = 1000000;

    Shop() : control_(&wallet_, &stock_) {
        wallet_.Attach(&ledger_);
        wallet_.Deposit(kFloat);
        audit_base_ = ledger_.Count();  // the float booking is not a trade
    }

    int Purchase(int sku, int cost) {
        const int before = ledger_.Count();
        const int paid = control_.Purchase(sku, cost);
        STC_MUST_EMIT("ledger.Record", ledger_.Count() > before,
                      "a purchase must book its payment with the audit ledger");
        return paid;
    }

    int Sell(int price) {
        const int before = ledger_.Count();
        const int sku = control_.Sell(price);
        STC_MUST_EMIT("ledger.Record", ledger_.Count() > before,
                      "a sale must book its takings with the audit ledger");
        return sku;
    }

    [[nodiscard]] int Balance() const { return wallet_.Balance(); }
    [[nodiscard]] int OnHand() const { return stock_.OnHand(); }

    /// Trade bookings observed on the audit ledger (the float excluded).
    [[nodiscard]] int AuditCount() const {
        return ledger_.Count() - audit_base_;
    }

    // ---- Built-in test capabilities (delegating composition) ----------
    void InvariantTest() const override {
        // Bookings never exceed trades (duplicates would show here; a
        // *dropped* booking is the must-emit obligation above, left to
        // the quiescence check so the kill reason stays honest).
        STC_CLASS_INVARIANT(AuditCount() >= 0 &&
                            AuditCount() <=
                                control_.Purchases() + control_.Sales());
        wallet_.InvariantTest();
        ledger_.InvariantTest();
        stock_.InvariantTest();
        control_.InvariantTest();
    }

    void Reporter(std::ostream& os) const override {
        os << "Shop{balance=" << Balance() << ", on_hand=" << OnHand()
           << ", audit=" << AuditCount() << ", ";
        control_.Reporter(os);
        os << ", ";
        ledger_.Reporter(os);
        os << "}";
    }

private:
    Ledger ledger_;
    Wallet wallet_;
    Inventory stock_;
    StockControl control_;
    int audit_base_ = 0;
};

}  // namespace stc::examples
