// Assembly packaging of the shop trio: per-role t-specs (the models the
// synchronous product is computed from), the assembly description
// (mirrored by the checked-in examples/shop/shop.tspec), the computed
// product, and the reflection binding of the Shop facade.
#pragma once

#include <map>
#include <string>

#include "shop.h"
#include "stc/assembly/product.h"
#include "stc/reflect/class_binding.h"
#include "stc/tspec/assembly.h"
#include "stc/tspec/model.h"

namespace stc::examples {

/// Role t-spec for one class of the trio ("Wallet", "Ledger",
/// "Inventory", "StockControl"); throws stc::SpecError for any other
/// name.  `concat assemble` resolves roles without a spec_file here.
[[nodiscard]] tspec::ComponentSpec shop_role_spec_for(
    const std::string& class_name);

/// All four role t-specs keyed by role id (wallet/ledger/stock/control),
/// ready for assembly::build_product.
[[nodiscard]] std::map<std::string, tspec::ComponentSpec> shop_role_specs();

/// The assembly description: roles, wiring (ledger write-throughs are
/// `emits` wires), exported interface.  Textually mirrored by
/// examples/shop/shop.tspec.
[[nodiscard]] tspec::AssemblySpec shop_assembly();

/// The synchronous product of shop_assembly() over shop_role_specs():
/// Shop's observable t-spec plus construction stats.
[[nodiscard]] assembly::Product shop_product();

/// Reflection binding of the Shop facade; method names match the
/// product's exported interface.
[[nodiscard]] reflect::ClassBinding shop_binding();

}  // namespace stc::examples
