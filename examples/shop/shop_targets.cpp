#include "shop_targets.h"

#include <memory>

#include "shop_component.h"
#include "stc/serve/builtin_host.h"
#include "wallet_component.h"

namespace stc::examples {

void register_example_targets() {
    // Wallet tested alone: Attach's Ledger parameter is completed with
    // unobserved pool Ledgers, so write-through mutants survive — the
    // baseline the shop assembly campaign is measured against.
    serve::BuiltinTarget wallet;
    wallet.make_component = [] {
        struct State {
            LedgerPool pool;
            driver::CompletionRegistry completions;
        };
        auto state = std::make_shared<State>();
        state->completions = state->pool.completions();
        serve::BuiltinComponent out;
        out.keepalive = state;
        out.component.emplace(wallet_intraclass_spec(), wallet_binding());
        out.component->set_completions(state->completions);
        out.completions = &state->completions;
        return out;
    };
    wallet.mutants = [] {
        return mutation::enumerate_mutants(wallet_descriptors(), "Wallet");
    };
    serve::register_builtin_target("wallet", std::move(wallet));

    // The assembly product: the component under test is the Shop facade
    // driven by the synchronous product TFM, the mutant population is
    // the member class's (Wallet's) — the ISSUE's interface-vs-assembly
    // comparison runs the same mutants against both targets.
    serve::BuiltinTarget shop;
    shop.assembly = true;
    shop.make_component = [] {
        serve::BuiltinComponent out;
        out.component.emplace(shop_product().spec, shop_binding());
        return out;
    };
    shop.mutants = [] {
        return mutation::enumerate_mutants(wallet_descriptors(), "Wallet");
    };
    serve::register_builtin_target("shop", std::move(shop));
}

}  // namespace stc::examples
