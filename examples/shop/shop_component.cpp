#include "shop_component.h"

#include "stc/reflect/binder.h"
#include "stc/support/error.h"
#include "stc/tspec/builder.h"

namespace stc::examples {

using tspec::MethodCategory;

namespace {

// The role models deliberately put each method in exactly one TFM node:
// the synchronous product of such roles is deterministic by
// construction (one successor per action per state).

// Wallet as seen inside the shop: Attach is the facade's business (done
// once at birth), so the role model is just the money motions plus the
// balance query.
tspec::ComponentSpec wallet_role_spec() {
    tspec::SpecBuilder b("Wallet");
    b.method("m1", "Wallet", MethodCategory::Constructor);
    b.method("m2", "~Wallet", MethodCategory::Destructor);
    b.method("m3", "Deposit", MethodCategory::New).param_range("amount", 1, 100);
    b.method("m4", "Withdraw", MethodCategory::New, "int")
        .param_range("amount", 1, 100);
    b.method("m5", "Balance", MethodCategory::New, "int");

    b.node("w1", true, {"m1"});
    b.node("w2", false, {"m3"});  // Deposit
    b.node("w3", false, {"m4"});  // Withdraw
    b.node("w4", false, {"m5"});  // Balance
    b.node("w5", false, {"m2"});  // death
    b.edge("w1", "w2").edge("w1", "w3").edge("w1", "w4");
    b.edge("w2", "w2").edge("w2", "w3").edge("w2", "w4").edge("w2", "w5");
    b.edge("w3", "w2").edge("w3", "w3").edge("w3", "w4").edge("w3", "w5");
    b.edge("w4", "w2").edge("w4", "w3").edge("w4", "w4").edge("w4", "w5");
    return b.build();
}

// The audit trail: Record only ever fires as a hidden action (wired
// from Wallet's Deposit/Withdraw), Count is exported as AuditCount.
tspec::ComponentSpec ledger_role_spec() {
    tspec::SpecBuilder b("Ledger");
    b.method("m1", "Ledger", MethodCategory::Constructor);
    b.method("m2", "~Ledger", MethodCategory::Destructor);
    b.method("m3", "Record", MethodCategory::New).param_range("delta", -100, 100);
    b.method("m4", "Count", MethodCategory::New, "int");

    b.node("l1", true, {"m1"});
    b.node("l2", false, {"m3"});  // Record
    b.node("l3", false, {"m4"});  // Count
    b.node("l4", false, {"m2"});  // death
    b.edge("l1", "l2").edge("l1", "l3").edge("l1", "l4");
    b.edge("l2", "l2").edge("l2", "l3").edge("l2", "l4");
    b.edge("l3", "l2").edge("l3", "l3").edge("l3", "l4");
    return b.build();
}

// Stock as seen inside the shop: Receive/Ship are hidden (wired from
// Purchase/Sell), OnHand is exported.  Ship is not enabled at birth —
// StockControl's ordering guarantees stock on hand at every Ship.
tspec::ComponentSpec stock_role_spec() {
    tspec::SpecBuilder b("Inventory");
    b.method("m1", "Inventory", MethodCategory::Constructor);
    b.method("m2", "~Inventory", MethodCategory::Destructor);
    b.method("m3", "Receive", MethodCategory::New).param_range("sku", 0, 9999);
    b.method("m4", "Ship", MethodCategory::New, "int");
    b.method("m5", "OnHand", MethodCategory::New, "int");

    b.node("s1", true, {"m1"});
    b.node("s2", false, {"m3"});  // Receive
    b.node("s3", false, {"m4"});  // Ship
    b.node("s4", false, {"m5"});  // OnHand
    b.node("s5", false, {"m2"});  // death
    b.edge("s1", "s2").edge("s1", "s4").edge("s1", "s5");
    b.edge("s2", "s2").edge("s2", "s3").edge("s2", "s4").edge("s2", "s5");
    b.edge("s3", "s2").edge("s3", "s3").edge("s3", "s4").edge("s3", "s5");
    b.edge("s4", "s2").edge("s4", "s3").edge("s4", "s4").edge("s4", "s5");
    return b.build();
}

// The coordinator's protocol is the load-bearing model: Sell only after
// a Purchase and never twice in a row, so sales never outnumber
// purchases in any prefix — stock is provably non-empty at every Ship.
tspec::ComponentSpec control_role_spec() {
    tspec::SpecBuilder b("StockControl");
    b.method("m1", "StockControl", MethodCategory::Constructor);
    b.method("m2", "~StockControl", MethodCategory::Destructor);
    b.method("m3", "Purchase", MethodCategory::New, "int")
        .param_range("sku", 0, 9999)
        .param_range("cost", 1, 100);
    b.method("m4", "Sell", MethodCategory::New, "int")
        .param_range("price", 1, 100);

    b.node("c1", true, {"m1"});
    b.node("c2", false, {"m3"});  // Purchase
    b.node("c3", false, {"m4"});  // Sell
    b.node("c4", false, {"m2"});  // death
    b.edge("c1", "c2");
    b.edge("c2", "c2").edge("c2", "c3").edge("c2", "c4");
    b.edge("c3", "c2").edge("c3", "c4");
    return b.build();
}

}  // namespace

tspec::ComponentSpec shop_role_spec_for(const std::string& class_name) {
    if (class_name == "Wallet") return wallet_role_spec();
    if (class_name == "Ledger") return ledger_role_spec();
    if (class_name == "Inventory") return stock_role_spec();
    if (class_name == "StockControl") return control_role_spec();
    throw SpecError("no built-in role t-spec for class '" + class_name + "'");
}

std::map<std::string, tspec::ComponentSpec> shop_role_specs() {
    std::map<std::string, tspec::ComponentSpec> specs;
    specs.emplace("wallet", wallet_role_spec());
    specs.emplace("ledger", ledger_role_spec());
    specs.emplace("stock", stock_role_spec());
    specs.emplace("control", control_role_spec());
    return specs;
}

tspec::AssemblySpec shop_assembly() {
    tspec::AssemblySpec a;
    a.name = "Shop";
    a.roles.push_back({"wallet", "Wallet", ""});
    a.roles.push_back({"ledger", "Ledger", ""});
    a.roles.push_back({"stock", "Inventory", ""});
    a.roles.push_back({"control", "StockControl", ""});

    // Purchase = pay (Withdraw -> must-emit Record) + shelve (Receive).
    a.wiring.push_back({"control", "m3", "wallet", "m4", false});
    a.wiring.push_back({"control", "m3", "stock", "m3", false});
    a.wiring.push_back({"wallet", "m4", "ledger", "m3", true});
    // Sell = ship (Ship) + bank (Deposit -> must-emit Record).
    a.wiring.push_back({"control", "m4", "stock", "m4", false});
    a.wiring.push_back({"control", "m4", "wallet", "m3", false});
    a.wiring.push_back({"wallet", "m3", "ledger", "m3", true});

    a.exports.push_back({"control", "m3", "Purchase"});
    a.exports.push_back({"control", "m4", "Sell"});
    a.exports.push_back({"wallet", "m5", "Balance"});
    a.exports.push_back({"stock", "m5", "OnHand"});
    a.exports.push_back({"ledger", "m4", "AuditCount"});
    return a;
}

assembly::Product shop_product() {
    return assembly::build_product(shop_assembly(), shop_role_specs());
}

reflect::ClassBinding shop_binding() {
    reflect::Binder<Shop> b("Shop");
    b.ctor<>();
    b.method("Purchase", &Shop::Purchase);
    b.method("Sell", &Shop::Sell);
    b.method("Balance", &Shop::Balance);
    b.method("OnHand", &Shop::OnHand);
    b.method("AuditCount", &Shop::AuditCount);
    return b.take();
}

}  // namespace stc::examples
