// Template-class testing (§3.4.1): the t-spec of the generic
// CTypedStack<T> names the instantiation types (TemplateParam record);
// the Driver Generator expands one suite per instantiation and each runs
// against its own registered binding.  Also demonstrates suite
// persistence: the int suite is saved, reloaded, and rerun byte-for-byte
// — the regression scenario of §3.4.2.
#include <iostream>
#include <sstream>

#include "stack_component.h"
#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"
#include "stc/driver/template_suite.h"

int main() {
    using namespace stc;

    const auto spec = examples::stack_spec();
    reflect::Registry registry;
    examples::register_stack_instantiations(registry);

    driver::GeneratorOptions options;
    options.seed = 1234;
    const auto instantiations = driver::generate_template_suites(spec, options);

    std::cout << "== generic component: " << spec.class_name << " ==\n"
              << "instantiations requested by the tester: "
              << instantiations.size() << "\n\n";

    bool all_green = true;
    const driver::TestRunner runner(registry);
    for (const auto& inst : instantiations) {
        const auto result = runner.run(inst.suite);
        std::cout << inst.instantiated_class << ": " << inst.suite.size()
                  << " test case(s), " << result.passed() << " passed, "
                  << result.failed() << " failed\n";
        all_green = all_green && result.failed() == 0;
    }

    // Regression mode: persist the first suite and rerun it from disk.
    std::stringstream stored;
    driver::save_suite(stored, instantiations.front().suite);
    const auto reloaded = driver::load_suite(stored);
    const auto rerun = runner.run(reloaded);
    std::cout << "\nregression rerun of the saved " << reloaded.class_name
              << " suite: " << rerun.passed() << "/" << reloaded.size()
              << " passed\n";
    all_green = all_green && rerun.failed() == 0;

    std::cout << (all_green ? "\nall instantiations green\n" : "\nFAILURES\n");
    return all_green ? 0 : 1;
}
