// Inheritance reuse (§3.4.2): CSortableObList inherits CObList, and its
// test resources are derived with the hierarchical incremental
// technique — transactions composed only of inherited methods keep the
// parent's test cases (reused, not rerun); transactions containing new
// methods form the subclass's own test set.
//
// This is the setup behind the paper's Tables 2 and 3.
#include <iostream>

#include "stc/core/self_testable.h"
#include "stc/history/incremental.h"
#include "stc/mfc/component.h"

int main() {
    using namespace stc;

    // ---- Base class: full self-test -----------------------------------------
    mfc::ElementPool elements;
    core::SelfTestableComponent base(mfc::coblist_spec(), mfc::coblist_binding());
    base.set_completions(mfc::make_completions(elements));
    const auto base_report = base.self_test();
    std::cout << "== CObList (base class) ==\n" << base_report.summary() << "\n";

    // ---- Subclass: hierarchy check + incremental suite ----------------------
    const auto parent_spec = mfc::coblist_spec();
    const auto child_spec = mfc::sortable_spec();
    const auto violations = history::validate_hierarchy(parent_spec, child_spec);
    std::cout << "== hierarchy constraints (Harrold et al.) ==\n"
              << (violations.empty() ? "conforming\n" : "violations:\n");
    for (const auto& v : violations) {
        std::cout << "  [" << v.where << "] " << v.message << "\n";
    }
    std::cout << "\n";

    core::SelfTestableComponent derived(child_spec, mfc::sortable_binding());
    derived.set_completions(mfc::make_completions(elements));

    const auto full = derived.generate_tests();
    const auto plan = derived.incremental_plan(full);
    std::cout << "== incremental test plan for CSortableObList ==\n"
              << "transactions in the model: " << full.size() << "\n"
              << "reused from CObList (not rerun): " << plan.reused_cases() << "\n"
              << "in the subclass test set:        " << plan.new_cases() << "\n\n";

    const auto incremental_report = derived.self_test(plan.incremental);
    std::cout << "== subclass self-test (incremental suite) ==\n"
              << incremental_report.summary() << "\n";

    // Demonstrate what a consumer sees when a method misbehaves: an
    // assertion-violating sequence is impossible on the healthy class,
    // so run one suite with the full oracle and show it stays green.
    const auto full_report = derived.self_test(full);
    std::cout << "== subclass self-test (full suite) ==\n" << full_report.summary();

    return base_report.all_passed() && incremental_report.all_passed() &&
                   full_report.all_passed()
               ? 0
               : 1;
}
